//! Determinism regression tests for the zero-copy message fabric.
//!
//! The refactor that threaded `Arc`-shared blocks and transactions through
//! the broadcast path must not change *what* the simulation computes — only
//! how much it allocates. These tests pin that down: a given scenario seed
//! always produces the same confirmed/committed counts, the same delivered
//! block totals, the same bytes on the wire and the same final state digest,
//! run after run.

use orthrus::prelude::*;

fn scenario(seed: u64) -> Scenario {
    let workload = WorkloadConfig {
        num_accounts: 64,
        num_transactions: 300,
        payment_share: 0.6,
        multi_payer_share: 0.05,
        num_shared_objects: 8,
        ..WorkloadConfig::small()
    };
    let mut s = Scenario::new(ProtocolKind::Orthrus, NetworkKind::Lan, 4)
        .with_workload(workload)
        .with_seed(seed);
    s.config.batch_size = 64;
    s.config.batch_timeout = Duration::from_millis(20);
    s.submission_window = Duration::from_millis(500);
    s
}

/// A compact fingerprint of everything the fabric could plausibly perturb.
fn fingerprint(outcome: &ScenarioOutcome) -> (usize, usize, u64, u64, u64, Vec<u64>) {
    (
        outcome.submitted,
        outcome.confirmed,
        outcome.blocks_delivered,
        outcome.report.bytes_sent,
        outcome.report.messages_sent,
        outcome.state_digests.iter().map(|(_, d)| d.0).collect(),
    )
}

#[test]
fn same_seed_same_counts_and_state() {
    let first = run_scenario(&scenario(7));
    let second = run_scenario(&scenario(7));
    assert_eq!(fingerprint(&first), fingerprint(&second));
    assert_eq!(first.confirmed, first.submitted, "workload must complete");
    assert_eq!(
        first.avg_latency, second.avg_latency,
        "latencies are part of the deterministic trace"
    );
}

#[test]
fn different_seeds_differ() {
    let a = run_scenario(&scenario(7));
    let b = run_scenario(&scenario(8));
    // Both complete, but the traces (timings, bytes) must differ — if they
    // do not, the seed is being ignored somewhere.
    assert_eq!(a.confirmed, a.submitted);
    assert_eq!(b.confirmed, b.submitted);
    assert_ne!(
        (a.report.bytes_sent, a.avg_latency),
        (b.report.bytes_sent, b.avg_latency)
    );
}

#[test]
fn determinism_holds_for_every_protocol() {
    for protocol in ProtocolKind::ALL {
        let make = || {
            let mut s = scenario(11);
            s.protocol = protocol;
            run_scenario(&s)
        };
        let first = make();
        let second = make();
        assert_eq!(
            fingerprint(&first),
            fingerprint(&second),
            "{protocol} trace must be reproducible"
        );
        assert_eq!(first.confirmed, first.submitted, "{protocol} must complete");
    }
}
