//! Determinism regression tests for the zero-copy message fabric.
//!
//! The refactor that threaded `Arc`-shared blocks and transactions through
//! the broadcast path must not change *what* the simulation computes — only
//! how much it allocates. These tests pin that down: a given scenario seed
//! always produces the same confirmed/committed counts, the same delivered
//! block totals, the same bytes on the wire and the same final state digest,
//! run after run.

use orthrus::prelude::*;

fn scenario(seed: u64) -> Scenario {
    let workload = WorkloadConfig {
        num_accounts: 64,
        num_transactions: 300,
        payment_share: 0.6,
        multi_payer_share: 0.05,
        num_shared_objects: 8,
        ..WorkloadConfig::small()
    };
    Scenario::new(ProtocolKind::Orthrus, NetworkKind::Lan, 4)
        .with_workload(workload)
        .with_seed(seed)
        .with_batch_size(64)
        .with_batch_timeout(Duration::from_millis(20))
        .with_submission_window(Duration::from_millis(500))
}

fn run(scenario: &Scenario) -> ScenarioOutcome {
    run_scenario(scenario).expect("scenario must validate")
}

/// A compact fingerprint of everything the fabric could plausibly perturb.
fn fingerprint(outcome: &ScenarioOutcome) -> (usize, usize, u64, u64, u64, Vec<u64>) {
    (
        outcome.submitted,
        outcome.confirmed,
        outcome.blocks_delivered,
        outcome.report.bytes_sent,
        outcome.report.messages_sent,
        outcome.state_digests.iter().map(|(_, d)| d.0).collect(),
    )
}

#[test]
fn same_seed_same_counts_and_state() {
    let first = run(&scenario(7));
    let second = run(&scenario(7));
    assert_eq!(fingerprint(&first), fingerprint(&second));
    assert_eq!(first.confirmed, first.submitted, "workload must complete");
    assert_eq!(
        first.avg_latency, second.avg_latency,
        "latencies are part of the deterministic trace"
    );
}

#[test]
fn different_seeds_differ() {
    let a = run(&scenario(7));
    let b = run(&scenario(8));
    // Both complete, but the traces (timings, bytes) must differ — if they
    // do not, the seed is being ignored somewhere.
    assert_eq!(a.confirmed, a.submitted);
    assert_eq!(b.confirmed, b.submitted);
    assert_ne!(
        (a.report.bytes_sent, a.avg_latency),
        (b.report.bytes_sent, b.avg_latency)
    );
}

/// Differential test for the calendar-queue scheduler: for every protocol,
/// the heap queue and the calendar queue must produce bit-identical runs —
/// same counts, same bytes, same latencies, same final state digests and the
/// same `SimulationReport` (including events processed and peak queue
/// length, which only depend on the pop order, not the queue internals).
#[test]
fn heap_and_calendar_queues_produce_identical_traces() {
    for protocol in ProtocolKind::ALL {
        let run_with = |kind: QueueKind| {
            let mut s = scenario(13);
            s.protocol = protocol;
            s.queue = kind;
            run(&s)
        };
        let heap = run_with(QueueKind::Heap);
        let calendar = run_with(QueueKind::Calendar);
        assert_eq!(
            fingerprint(&heap),
            fingerprint(&calendar),
            "{protocol} diverged across queue implementations"
        );
        assert_eq!(
            heap.avg_latency, calendar.avg_latency,
            "{protocol} latency trace diverged"
        );
        assert_eq!(
            heap.report, calendar.report,
            "{protocol} simulation report diverged"
        );
        assert_eq!(heap.confirmed, heap.submitted, "{protocol} must complete");
    }
}

/// The scenario-sweep thread pool must not perturb results: any thread count
/// yields the same outcomes in the same (input) order.
#[test]
fn sweeps_are_deterministic_across_thread_counts() {
    let scenarios: Vec<Scenario> = (0..4).map(|i| scenario(20 + i)).collect();
    let serial = run_scenarios_with_threads(&scenarios, 1).expect("valid sweep");
    let pooled = run_scenarios_with_threads(&scenarios, 3).expect("valid sweep");
    assert_eq!(serial.len(), pooled.len());
    for (i, (a, b)) in serial.iter().zip(&pooled).enumerate() {
        assert_eq!(
            fingerprint(a),
            fingerprint(b),
            "scenario {i} diverged across thread counts"
        );
        assert_eq!(a.avg_latency, b.avg_latency);
        assert_eq!(a.report, b.report);
    }
}

/// Differential test for the parallel execution engines: both the sharded
/// demotion scheduler and Block-STM optimistic execution must leave every
/// protocol's trace bit-identical to the single-threaded reference path. The
/// serial path never reads `ORTHRUS_SWEEP_THREADS`, so this equality — which
/// CI checks under `ORTHRUS_SWEEP_THREADS ∈ {1, 4}` — also pins both parallel
/// paths across worker-pool widths.
#[test]
fn parallel_execution_matches_serial_for_every_protocol() {
    for protocol in ProtocolKind::ALL {
        let run_with = |mode: ExecutionMode| {
            let mut s = scenario(17);
            s.protocol = protocol;
            s.config.execution_mode = mode;
            run(&s)
        };
        let serial = run_with(ExecutionMode::Serial);
        for mode in [ExecutionMode::ShardedDemotion, ExecutionMode::OptimisticStm] {
            let parallel = run_with(mode);
            assert_eq!(
                fingerprint(&serial),
                fingerprint(&parallel),
                "{protocol} diverged between serial and {mode}"
            );
            assert_eq!(
                serial.avg_latency, parallel.avg_latency,
                "{protocol} latency trace diverged under {mode}"
            );
            assert_eq!(
                serial.report, parallel.report,
                "{protocol} simulation report diverged under {mode}"
            );
            assert_eq!(serial.shard_ops, parallel.shard_ops);
        }
        assert_eq!(
            serial.confirmed, serial.submitted,
            "{protocol} must complete"
        );
    }
}

/// Crash-recovery determinism: for every protocol, a replica that crashes
/// mid-run and rejoins via state transfer must (a) not stop the workload
/// from completing, (b) reconverge to the exact state digest of its peers,
/// and (c) leave the whole trace reproducible run over run. CI executes this
/// under `ORTHRUS_SWEEP_THREADS ∈ {1, 4}`, which pins the recovery path
/// across shard-pool widths too.
#[test]
fn crash_recovered_replica_reconverges_for_every_protocol() {
    for protocol in ProtocolKind::ALL {
        let make = || {
            let mut s = scenario(23);
            s.protocol = protocol;
            s = s.with_crash_recover(
                ReplicaId::new(2),
                SimTime::from_millis(150),
                SimTime::from_millis(2_000),
            );
            run(&s)
        };
        let first = make();
        assert_eq!(
            first.confirmed, first.submitted,
            "{protocol} must complete despite the crash-recover fault"
        );
        assert_eq!(
            first.recoveries.len(),
            1,
            "{protocol}: replica 2 must complete recovery"
        );
        assert_eq!(first.recoveries[0].0, ReplicaId::new(2));
        assert!(first.recoveries[0].1 >= SimTime::from_millis(2_000));
        let digests: Vec<u64> = first.state_digests.iter().map(|(_, d)| d.0).collect();
        assert_eq!(digests.len(), 4);
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "{protocol}: recovered replica diverged: {:?}",
            first.state_digests
        );
        let second = make();
        assert_eq!(
            fingerprint(&first),
            fingerprint(&second),
            "{protocol}: crash-recovery trace must be reproducible"
        );
        assert_eq!(first.recoveries, second.recoveries);
    }
}

/// Differential test for checkpoint-driven truncation: turning GC off must
/// not change a single bit of the trace — truncation is memory-only. The
/// retained-entry accounting is what differs: GC keeps the in-flight window,
/// no-GC keeps the whole history.
#[test]
fn checkpoint_truncation_is_memory_only_for_every_protocol() {
    for protocol in ProtocolKind::ALL {
        let run_with = |gc: bool| {
            let mut s = scenario(29);
            s.protocol = protocol;
            s.config.checkpoint_gc = gc;
            run(&s)
        };
        let gc_on = run_with(true);
        let gc_off = run_with(false);
        assert_eq!(
            fingerprint(&gc_on),
            fingerprint(&gc_off),
            "{protocol} diverged across GC settings"
        );
        assert_eq!(
            gc_on.avg_latency, gc_off.avg_latency,
            "{protocol} latency trace diverged"
        );
        assert_eq!(
            gc_on.report, gc_off.report,
            "{protocol} simulation report diverged"
        );
        assert!(
            gc_on.retained_plog_entries <= gc_off.retained_plog_entries,
            "{protocol}: GC on retains {} vs {} without",
            gc_on.retained_plog_entries,
            gc_off.retained_plog_entries
        );
        assert_eq!(gc_on.confirmed, gc_on.submitted, "{protocol} must complete");
    }
}

/// Differential test for the conservative time-window parallel *simulation*
/// engine (not to be confused with parallel plog execution above): for every
/// protocol, running the whole scenario on the windowed engine must be
/// bit-identical to the serial event walk — same fingerprint, same latency
/// trace, same `SimulationReport` (including `peak_queue_len`, which the
/// drain/restore/replay cycle must reproduce without double-counting), and
/// the same glog-wait statistics.
///
/// The engine resolves its thread count through `ORTHRUS_SWEEP_THREADS`; CI
/// runs this suite at 1 and 4 threads. At 1 thread the parallel mode
/// degrades to the serial walk (trivially equal); at 4 it exercises the
/// window planner, the per-actor lanes and the barrier replay, and the
/// serial engine never reads the knob — so the two CI legs together pin
/// `parallel@4 == serial == parallel@1`.
#[test]
fn parallel_engine_matches_serial_for_every_protocol() {
    for protocol in ProtocolKind::ALL {
        let run_with = |mode: EngineMode| {
            let mut s = scenario(31);
            s.protocol = protocol;
            s.engine_mode = mode;
            run(&s)
        };
        let serial = run_with(EngineMode::Serial);
        let parallel = run_with(EngineMode::Parallel);
        assert_eq!(
            fingerprint(&serial),
            fingerprint(&parallel),
            "{protocol} diverged between the serial and windowed engines"
        );
        assert_eq!(
            serial.avg_latency, parallel.avg_latency,
            "{protocol} latency trace diverged"
        );
        assert_eq!(
            serial.report.peak_queue_len, parallel.report.peak_queue_len,
            "{protocol}: peak_queue_len must survive the drain/replay cycle"
        );
        assert_eq!(
            serial.report, parallel.report,
            "{protocol} simulation report diverged"
        );
        assert!(
            serial.glog_wait_count > 0,
            "{protocol} must record glog-wait samples"
        );
        assert_eq!(
            (
                serial.glog_wait_count,
                serial.glog_wait_max_us,
                serial.glog_wait_mean_us.to_bits()
            ),
            (
                parallel.glog_wait_count,
                parallel.glog_wait_max_us,
                parallel.glog_wait_mean_us.to_bits()
            ),
            "{protocol} glog-wait statistics diverged"
        );
        assert_eq!(
            serial.confirmed, serial.submitted,
            "{protocol} must complete"
        );
    }
}

/// Fault plans force the windowed engine back onto the serial walk for any
/// window that overlaps a hazard (stragglers make per-node delivery bounds
/// wrong; crashes and recoveries change who is running). The outcome must
/// stay bit-identical anyway — for every protocol, under both the paper's
/// straggler and a crash-recover fault.
#[test]
fn parallel_engine_matches_serial_under_faults_for_every_protocol() {
    for protocol in ProtocolKind::ALL {
        for fault in ["straggler", "crash_recover"] {
            let run_with = |mode: EngineMode| {
                let mut s = scenario(37);
                s.protocol = protocol;
                s.engine_mode = mode;
                s = match fault {
                    "straggler" => s.with_straggler(),
                    _ => s.with_crash_recover(
                        ReplicaId::new(2),
                        SimTime::from_millis(150),
                        SimTime::from_millis(2_000),
                    ),
                };
                run(&s)
            };
            let serial = run_with(EngineMode::Serial);
            let parallel = run_with(EngineMode::Parallel);
            assert_eq!(
                fingerprint(&serial),
                fingerprint(&parallel),
                "{protocol} with {fault} diverged between engines"
            );
            assert_eq!(
                serial.avg_latency, parallel.avg_latency,
                "{protocol} with {fault}: latency trace diverged"
            );
            assert_eq!(
                serial.report, parallel.report,
                "{protocol} with {fault}: simulation report diverged"
            );
            assert_eq!(
                serial.recoveries, parallel.recoveries,
                "{protocol} with {fault}: recovery timeline diverged"
            );
            assert_eq!(
                serial.confirmed, serial.submitted,
                "{protocol} with {fault} must complete"
            );
        }
    }
}

#[test]
fn determinism_holds_for_every_protocol() {
    for protocol in ProtocolKind::ALL {
        let make = || {
            let mut s = scenario(11);
            s.protocol = protocol;
            run(&s)
        };
        let first = make();
        let second = make();
        assert_eq!(
            fingerprint(&first),
            fingerprint(&second),
            "{protocol} trace must be reproducible"
        );
        assert_eq!(first.confirmed, first.submitted, "{protocol} must complete");
    }
}
