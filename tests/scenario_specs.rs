//! Tests for the declarative experiment layer (`orthrus-lab`):
//!
//! * **Golden files** — every checked-in `scenarios/*.orth` parses, matches
//!   its file stem, survives an exact serialize/parse round trip, and lowers
//!   to valid scenarios at both scales.
//! * **Round-trip property** — `parse ∘ serialize = id` over randomized
//!   specs (seeded loop).
//! * **Differential** — the registry-lowered figure grids are *exactly* the
//!   scenarios the pre-redesign hand-rolled bench literals produced, and the
//!   fig3 grid produces bit-identical `ScenarioOutcome`s (state digests,
//!   reports) when run from specs versus literals. The outcome comparison
//!   runs on `run_scenarios`' env-configured pool, so CI pins it at
//!   `ORTHRUS_SWEEP_THREADS ∈ {1, 4}`.

use orthrus::prelude::*;
use orthrus_core::run_scenarios;
use orthrus_lab::{parse, registry, serialize, Axis, AxisKey, AxisValues, Params, Spec, SpecScale};
use orthrus_types::rng::{Rng, StdRng};

// ----------------------------------------------------------------------
// Golden files
// ----------------------------------------------------------------------

fn scenarios_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

#[test]
fn every_checked_in_spec_is_registered_and_golden() {
    let mut on_disk = 0;
    for entry in std::fs::read_dir(scenarios_dir()).expect("scenarios/ directory") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("orth") {
            continue;
        }
        on_disk += 1;
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("utf-8 stem")
            .to_string();
        let text = std::fs::read_to_string(&path).expect("readable spec");
        let registered = registry::find(&stem)
            .unwrap_or_else(|| panic!("{stem}.orth is not in the embedded registry"));
        assert_eq!(
            registered.source, text,
            "{stem}: embedded registry source drifted from the file on disk"
        );

        let spec = parse(&text).unwrap_or_else(|err| panic!("{stem}: {err}"));
        assert_eq!(spec.name(), stem, "spec name must match the file stem");
        assert!(
            spec.title().is_some(),
            "{stem}: checked-in specs carry titles"
        );

        // Exact round trip at the data-model level.
        let reparsed = parse(&serialize(&spec)).unwrap_or_else(|err| panic!("{stem}: {err}"));
        assert_eq!(spec, reparsed, "{stem}: serialize/parse round trip drifted");

        // Lowers to valid scenarios at both scales.
        let points = spec.lint().unwrap_or_else(|err| panic!("{stem}: {err}"));
        assert!(points >= 1, "{stem}: empty grid");
    }
    assert_eq!(
        on_disk,
        registry::ENTRIES.len(),
        "scenarios/ and the registry must list the same specs"
    );
}

#[test]
fn quickstart_spec_matches_the_quickstart_example() {
    // The checked-in quickstart spec and examples/quickstart.rs must be the
    // same run.
    let spec = registry::find("quickstart").unwrap().spec().unwrap();
    let lowered = spec.lower(SpecScale::Reduced).unwrap();
    assert_eq!(lowered.len(), 1);
    let from_builder = Scenario::new(ProtocolKind::Orthrus, NetworkKind::Lan, 4)
        .with_workload(
            WorkloadConfig::small()
                .with_transactions(1_000)
                .with_payment_share(0.46),
        )
        .with_seed(1);
    assert_eq!(lowered[0].scenario, from_builder);
    assert_eq!(lowered[0].scenario.effective_workload().seed, 1);
}

// ----------------------------------------------------------------------
// Round-trip property (seeded loop)
// ----------------------------------------------------------------------

fn random_params(rng: &mut StdRng, protocol_required: bool) -> Params {
    let mut params = Params::default();
    let protocols = ProtocolKind::ALL;
    if protocol_required || rng.gen_bool(0.7) {
        params.protocol = Some(protocols[rng.gen_range(0..6) as usize]);
    }
    params.network = Some(if rng.gen_bool(0.5) {
        NetworkKind::Lan
    } else {
        NetworkKind::Wan
    });
    params.replicas = Some(rng.gen_range(4..64) as u32);
    if rng.gen_bool(0.5) {
        params.clients = Some(rng.gen_range(1..16));
    }
    if rng.gen_bool(0.5) {
        params.seed = Some(rng.gen_range(0..u64::MAX / 2));
    }
    if rng.gen_bool(0.5) {
        params.batch_size = Some(rng.gen_range(1..5000) as usize);
    }
    if rng.gen_bool(0.4) {
        params.batch_timeout_ms = Some(rng.gen_range(1..1000));
    }
    if rng.gen_bool(0.3) {
        params.view_change_timeout_ms = Some(rng.gen_range(1000..20000));
    }
    if rng.gen_bool(0.3) {
        params.max_inflight_blocks = Some(rng.gen_range(1..32));
    }
    if rng.gen_bool(0.3) {
        params.parallel_execution = Some(rng.gen_bool(0.5));
    }
    if rng.gen_bool(0.3) {
        params.execution_mode =
            Some(ExecutionMode::ALL[rng.gen_range(0..ExecutionMode::ALL.len() as u64) as usize]);
    }
    if rng.gen_bool(0.3) {
        params.queue = Some(if rng.gen_bool(0.5) {
            QueueKind::Heap
        } else {
            QueueKind::Calendar
        });
    }
    if rng.gen_bool(0.6) {
        params.accounts = Some(rng.gen_range(2..100_000));
    }
    if rng.gen_bool(0.6) {
        params.transactions = Some(rng.gen_range(1..500_000) as usize);
    }
    if rng.gen_bool(0.6) {
        params.payment_share = Some(rng.gen_range(0.0..1.0));
    }
    if rng.gen_bool(0.4) {
        params.multi_payer_share = Some(rng.gen_range(0.0..1.0));
    }
    if rng.gen_bool(0.4) {
        params.shared_objects = Some(rng.gen_range(0..1000));
    }
    if rng.gen_bool(0.4) {
        params.zipf_exponent = Some(rng.gen_range(0.0..2.0));
    }
    if rng.gen_bool(0.3) {
        params.payload_bytes = Some(rng.gen_range(1..4096) as u32);
    }
    if rng.gen_bool(0.2) {
        params.initial_balance = Some(rng.gen_range(1..10_000_000));
    }
    if rng.gen_bool(0.2) {
        params.max_transfer = Some(rng.gen_range(1..1000));
    }
    if rng.gen_bool(0.4) {
        params.submission_window_ms = Some(rng.gen_range(1..60_000));
    }
    if rng.gen_bool(0.4) {
        params.max_sim_time_ms = Some(rng.gen_range(1..600_000));
    }
    if rng.gen_bool(0.4) {
        let all = StopCondition::DEFAULT;
        let count = rng.gen_range(1..=3) as usize;
        params.stop = Some(all[..count].to_vec());
    }
    if rng.gen_bool(0.4) {
        let count = rng.gen_range(1..=3);
        params.stragglers = Some(
            (0..count)
                .map(|_| (rng.gen_range(0..32) as u32, rng.gen_range(0.5..20.0)))
                .collect(),
        );
    }
    if rng.gen_bool(0.3) {
        let count = rng.gen_range(1..=3);
        params.crashes = Some(
            (0..count)
                .map(|_| (rng.gen_range(0..32) as u32, rng.gen_range(0..60_000)))
                .collect(),
        );
    }
    if rng.gen_bool(0.3) {
        let count = rng.gen_range(1..=3);
        params.selfish = Some((0..count).map(|_| rng.gen_range(0..32) as u32).collect());
    }
    if rng.gen_bool(0.2) {
        params.crash_count = Some(rng.gen_range(0..5) as u32);
    }
    if rng.gen_bool(0.2) {
        params.crash_at_ms = Some(rng.gen_range(0..30_000));
    }
    if rng.gen_bool(0.2) {
        params.selfish_count = Some(rng.gen_range(0..5) as u32);
    }
    if rng.gen_bool(0.3) {
        params.label = Some(format!("series_{}", rng.gen_range(0..100)));
    }
    if rng.gen_bool(0.3) {
        params.x = Some(rng.gen_range(0.0..128.0));
    }
    params
}

fn random_axis(rng: &mut StdRng, key: AxisKey) -> Axis {
    let count = rng.gen_range(1..=5) as usize;
    let values = match key {
        AxisKey::Protocol => AxisValues::Protocols(
            (0..count)
                .map(|_| ProtocolKind::ALL[rng.gen_range(0..6) as usize])
                .collect(),
        ),
        AxisKey::ExecutionMode => AxisValues::Modes(
            (0..count)
                .map(|_| {
                    ExecutionMode::ALL[rng.gen_range(0..ExecutionMode::ALL.len() as u64) as usize]
                })
                .collect(),
        ),
        AxisKey::ZipfExponent => {
            AxisValues::Floats((0..count).map(|_| rng.gen_range(0.0..2.0)).collect())
        }
        _ => AxisValues::Ints((0..count).map(|_| rng.gen_range(0..200)).collect()),
    };
    Axis { key, values }
}

#[test]
fn randomized_specs_round_trip_exactly() {
    for seed in 0u64..200 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0A7B_5EED);
        let spec = if rng.gen_bool(0.5) {
            Spec::Scenario(orthrus_lab::ScenarioSpec {
                name: format!("spec_{seed}"),
                title: rng
                    .gen_bool(0.5)
                    .then(|| format!("Random spec #{seed} — with punctuation, commas")),
                params: random_params(&mut rng, false),
            })
        } else {
            // Pick a random non-empty subset of axes, in random-but-unique
            // order.
            let mut keys = AxisKey::ALL.to_vec();
            // Fisher-Yates with the deterministic rng.
            for i in (1..keys.len()).rev() {
                let j = rng.gen_range(0..(i as u64 + 1)) as usize;
                keys.swap(i, j);
            }
            let axis_count = rng.gen_range(1..=4) as usize;
            let axes: Vec<Axis> = keys[..axis_count]
                .iter()
                .map(|&key| random_axis(&mut rng, key))
                .collect();
            let x_axis = axes
                .iter()
                .map(|a| a.key)
                .find(|&k| k != AxisKey::Protocol && k != AxisKey::ExecutionMode);
            let full_scale = if rng.gen_bool(0.5) {
                vec![
                    (
                        "transactions".to_string(),
                        format!("{}", rng.gen_range(1..1_000_000)),
                    ),
                    ("replicas".to_string(), "8, 16, 32".to_string()),
                ]
            } else {
                Vec::new()
            };
            Spec::Sweep(orthrus_lab::SweepSpec {
                name: format!("sweep_{seed}"),
                title: rng.gen_bool(0.5).then(|| format!("Random sweep #{seed}")),
                x_axis,
                base: random_params(&mut rng, false),
                axes,
                full_scale,
            })
        };
        let text = serialize(&spec);
        let reparsed = parse(&text)
            .unwrap_or_else(|err| panic!("seed {seed}: canonical form rejected: {err}\n{text}"));
        assert_eq!(spec, reparsed, "seed {seed}: round trip drifted\n{text}");
    }
}

// ----------------------------------------------------------------------
// Differential: registry grids versus the pre-redesign bench literals
// ----------------------------------------------------------------------

/// Scale knobs of the pre-redesign `BenchScale` (frozen copies — the point
/// of this module is to pin today's registry against *yesterday's* code).
#[derive(Clone, Copy, PartialEq)]
enum FrozenScale {
    Reduced,
    Full,
}

impl FrozenScale {
    fn replica_counts(self) -> Vec<u32> {
        match self {
            FrozenScale::Reduced => vec![4, 8, 16],
            FrozenScale::Full => vec![8, 16, 32, 64, 128],
        }
    }
    fn transactions(self) -> usize {
        match self {
            FrozenScale::Reduced => 2_000,
            FrozenScale::Full => 200_000,
        }
    }
    fn accounts(self) -> u64 {
        match self {
            FrozenScale::Reduced => 2_000,
            FrozenScale::Full => 18_000,
        }
    }
    fn batch_size(self) -> usize {
        match self {
            FrozenScale::Reduced => 256,
            FrozenScale::Full => 4_096,
        }
    }
    fn fixed_replicas(self) -> u32 {
        match self {
            FrozenScale::Reduced => 8,
            FrozenScale::Full => 16,
        }
    }
    fn spec_scale(self) -> SpecScale {
        match self {
            FrozenScale::Reduced => SpecScale::Reduced,
            FrozenScale::Full => SpecScale::Full,
        }
    }
}

/// A frozen copy of the pre-redesign `harness::paper_scenario` literal.
fn frozen_paper_scenario(
    protocol: ProtocolKind,
    network: NetworkKind,
    replicas: u32,
    payment_share: f64,
    straggler: bool,
    scale: FrozenScale,
) -> Scenario {
    let workload = WorkloadConfig {
        num_accounts: scale.accounts(),
        num_transactions: scale.transactions(),
        payment_share,
        multi_payer_share: 0.05,
        num_shared_objects: 256,
        ..WorkloadConfig::default()
    };
    let mut scenario = Scenario::new(protocol, network, replicas)
        .with_workload(workload)
        .with_seed(42);
    scenario.config.batch_size = scale.batch_size();
    scenario.config.batch_timeout = Duration::from_millis(50);
    scenario.submission_window = Duration::from_secs(5);
    scenario.max_sim_time = Duration::from_secs(600);
    scenario.num_clients = 8;
    if straggler {
        scenario.faults = FaultPlan::one_straggler(ReplicaId::new(0));
    }
    scenario
}

/// The pre-redesign fig3/fig4 grid loop, frozen as data:
/// `(label, x, scenario)` triples in bench emission order.
fn frozen_replica_grid(
    network: NetworkKind,
    straggler: bool,
    scale: FrozenScale,
) -> Vec<(String, f64, Scenario)> {
    let mut grid = Vec::new();
    for &n in &scale.replica_counts() {
        for protocol in ProtocolKind::ALL {
            grid.push((
                protocol.label().to_string(),
                f64::from(n),
                frozen_paper_scenario(protocol, network, n, 0.46, straggler, scale),
            ));
        }
    }
    grid
}

fn assert_grid_matches(name: &str, scale: FrozenScale, frozen: &[(String, f64, Scenario)]) {
    let spec = registry::find(name)
        .unwrap_or_else(|| panic!("missing registry entry {name}"))
        .spec()
        .unwrap_or_else(|err| panic!("{name}: {err}"));
    let lowered = spec
        .lower(scale.spec_scale())
        .unwrap_or_else(|err| panic!("{name}: {err}"));
    assert_eq!(
        lowered.len(),
        frozen.len(),
        "{name}: grid size diverged from the pre-redesign loop"
    );
    for (point, (label, x, scenario)) in lowered.iter().zip(frozen) {
        assert_eq!(&point.label, label, "{name}: label order diverged");
        assert_eq!(point.x, *x, "{name}: x order diverged");
        assert_eq!(
            &point.scenario, scenario,
            "{name}: scenario diverged for {label} at x={x}"
        );
    }
}

/// Figures 3 and 4 (both straggler variants, both scales): the registry
/// lowers to *exactly* the scenarios the hand-rolled bench loops produced.
#[test]
fn fig3_and_fig4_registry_grids_equal_the_pre_redesign_literals() {
    for scale in [FrozenScale::Reduced, FrozenScale::Full] {
        assert_grid_matches(
            "fig3ab_wan_no_straggler",
            scale,
            &frozen_replica_grid(NetworkKind::Wan, false, scale),
        );
        assert_grid_matches(
            "fig3cd_wan_straggler",
            scale,
            &frozen_replica_grid(NetworkKind::Wan, true, scale),
        );
        assert_grid_matches(
            "fig4ab_lan_no_straggler",
            scale,
            &frozen_replica_grid(NetworkKind::Lan, false, scale),
        );
        assert_grid_matches(
            "fig4cd_lan_straggler",
            scale,
            &frozen_replica_grid(NetworkKind::Lan, true, scale),
        );
    }
}

/// Figures 5–8 and the four ablations: same equality, mirroring each
/// pre-redesign bench loop.
#[test]
fn fig5_to_fig8_and_ablation_grids_equal_the_pre_redesign_literals() {
    let scale = FrozenScale::Reduced;
    let replicas = scale.fixed_replicas();

    // fig5 (both variants): payment-share sweep.
    for (name, straggler) in [
        ("fig5_payment_share_no_straggler", false),
        ("fig5_payment_share_straggler", true),
    ] {
        let frozen: Vec<_> = [0u32, 20, 40, 60, 80, 100]
            .into_iter()
            .map(|pct| {
                (
                    "Orthrus".to_string(),
                    f64::from(pct),
                    frozen_paper_scenario(
                        ProtocolKind::Orthrus,
                        NetworkKind::Wan,
                        replicas,
                        f64::from(pct) / 100.0,
                        straggler,
                        scale,
                    ),
                )
            })
            .collect();
        assert_grid_matches(name, scale, &frozen);
    }

    // fig6: Orthrus vs ISS with a straggler.
    let frozen: Vec<_> = [ProtocolKind::Orthrus, ProtocolKind::Iss]
        .into_iter()
        .map(|protocol| {
            (
                protocol.label().to_string(),
                f64::from(replicas),
                frozen_paper_scenario(protocol, NetworkKind::Wan, replicas, 0.46, true, scale),
            )
        })
        .collect();
    assert_grid_matches("fig6_latency_breakdown", scale, &frozen);

    // fig7: crash-fault timelines (faults on replicas 1..=k at t = 9 s).
    let frozen: Vec<_> = [0u32, 1, 5.min(replicas / 3)]
        .into_iter()
        .map(|faults| {
            let mut scenario = frozen_paper_scenario(
                ProtocolKind::Orthrus,
                NetworkKind::Wan,
                replicas,
                0.46,
                false,
                scale,
            );
            scenario.submission_window = Duration::from_secs(25);
            scenario.max_sim_time = Duration::from_secs(120);
            scenario.config.view_change_timeout = Duration::from_secs(10);
            let mut plan = FaultPlan::none();
            for f in 0..faults {
                plan = plan.with_crash(ReplicaId::new(1 + f), SimTime::from_secs(9));
            }
            scenario.faults = plan;
            ("Orthrus".to_string(), f64::from(faults), scenario)
        })
        .collect();
    assert_grid_matches("fig7_fault_timeline", scale, &frozen);

    // fig8: selfish replicas from the tail, 0..=f.
    let max_faulty = (replicas - 1) / 3;
    let frozen: Vec<_> = (0..=max_faulty)
        .map(|faulty| {
            let mut scenario = frozen_paper_scenario(
                ProtocolKind::Orthrus,
                NetworkKind::Wan,
                replicas,
                0.46,
                false,
                scale,
            );
            let mut plan = FaultPlan::none();
            for f in 0..faulty {
                plan = plan.with_selfish(ReplicaId::new(replicas - 1 - f));
            }
            scenario.faults = plan;
            ("Orthrus".to_string(), f64::from(faulty), scenario)
        })
        .collect();
    assert_grid_matches("fig8_undetectable_faults", scale, &frozen);

    // Ablation A: payment fast path (share × {Orthrus, Ladon}, straggler).
    let mut frozen = Vec::new();
    for share_pct in [20u32, 60, 100] {
        for protocol in [ProtocolKind::Orthrus, ProtocolKind::Ladon] {
            frozen.push((
                protocol.label().to_string(),
                f64::from(share_pct),
                frozen_paper_scenario(
                    protocol,
                    NetworkKind::Wan,
                    replicas,
                    f64::from(share_pct) / 100.0,
                    true,
                    scale,
                ),
            ));
        }
    }
    assert_grid_matches("ablation_fast_path", scale, &frozen);

    // Ablation B: global ordering policy under a straggler.
    let frozen: Vec<_> = [ProtocolKind::Ladon, ProtocolKind::Iss, ProtocolKind::Dqbft]
        .into_iter()
        .map(|protocol| {
            (
                protocol.label().to_string(),
                f64::from(replicas),
                frozen_paper_scenario(protocol, NetworkKind::Wan, replicas, 0.46, true, scale),
            )
        })
        .collect();
    assert_grid_matches("ablation_global_ordering", scale, &frozen);

    // Ablation C: multi-payer share, payments only.
    let frozen: Vec<_> = [0u32, 10, 30, 50]
        .into_iter()
        .map(|pct| {
            let mut scenario = frozen_paper_scenario(
                ProtocolKind::Orthrus,
                NetworkKind::Wan,
                replicas,
                1.0,
                false,
                scale,
            );
            scenario.workload.multi_payer_share = f64::from(pct) / 100.0;
            ("Orthrus".to_string(), f64::from(pct), scenario)
        })
        .collect();
    assert_grid_matches("ablation_multi_payer", scale, &frozen);

    // Ablation D: hot-account skew, payments only, LAN.
    let frozen: Vec<_> = [8u32, 12, 14]
        .into_iter()
        .map(|tenths| {
            let exponent = f64::from(tenths) / 10.0;
            let mut scenario = frozen_paper_scenario(
                ProtocolKind::Orthrus,
                NetworkKind::Lan,
                replicas,
                1.0,
                false,
                scale,
            );
            scenario.workload = scenario.workload.clone().with_zipf_exponent(exponent);
            ("Orthrus".to_string(), exponent, scenario)
        })
        .collect();
    assert_grid_matches("ablation_hot_account", scale, &frozen);
}

/// A compact fingerprint of everything a run could plausibly perturb.
fn fingerprint(outcome: &ScenarioOutcome) -> (usize, usize, u64, u64, u64, Vec<u64>) {
    (
        outcome.submitted,
        outcome.confirmed,
        outcome.blocks_delivered,
        outcome.report.bytes_sent,
        outcome.report.messages_sent,
        outcome.state_digests.iter().map(|(_, d)| d.0).collect(),
    )
}

/// End-to-end differential: running the registry-lowered fig3 straggler grid
/// produces bit-identical outcomes (state digests, reports, latencies) to
/// running the pre-redesign literals. Both sides are trimmed identically to
/// keep the test fast — the trim cannot mask a divergence because it is the
/// same mutation on both sides. `run_scenarios` takes its worker count from
/// `ORTHRUS_SWEEP_THREADS`; CI runs this at 1 and 4 workers.
#[test]
fn fig3_spec_runs_are_bit_identical_to_literal_runs() {
    let trim = |mut scenario: Scenario| {
        scenario.workload.num_transactions = 240;
        scenario.workload.num_accounts = 128;
        scenario.workload.num_shared_objects = 16;
        scenario.submission_window = Duration::from_secs(1);
        scenario
    };

    let spec = registry::find("fig3cd_wan_straggler")
        .unwrap()
        .spec()
        .unwrap();
    let from_spec: Vec<Scenario> = spec
        .lower(SpecScale::Reduced)
        .unwrap()
        .into_iter()
        .filter(|point| point.x <= 8.0) // 4- and 8-replica points
        .map(|point| trim(point.scenario))
        .collect();
    let from_literals: Vec<Scenario> =
        frozen_replica_grid(NetworkKind::Wan, true, FrozenScale::Reduced)
            .into_iter()
            .filter(|(_, x, _)| *x <= 8.0)
            .map(|(_, _, scenario)| trim(scenario))
            .collect();
    assert_eq!(from_spec.len(), 12, "2 replica counts × 6 protocols");
    assert_eq!(
        from_spec, from_literals,
        "lowered scenarios must be identical"
    );

    let spec_outcomes = run_scenarios(&from_spec).expect("spec grid runs");
    let literal_outcomes = run_scenarios(&from_literals).expect("literal grid runs");
    for ((a, b), scenario) in spec_outcomes.iter().zip(&literal_outcomes).zip(&from_spec) {
        let context = format!(
            "{} at {} replicas",
            scenario.protocol, scenario.config.num_replicas
        );
        assert_eq!(
            fingerprint(a),
            fingerprint(b),
            "{context}: outcome diverged"
        );
        assert_eq!(a.avg_latency, b.avg_latency, "{context}: latency diverged");
        assert_eq!(
            a.state_digests, b.state_digests,
            "{context}: digests diverged"
        );
        assert_eq!(a.report, b.report, "{context}: report diverged");
    }
}
