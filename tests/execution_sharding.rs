//! Differential tests for the sharded execution engine.
//!
//! The executor's state was split into per-instance shards (accounts routed
//! by `ObjectKey::shard`, shared objects in a dedicated shard) with
//! incremental per-shard digests, and `Replica::process_partial_logs` gained
//! a parallel mode that executes independent instances' payment fast paths
//! on a shard pool. None of that may change *what* gets computed:
//!
//! * sharded and unsharded stores holding the same objects have the same
//!   digest (the accumulator is shard-layout independent);
//! * the incremental digest always equals a full rescan;
//! * executing a partial-log schedule through the shard pool is bit-identical
//!   to the single-threaded reference walk — same outcomes, same digests,
//!   same counts — for any thread count;
//! * the Block-STM optimistic engine (`execution_mode = stm`) lands on the
//!   same bit-identical result — outcomes, digests, per-shard op counts —
//!   from speculative execution plus trace validation, again for any thread
//!   count, and replaying a schedule through it is idempotent;
//! * executor snapshots (`Executor::clone`, the payload of checkpoint and
//!   crash-recovery state transfer) are copy-on-write: post-snapshot writes
//!   by the live executor never leak into an in-flight snapshot;
//! * at the scenario level, all three execution modes (serial reference,
//!   sharded demotion, optimistic STM) produce identical traces for all six
//!   protocols on uniform and hot-account (zipf 1.4) workloads, including
//!   straggler and crash-recovery scenarios, and conserve token supply.

use orthrus::prelude::*;
use orthrus_core::parallel_for_mut;
use orthrus_execution::Executor;
use orthrus_types::rng::{Rng, StdRng};
use orthrus_types::{
    Block, BlockParams, ClientId, Epoch, InstanceId, ObjectKey, ObjectOp, Rank, SeqNum,
    SharedBlock, SystemState, Transaction, TxId, View,
};
use std::sync::Arc;

// ----------------------------------------------------------------------
// Store level: incremental digest vs full rescan, shard-layout independence
// ----------------------------------------------------------------------

/// Apply an identical random credit/debit/shared-write workload to stores
/// with different shard layouts; digests must agree with each other and with
/// a full rescan after every step.
#[test]
fn incremental_digest_matches_rescan_under_random_workloads() {
    for seed in 0u64..20 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stores = vec![
            ObjectStore::with_shards(1),
            ObjectStore::with_shards(4),
            ObjectStore::with_shards(16),
        ];
        for store in &mut stores {
            for k in 0..64u64 {
                store.create_account(ObjectKey::new(k), 1_000);
            }
            for k in 0..8u64 {
                store.create_shared(ObjectKey::new((1 << 48) + k), 0);
            }
        }
        for step in 0..200 {
            let action: u64 = rng.gen_range(0..4);
            let key: u64 = rng.gen_range(0..70); // some keys do not exist
            let amount: u64 = rng.gen_range(1..50);
            for store in &mut stores {
                match action {
                    0 => {
                        let _ = store.credit(ObjectKey::new(key), amount);
                    }
                    1 => {
                        let _ = store.debit(ObjectKey::new(key), amount);
                    }
                    2 => {
                        let _ =
                            store.set_shared(ObjectKey::new((1 << 48) + (key % 8)), amount as i64);
                    }
                    _ => {
                        let _ = store
                            .add_shared(ObjectKey::new((1 << 48) + (key % 8)), amount as i64 - 25);
                    }
                }
            }
            let reference = stores[0].digest();
            for store in &stores {
                assert_eq!(
                    store.digest(),
                    reference,
                    "seed {seed} step {step}: digest depends on shard layout"
                );
                assert_eq!(
                    store.digest(),
                    store.rescan_digest(),
                    "seed {seed} step {step}: incremental digest drifted from rescan"
                );
            }
            assert_eq!(stores[0].total_balance(), stores[2].total_balance());
        }
    }
}

// ----------------------------------------------------------------------
// Executor level: schedule API vs per-transaction reference walk
// ----------------------------------------------------------------------

fn account(c: u64) -> ObjectKey {
    ObjectKey::account_of(ClientId::new(c))
}

/// Build a random plog schedule: `m` instances, several blocks each, mixing
/// single-payer payments, cross-instance multi-payer payments and contract
/// transactions, bucketed the same way the partition module buckets them.
fn random_schedule(
    seed: u64,
    m: u32,
    accounts: u64,
    txs: usize,
) -> (Vec<(InstanceId, SharedBlock)>, Vec<Arc<Transaction>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let assign = |key: ObjectKey| InstanceId::new(key.shard(m));
    let mut all: Vec<Arc<Transaction>> = Vec::new();
    let mut buckets: Vec<Vec<Arc<Transaction>>> = vec![Vec::new(); m as usize];
    for i in 0..txs {
        let id = TxId::new(ClientId::new(9_999), i as u64);
        let payer: u64 = rng.gen_range(0..accounts);
        let amount: u64 = rng.gen_range(1..40);
        let kind: u64 = rng.gen_range(0..10);
        let tx = if kind < 6 {
            let payee: u64 = rng.gen_range(0..accounts);
            Transaction::payment(id, ClientId::new(payer), ClientId::new(payee), amount)
        } else if kind < 8 {
            let second: u64 = rng.gen_range(0..accounts);
            let payee: u64 = rng.gen_range(0..accounts);
            Transaction::multi_payment(
                id,
                &[(ClientId::new(payer), amount), (ClientId::new(second), 1)],
                &[(ClientId::new(payee), amount + 1)],
            )
        } else {
            Transaction::contract(
                id,
                &[(ClientId::new(payer), amount)],
                vec![ObjectOp::add_shared(ObjectKey::new((1 << 48) + kind), 3)],
            )
        };
        let tx = Arc::new(tx);
        let mut instances: Vec<InstanceId> = tx.payers().map(assign).collect();
        instances.sort_unstable();
        instances.dedup();
        if instances.is_empty() {
            instances.push(InstanceId::new(0));
        }
        for instance in instances {
            buckets[instance.as_usize()].push(Arc::clone(&tx));
        }
        all.push(tx);
    }
    // One sweep of blocks per instance, batch size 16, in instance order —
    // the shape `PartialLogs::drain_ready` produces.
    let mut schedule = Vec::new();
    let mut next_sn = vec![0u64; m as usize];
    let mut remaining: Vec<std::collections::VecDeque<Arc<Transaction>>> =
        buckets.into_iter().map(Into::into).collect();
    loop {
        let mut progressed = false;
        for i in 0..m as usize {
            if remaining[i].is_empty() {
                continue;
            }
            let batch: Vec<Arc<Transaction>> =
                (0..16).map_while(|_| remaining[i].pop_front()).collect();
            let params = BlockParams {
                instance: InstanceId::new(i as u32),
                sn: SeqNum::new(next_sn[i]),
                epoch: Epoch::new(0),
                view: View::new(0),
                proposer: orthrus_types::ReplicaId::new(i as u32),
                rank: Rank::new(next_sn[i]),
                state: SystemState::new(m as usize),
            };
            next_sn[i] += 1;
            schedule.push((
                InstanceId::new(i as u32),
                Arc::new(Block::from_shared(params, batch)),
            ));
            progressed = true;
        }
        if !progressed {
            break;
        }
    }
    (schedule, all)
}

fn executor_for(m: u32, accounts: u64) -> Executor {
    let mut store = ObjectStore::with_shards(m);
    for c in 0..accounts {
        store.create_account(account(c), 100);
    }
    for k in 0..16u64 {
        store.create_shared(ObjectKey::new((1 << 48) + k), 0);
    }
    Executor::with_store(store)
}

/// The heart of the tentpole: for random schedules, the serial reference walk
/// (per-tx `process_plog_tx`, single shard and sharded), the schedule API
/// driven serially, and the schedule API driven by a multi-threaded pool all
/// produce identical digests, outcomes, counts and supply.
#[test]
fn parallel_schedule_matches_serial_reference_walk() {
    for seed in 0u64..15 {
        let m = [4u32, 8][seed as usize % 2];
        let accounts = 48;
        let (schedule, txs) = random_schedule(seed, m, accounts, 180);
        let assign = move |key: ObjectKey| InstanceId::new(key.shard(m));

        // Reference: per-transaction walk on an unsharded store.
        let mut reference = executor_for(1, accounts);
        let mut ref_outcomes = Vec::new();
        for (instance, block) in &schedule {
            for tx in &block.txs {
                ref_outcomes.push((tx.id, reference.process_plog_tx(tx, *instance, &assign)));
            }
        }

        // Same walk on a sharded store.
        let mut sharded_serial = executor_for(m, accounts);
        for (instance, block) in &schedule {
            for tx in &block.txs {
                sharded_serial.process_plog_tx(tx, *instance, &assign);
            }
        }

        // Schedule API, jobs run in place and on a 4-thread pool.
        let mut inplace = executor_for(m, accounts);
        let inplace_outcomes = inplace.process_plog_schedule(&schedule, &assign, |jobs| {
            for job in jobs {
                job.run();
            }
        });
        let mut pooled = executor_for(m, accounts);
        let pooled_outcomes = pooled.process_plog_schedule(&schedule, &assign, |jobs| {
            parallel_for_mut(jobs, 4, |job| job.run());
        });

        for exec in [&sharded_serial, &inplace, &pooled] {
            assert_eq!(
                exec.state_digest(),
                reference.state_digest(),
                "seed {seed}: digests diverged"
            );
            assert_eq!(exec.committed_count(), reference.committed_count());
            assert_eq!(exec.aborted_count(), reference.aborted_count());
            assert_eq!(exec.total_supply(), reference.total_supply());
            assert_eq!(exec.escrow_log().len(), reference.escrow_log().len());
            for tx in &txs {
                assert_eq!(exec.outcome(tx.id), reference.outcome(tx.id), "seed {seed}");
            }
        }
        assert_eq!(ref_outcomes, inplace_outcomes, "seed {seed}");
        assert_eq!(ref_outcomes, pooled_outcomes, "seed {seed}");
        assert_eq!(inplace.state_digest(), inplace.store().rescan_digest());
    }
}

/// Re-running a schedule (re-delivery after recovery) must be idempotent in
/// both modes.
#[test]
fn reprocessing_a_schedule_is_idempotent() {
    let m = 4;
    let (schedule, _) = random_schedule(77, m, 32, 100);
    let assign = move |key: ObjectKey| InstanceId::new(key.shard(m));
    let mut exec = executor_for(m, 32);
    exec.process_plog_schedule(&schedule, &assign, |jobs| {
        parallel_for_mut(jobs, 3, |job| job.run());
    });
    let digest = exec.state_digest();
    let committed = exec.committed_count();
    let replay = exec.process_plog_schedule(&schedule, &assign, |jobs| {
        parallel_for_mut(jobs, 3, |job| job.run());
    });
    assert_eq!(exec.state_digest(), digest);
    assert_eq!(exec.committed_count(), committed);
    // Payments were confirmed the first time round and must report their
    // recorded outcome again; contracts legitimately stay pending (they wait
    // for the global log) unless they already aborted.
    let mut replayed = replay.iter();
    for (_, block) in &schedule {
        for tx in &block.txs {
            let (id, outcome) = replayed.next().unwrap();
            assert_eq!(*id, tx.id);
            if tx.is_payment() {
                assert!(outcome.is_some(), "payment {id} lost its outcome on replay");
            }
        }
    }
}

/// The Block-STM engine against the serial reference walk: for random mixed
/// schedules (payments, cross-instance multi-payer payments, contracts) the
/// optimistic execute/validate/commit pipeline must land on bit-identical
/// outcomes, digests, counters and per-shard op counts at any thread count.
#[test]
fn stm_schedule_matches_serial_reference_walk() {
    for seed in 0u64..15 {
        let m = [4u32, 8][seed as usize % 2];
        let accounts = 48;
        let (schedule, txs) = random_schedule(seed, m, accounts, 180);
        let assign = move |key: ObjectKey| InstanceId::new(key.shard(m));

        let mut reference = executor_for(m, accounts);
        let mut ref_outcomes = Vec::new();
        for (instance, block) in &schedule {
            for tx in &block.txs {
                ref_outcomes.push((tx.id, reference.process_plog_tx(tx, *instance, &assign)));
            }
        }

        for threads in [1usize, 4] {
            let mut stm = executor_for(m, accounts);
            let (outcomes, stats) =
                stm.process_plog_schedule_stm_with_stats(&schedule, &assign, threads);
            assert_eq!(outcomes, ref_outcomes, "seed {seed} threads {threads}");
            assert_eq!(
                stm.state_digest(),
                reference.state_digest(),
                "seed {seed} threads {threads}: STM digest diverged"
            );
            assert_eq!(stm.state_digest(), stm.store().rescan_digest());
            assert_eq!(stm.committed_count(), reference.committed_count());
            assert_eq!(stm.aborted_count(), reference.aborted_count());
            assert_eq!(stm.total_supply(), reference.total_supply());
            assert_eq!(stm.escrow_log().len(), reference.escrow_log().len());
            assert_eq!(
                stm.store().shard_op_counts(),
                reference.store().shard_op_counts(),
                "seed {seed} threads {threads}: coalesced commit broke op counts"
            );
            assert!(stats.reexecutions <= stats.occurrences);
            assert_eq!(stats.occurrences as usize, ref_outcomes.len());
            for tx in &txs {
                assert_eq!(stm.outcome(tx.id), reference.outcome(tx.id), "seed {seed}");
            }
        }
    }
}

/// Re-delivering a schedule to the STM engine (recovery replay) must be
/// idempotent: known outcomes short-circuit speculation, pending contract
/// escrows validate as already-held, and no state moves.
#[test]
fn stm_reprocessing_a_schedule_is_idempotent() {
    let m = 4;
    let (schedule, _) = random_schedule(77, m, 32, 100);
    let assign = move |key: ObjectKey| InstanceId::new(key.shard(m));
    let mut exec = executor_for(m, 32);
    exec.process_plog_schedule_stm(&schedule, &assign, 3);
    let digest = exec.state_digest();
    let committed = exec.committed_count();
    let supply = exec.total_supply();
    let replay = exec.process_plog_schedule_stm(&schedule, &assign, 3);
    assert_eq!(exec.state_digest(), digest);
    assert_eq!(exec.committed_count(), committed);
    assert_eq!(exec.total_supply(), supply);
    let mut replayed = replay.iter();
    for (_, block) in &schedule {
        for tx in &block.txs {
            let (id, outcome) = replayed.next().unwrap();
            assert_eq!(*id, tx.id);
            if tx.is_payment() {
                assert!(outcome.is_some(), "payment {id} lost its outcome on replay");
            }
        }
    }
}

/// Executor snapshots are copy-on-write (`Arc` per shard and outcome map):
/// the clone a checkpoint or crash-recovery state transfer holds must stay
/// frozen while the live executor keeps executing — a post-snapshot write
/// leaking into an in-flight transfer would hand the recovering replica a
/// state it never agreed on.
#[test]
fn snapshot_clone_is_isolated_from_post_snapshot_writes() {
    let m = 4;
    let (schedule, _) = random_schedule(3, m, 32, 120);
    let assign = move |key: ObjectKey| InstanceId::new(key.shard(m));
    let mut exec = executor_for(m, 32);
    exec.process_plog_schedule_stm(&schedule, &assign, 2);

    // The in-flight transfer payload.
    let snapshot = exec.clone();
    let digest = snapshot.state_digest();
    let committed = snapshot.committed_count();
    let aborted = snapshot.aborted_count();
    let supply = snapshot.total_supply();
    let escrows = snapshot.escrow_log().len();

    // The live executor moves on: fresh accounts, credits, debits and a
    // payment confirmation touching several shards.
    exec.store_mut().create_account(account(900), 1_000);
    for c in 0..8u64 {
        let _ = exec.store_mut().credit(account(c), 17);
    }
    let _ = exec.store_mut().debit(account(0), 5);
    let late = Transaction::payment(
        TxId::new(ClientId::new(9_999), 1 << 32),
        ClientId::new(900),
        ClientId::new(901),
        40,
    );
    exec.process_plog_tx(&late, assign(account(900)), &assign);
    assert_ne!(exec.state_digest(), digest, "the live executor must move");
    assert!(exec.committed_count() > committed);

    // The snapshot still shows exactly the pre-snapshot state.
    assert_eq!(snapshot.state_digest(), digest);
    assert_eq!(snapshot.store().rescan_digest(), digest);
    assert_eq!(snapshot.committed_count(), committed);
    assert_eq!(snapshot.aborted_count(), aborted);
    assert_eq!(snapshot.total_supply(), supply);
    assert_eq!(snapshot.escrow_log().len(), escrows);
    assert_eq!(snapshot.outcome(late.id), None);
    assert_eq!(snapshot.store().balance(account(900)), 0);
}

// ----------------------------------------------------------------------
// Scenario level: parallel_execution on/off across protocols and faults
// ----------------------------------------------------------------------

fn fingerprint(outcome: &ScenarioOutcome) -> (usize, usize, u64, u64, u64, Vec<u64>) {
    (
        outcome.submitted,
        outcome.confirmed,
        outcome.blocks_delivered,
        outcome.report.bytes_sent,
        outcome.report.messages_sent,
        outcome.state_digests.iter().map(|(_, d)| d.0).collect(),
    )
}

fn base_scenario(protocol: ProtocolKind, seed: u64) -> Scenario {
    let workload = WorkloadConfig {
        num_accounts: 64,
        num_transactions: 260,
        payment_share: 0.6,
        multi_payer_share: 0.08,
        num_shared_objects: 8,
        ..WorkloadConfig::small()
    };
    Scenario::new(protocol, NetworkKind::Lan, 4)
        .with_workload(workload)
        .with_seed(seed)
        .with_batch_size(64)
        .with_batch_timeout(Duration::from_millis(20))
        .with_submission_window(Duration::from_millis(500))
}

fn run(scenario: &Scenario) -> ScenarioOutcome {
    run_scenario(scenario).expect("scenario must validate")
}

/// Parallel and serial partial-log execution are bit-identical for every
/// protocol — same fingerprints, same latency trace, same per-shard stats.
#[test]
fn parallel_execution_is_bit_identical_for_all_protocols() {
    for protocol in ProtocolKind::ALL {
        for seed in [5u64, 6] {
            let serial = run(&base_scenario(protocol, seed));
            let parallel = run(&base_scenario(protocol, seed).with_parallel_execution(true));
            assert_eq!(
                fingerprint(&serial),
                fingerprint(&parallel),
                "{protocol} seed {seed} diverged across execution modes"
            );
            assert_eq!(serial.avg_latency, parallel.avg_latency, "{protocol}");
            assert_eq!(serial.report, parallel.report, "{protocol}");
            assert_eq!(serial.shard_objects, parallel.shard_objects, "{protocol}");
            assert_eq!(serial.shard_ops, parallel.shard_ops, "{protocol}");
            assert_eq!(serial.confirmed, serial.submitted, "{protocol} seed {seed}");
        }
    }
}

/// The same bit-identity must hold under the paper's fault scenarios: a 10×
/// straggler leader and a crashed replica.
#[test]
fn parallel_execution_is_bit_identical_under_faults() {
    let crash_plan = || {
        FaultPlan::none().with_crash(
            ReplicaId::new(3),
            SimTime::ZERO + Duration::from_millis(300),
        )
    };
    for protocol in [
        ProtocolKind::Orthrus,
        ProtocolKind::Ladon,
        ProtocolKind::Iss,
    ] {
        let straggler_serial = run(&base_scenario(protocol, 9).with_straggler());
        let straggler_parallel = run(&base_scenario(protocol, 9)
            .with_straggler()
            .with_parallel_execution(true));
        assert_eq!(
            fingerprint(&straggler_serial),
            fingerprint(&straggler_parallel),
            "{protocol} diverged under a straggler"
        );

        let crash_serial = run(&base_scenario(protocol, 10).with_faults(crash_plan()));
        let crash_parallel = run(&base_scenario(protocol, 10)
            .with_faults(crash_plan())
            .with_parallel_execution(true));
        assert_eq!(
            fingerprint(&crash_serial),
            fingerprint(&crash_parallel),
            "{protocol} diverged under a crash"
        );
    }
}

/// All three execution modes are bit-identical for every protocol on both a
/// uniform and a hot-account (zipf 1.4) workload — the optimistic STM engine
/// must be indistinguishable from the serial reference walk and the demotion
/// scheduler in everything but wall-clock.
#[test]
fn optimistic_stm_is_bit_identical_for_all_protocols() {
    for protocol in ProtocolKind::ALL {
        for hot in [false, true] {
            let scenario_for = |mode: ExecutionMode| {
                let mut scenario = base_scenario(protocol, 12).with_execution_mode(mode);
                if hot {
                    scenario.workload = scenario.workload.with_zipf_exponent(1.4);
                }
                scenario
            };
            let label = if hot { "zipf-1.4" } else { "uniform" };
            let serial = run(&scenario_for(ExecutionMode::Serial));
            let demotion = run(&scenario_for(ExecutionMode::ShardedDemotion));
            let stm = run(&scenario_for(ExecutionMode::OptimisticStm));
            assert_eq!(
                fingerprint(&serial),
                fingerprint(&stm),
                "{protocol} ({label}): STM diverged from the serial reference"
            );
            assert_eq!(
                fingerprint(&serial),
                fingerprint(&demotion),
                "{protocol} ({label}): demotion diverged from the serial reference"
            );
            assert_eq!(serial.avg_latency, stm.avg_latency, "{protocol} ({label})");
            assert_eq!(serial.report, stm.report, "{protocol} ({label})");
            assert_eq!(serial.shard_ops, stm.shard_ops, "{protocol} ({label})");
            assert_eq!(serial.shard_objects, stm.shard_objects, "{protocol}");
            assert_eq!(serial.confirmed, serial.submitted, "{protocol} ({label})");
        }
    }
}

/// STM bit-identity must survive the paper's fault scenarios: a 10× straggler
/// leader and a replica that crashes and later recovers through checkpoint
/// state transfer (whose payload is a COW executor snapshot).
#[test]
fn optimistic_stm_is_bit_identical_under_faults() {
    let recover_plan = || {
        FaultPlan::none().with_crash_recover(
            ReplicaId::new(2),
            SimTime::ZERO + Duration::from_millis(250),
            SimTime::ZERO + Duration::from_millis(600),
        )
    };
    for protocol in [
        ProtocolKind::Orthrus,
        ProtocolKind::Ladon,
        ProtocolKind::Iss,
    ] {
        let straggler = |mode: ExecutionMode| {
            run(&base_scenario(protocol, 9)
                .with_straggler()
                .with_execution_mode(mode))
        };
        assert_eq!(
            fingerprint(&straggler(ExecutionMode::Serial)),
            fingerprint(&straggler(ExecutionMode::OptimisticStm)),
            "{protocol} STM diverged under a straggler"
        );

        let recover = |mode: ExecutionMode| {
            run(&base_scenario(protocol, 11)
                .with_faults(recover_plan())
                .with_execution_mode(mode))
        };
        assert_eq!(
            fingerprint(&recover(ExecutionMode::Serial)),
            fingerprint(&recover(ExecutionMode::OptimisticStm)),
            "{protocol} STM diverged under crash-recovery"
        );
    }
}

/// Conservation of supply survives the parallel path: after an Orthrus run,
/// every replica's spendable balances plus outstanding escrow equal the
/// genesis supply minus exactly the fees of committed contract transactions
/// (contract fees are consumed by `commitEscrow`; payments only move funds).
/// Any partial escrow left behind by a non-atomic commit/abort would break
/// the equality.
#[test]
fn parallel_execution_conserves_supply_across_seeds() {
    for seed in [21u64, 22, 23] {
        let scenario = base_scenario(ProtocolKind::Orthrus, seed).with_parallel_execution(true);
        let (sim, _) = orthrus_core::build_simulation(&scenario).expect("valid scenario");
        let genesis_supply: u128 = sim
            .actor_as::<orthrus_core::ReplicaNode>(orthrus_sim::NodeId::replica(0))
            .unwrap()
            .executor()
            .total_supply();
        let outcome = run(&scenario);
        assert_eq!(outcome.confirmed, outcome.submitted, "seed {seed}");

        // Re-run and inspect the final executor states directly. The
        // workload seed derives from the scenario seed at build time, so the
        // regenerated trace must come from `effective_workload()`.
        let workload = Workload::generate(scenario.effective_workload());
        let (mut sim, _) = orthrus_core::build_simulation(&scenario).expect("valid scenario");
        sim.run_until(orthrus_types::SimTime::ZERO + scenario.max_sim_time);
        for r in 0..scenario.config.num_replicas {
            let node = sim
                .actor_as::<orthrus_core::ReplicaNode>(orthrus_sim::NodeId::replica(r))
                .unwrap();
            let burned: u128 = workload
                .transactions
                .iter()
                .filter(|tx| {
                    tx.kind == TxKind::Contract
                        && node.executor().outcome(tx.id) == Some(TxOutcome::Committed)
                })
                .map(|tx| u128::from(tx.total_debit()))
                .sum();
            let supply = node.executor().total_supply();
            assert_eq!(supply + burned, genesis_supply, "seed {seed} replica {r}");
        }
    }
}

/// Per-shard load counters surface the skew of a hot-account workload: with
/// `zipf_exponent ≥ 1.2` the busiest account shard carries a clear multiple
/// of the average load, and the counters agree across execution modes.
#[test]
fn hot_account_workload_shows_shard_imbalance() {
    let mut scenario = base_scenario(ProtocolKind::Orthrus, 31);
    scenario.workload = WorkloadConfig::hot_accounts()
        .with_transactions(260)
        .with_seed(31);
    scenario.workload.num_accounts = 64;
    scenario.workload.num_shared_objects = 8;
    let serial = run(&scenario);
    let parallel = run(&scenario.clone().with_parallel_execution(true));
    assert_eq!(serial.shard_ops, parallel.shard_ops);
    assert_eq!(serial.confirmed, serial.submitted);

    // Account shards only (the shared shard is last).
    let ops = &serial.shard_ops[..serial.shard_ops.len() - 1];
    let total: u64 = ops.iter().sum();
    let max = *ops.iter().max().unwrap();
    assert!(total > 0, "no account ops recorded: {ops:?}");
    let mean = total as f64 / ops.len() as f64;
    assert!(
        max as f64 >= 1.5 * mean,
        "expected a hot shard under zipf ≥ 1.2: ops {ops:?}"
    );
}
