//! Workspace-level integration tests of the paper's qualitative claims at a
//! reduced scale (the full-scale sweeps live in the benchmark harness).

use orthrus::prelude::*;

fn wan_scenario(protocol: ProtocolKind, payment_share: f64, seed: u64) -> Scenario {
    let workload = WorkloadConfig {
        num_accounts: 128,
        num_transactions: 500,
        payment_share,
        multi_payer_share: 0.05,
        num_shared_objects: 16,
        ..WorkloadConfig::small()
    };
    Scenario::new(protocol, NetworkKind::Wan, 8)
        .with_workload(workload)
        .with_seed(seed)
        .with_batch_size(64)
        .with_batch_timeout(Duration::from_millis(50))
        .with_submission_window(Duration::from_secs(2))
}

fn run(scenario: &Scenario) -> ScenarioOutcome {
    run_scenario(scenario).expect("scenario must validate")
}

/// Claim (Fig. 3c/3d): with one straggler, Orthrus's latency is far below the
/// pre-determined protocols' latency and no worse than Ladon's.
#[test]
fn straggler_latency_ranking_matches_the_paper() {
    let orthrus = run(&wan_scenario(ProtocolKind::Orthrus, 0.46, 1).with_straggler());
    let ladon = run(&wan_scenario(ProtocolKind::Ladon, 0.46, 1).with_straggler());
    let iss = run(&wan_scenario(ProtocolKind::Iss, 0.46, 1).with_straggler());

    assert_eq!(orthrus.confirmed, orthrus.submitted);
    assert_eq!(ladon.confirmed, ladon.submitted);
    assert_eq!(iss.confirmed, iss.submitted);

    // Orthrus clearly beats the pre-determined ordering under a straggler…
    assert!(
        orthrus.avg_latency.as_secs_f64() < iss.avg_latency.as_secs_f64() * 0.8,
        "Orthrus {} vs ISS {}",
        orthrus.avg_latency,
        iss.avg_latency
    );
    // …and is no worse than Ladon (the payment fast path only removes work).
    assert!(
        orthrus.avg_latency.as_secs_f64() <= ladon.avg_latency.as_secs_f64() * 1.05,
        "Orthrus {} vs Ladon {}",
        orthrus.avg_latency,
        ladon.avg_latency
    );
}

/// Claim (Fig. 1b / Fig. 6): with a straggler, global ordering dominates
/// ISS's end-to-end latency but not Orthrus's.
#[test]
fn latency_breakdown_shows_global_ordering_dominates_iss_not_orthrus() {
    let orthrus = run(&wan_scenario(ProtocolKind::Orthrus, 0.46, 2).with_straggler());
    let iss = run(&wan_scenario(ProtocolKind::Iss, 0.46, 2).with_straggler());
    let orthrus_share = orthrus.breakdown.global_ordering_share();
    let iss_share = iss.breakdown.global_ordering_share();
    assert!(
        iss_share > orthrus_share,
        "ISS global-ordering share {iss_share:.2} should exceed Orthrus's {orthrus_share:.2}"
    );
    assert!(
        iss_share > 0.3,
        "ISS global ordering share with a straggler should be substantial, got {iss_share:.2}"
    );
}

/// Claim (Fig. 5): raising the payment share lowers Orthrus's latency,
/// especially with a straggler.
#[test]
fn higher_payment_share_reduces_orthrus_latency_under_straggler() {
    let low = run(&wan_scenario(ProtocolKind::Orthrus, 0.0, 3).with_straggler());
    let high = run(&wan_scenario(ProtocolKind::Orthrus, 1.0, 3).with_straggler());
    assert_eq!(low.confirmed, low.submitted);
    assert_eq!(high.confirmed, high.submitted);
    assert!(
        high.avg_latency < low.avg_latency,
        "100% payments {} should beat 0% payments {}",
        high.avg_latency,
        low.avg_latency
    );
}

/// Claim (Fig. 3a/3b): without stragglers all protocols complete the workload
/// and Orthrus is competitive (its latency is within the range of the
/// baselines, never the worst).
#[test]
fn no_straggler_orthrus_is_competitive() {
    let mut latencies = Vec::new();
    for protocol in ProtocolKind::ALL {
        let outcome = run(&wan_scenario(protocol, 0.46, 4));
        assert_eq!(outcome.confirmed, outcome.submitted, "{protocol}");
        latencies.push((protocol, outcome.avg_latency));
    }
    let orthrus = latencies
        .iter()
        .find(|(p, _)| *p == ProtocolKind::Orthrus)
        .unwrap()
        .1;
    let worst = latencies.iter().map(|(_, l)| *l).max().unwrap();
    assert!(
        orthrus < worst || latencies.iter().all(|(_, l)| *l == worst),
        "Orthrus should not be the single worst protocol without stragglers: {latencies:?}"
    );
}
