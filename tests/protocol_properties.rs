//! Workspace-level integration tests: safety and liveness properties of the
//! full stack (clients → PBFT instances → ordering → escrow execution) for
//! Orthrus and every baseline protocol.

use orthrus::prelude::*;

/// A small but non-trivial scenario used by most tests: 4 replicas, LAN,
/// mixed payment/contract workload with multi-payer transactions.
fn base_scenario(protocol: ProtocolKind, txs: usize, seed: u64) -> Scenario {
    let workload = WorkloadConfig {
        num_accounts: 64,
        num_transactions: txs,
        payment_share: 0.46,
        multi_payer_share: 0.1,
        num_shared_objects: 8,
        ..WorkloadConfig::small()
    };
    Scenario::new(protocol, NetworkKind::Lan, 4)
        .with_workload(workload)
        .with_seed(seed)
        .with_batch_size(64)
        .with_batch_timeout(Duration::from_millis(20))
}

fn run(scenario: &Scenario) -> ScenarioOutcome {
    run_scenario(scenario).expect("scenario must validate")
}

#[test]
fn liveness_every_protocol_confirms_the_whole_workload() {
    for protocol in ProtocolKind::ALL {
        let outcome = run(&base_scenario(protocol, 300, 1));
        assert_eq!(
            outcome.confirmed, outcome.submitted,
            "{protocol}: {}/{} confirmed",
            outcome.confirmed, outcome.submitted
        );
        assert!(outcome.throughput_ktps > 0.0, "{protocol}: zero throughput");
        assert!(outcome.avg_latency > Duration::ZERO);
    }
}

#[test]
fn safety_replica_states_agree_for_every_protocol() {
    for protocol in ProtocolKind::ALL {
        let outcome = run(&base_scenario(protocol, 250, 2));
        assert_eq!(outcome.confirmed, outcome.submitted, "{protocol}");
        let first = outcome.state_digests[0].1;
        assert!(
            outcome.state_digests.iter().all(|(_, d)| *d == first),
            "{protocol}: replica states diverged: {:?}",
            outcome.state_digests
        );
    }
}

#[test]
fn runs_are_deterministic_for_a_fixed_seed() {
    let a = run(&base_scenario(ProtocolKind::Orthrus, 200, 3));
    let b = run(&base_scenario(ProtocolKind::Orthrus, 200, 3));
    assert_eq!(a.confirmed, b.confirmed);
    assert_eq!(a.avg_latency, b.avg_latency);
    assert_eq!(a.state_digests, b.state_digests);
    // A different seed gives a different (but still complete) run.
    let c = run(&base_scenario(ProtocolKind::Orthrus, 200, 4));
    assert_eq!(c.confirmed, c.submitted);
}

#[test]
fn orthrus_and_ladon_converge_to_the_same_final_balances() {
    // The same workload executed by two different protocols must produce the
    // same final object states: the hybrid fast path changes *when*
    // transactions confirm, never *what* they compute.
    let orthrus = run(&base_scenario(ProtocolKind::Orthrus, 250, 5));
    let ladon = run(&base_scenario(ProtocolKind::Ladon, 250, 5));
    assert_eq!(orthrus.confirmed, orthrus.submitted);
    assert_eq!(ladon.confirmed, ladon.submitted);
    assert_eq!(
        orthrus.state_digests[0].1, ladon.state_digests[0].1,
        "Orthrus and Ladon disagree on the final state"
    );
}

#[test]
fn payments_only_workload_avoids_global_ordering_in_orthrus() {
    let workload = WorkloadConfig {
        num_accounts: 64,
        num_transactions: 300,
        payment_share: 1.0,
        multi_payer_share: 0.1,
        num_shared_objects: 0,
        ..WorkloadConfig::small()
    };
    let mut scenario = Scenario::new(ProtocolKind::Orthrus, NetworkKind::Lan, 4)
        .with_workload(workload)
        .with_seed(6);
    scenario.config.batch_size = 64;
    let outcome = run(&scenario);
    assert_eq!(outcome.confirmed, outcome.submitted);
    // Payments confirm straight from the partial logs, so the global-ordering
    // share of end-to-end latency is negligible.
    assert!(
        outcome.breakdown.global_ordering_share() < 0.05,
        "global ordering share was {:.3}",
        outcome.breakdown.global_ordering_share()
    );
}

#[test]
fn selfish_replicas_do_not_stop_confirmation() {
    // Undetectable fault (paper §VII-E): one replica only participates in the
    // instance it leads. With n = 4 and f = 1 the system still confirms
    // everything, just slower on the selfish replica's instances.
    let mut scenario = base_scenario(ProtocolKind::Orthrus, 200, 7);
    scenario.faults = FaultPlan::none().with_selfish(ReplicaId::new(3));
    let outcome = run(&scenario);
    assert_eq!(outcome.confirmed, outcome.submitted);
}

#[test]
fn crash_fault_triggers_view_change_and_recovery() {
    // The leader of instance 0 crashes shortly after the run starts; its
    // instance recovers through a view change and the workload still
    // completes. The view-change timeout is shortened so the test stays
    // fast.
    let mut scenario = base_scenario(ProtocolKind::Orthrus, 200, 8);
    scenario.config.view_change_timeout = Duration::from_secs(2);
    scenario.faults = FaultPlan::none().with_crash(ReplicaId::new(0), SimTime::from_millis(200));
    scenario.max_sim_time = Duration::from_secs(120);
    let outcome = run(&scenario);
    assert!(
        outcome.view_changes > 0,
        "expected at least one view change, got none"
    );
    assert_eq!(
        outcome.confirmed, outcome.submitted,
        "workload did not complete after the crash: {}/{}",
        outcome.confirmed, outcome.submitted
    );
}

#[test]
fn wan_and_lan_models_produce_sane_relative_latencies() {
    let lan = run(&base_scenario(ProtocolKind::Orthrus, 150, 9));
    let mut wan_scenario = base_scenario(ProtocolKind::Orthrus, 150, 9);
    wan_scenario.network = NetworkKind::Wan;
    let wan = run(&wan_scenario);
    assert_eq!(lan.confirmed, lan.submitted);
    assert_eq!(wan.confirmed, wan.submitted);
    // WAN latency must be clearly higher than LAN latency for the same
    // protocol and workload.
    assert!(
        wan.avg_latency.as_secs_f64() > lan.avg_latency.as_secs_f64() * 1.5,
        "WAN {} vs LAN {}",
        wan.avg_latency,
        lan.avg_latency
    );
}
