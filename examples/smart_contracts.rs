//! Smart contracts: the hybrid-ordering case.
//!
//! This example mirrors the running example of the paper's appendix: clients
//! make plain payments while also invoking a shared smart contract that
//! charges each caller a fee. Contract transactions must be globally ordered;
//! payments by the same payers keep flowing thanks to the escrow mechanism.
//!
//! The example compares Orthrus against Ladon (dynamic global ordering
//! without the payment fast path) on the same mixed workload.
//!
//! ```bash
//! cargo run --release --example smart_contracts
//! ```

use orthrus::prelude::*;

fn scenario(protocol: ProtocolKind, payment_share: f64) -> Scenario {
    let workload = WorkloadConfig {
        num_accounts: 256,
        num_transactions: 1_200,
        payment_share,
        multi_payer_share: 0.05,
        num_shared_objects: 16,
        ..WorkloadConfig::small()
    };
    Scenario::new(protocol, NetworkKind::Wan, 8)
        .with_workload(workload)
        .with_seed(5)
        .with_batch_size(256)
}

fn main() {
    println!("mixed payment / contract workload on 8 WAN replicas\n");
    println!(
        "{:<10} {:>9} {:>12} {:>12} {:>14}",
        "protocol", "payments", "throughput", "avg latency", "global share"
    );
    for (protocol, share) in [
        (ProtocolKind::Orthrus, 0.46),
        (ProtocolKind::Ladon, 0.46),
        (ProtocolKind::Orthrus, 0.9),
        (ProtocolKind::Ladon, 0.9),
    ] {
        let outcome = run_scenario(&scenario(protocol, share)).expect("scenario must validate");
        assert_eq!(outcome.confirmed, outcome.submitted);
        println!(
            "{:<10} {:>8.0}% {:>9.2} ktps {:>12} {:>13.1}%",
            protocol.label(),
            share * 100.0,
            outcome.throughput_ktps,
            outcome.avg_latency,
            outcome.breakdown.global_ordering_share() * 100.0
        );
    }
    println!(
        "\nContract transactions still pay the global-ordering price in both\n\
         protocols, but Orthrus confirms the payment fraction without it, so a\n\
         higher payment share directly lowers its average latency (paper Fig. 5)."
    );
}
