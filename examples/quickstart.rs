//! Quickstart: run Orthrus on a small simulated LAN cluster and print the
//! headline metrics.
//!
//! The scenario is built with the fluent builder API and run through the
//! fallible driver — an invalid configuration is rejected with a
//! descriptive error before anything is simulated. The same run ships as a
//! declarative spec (`scenarios/quickstart.orth`), so this is equivalent to:
//!
//! ```bash
//! cargo run --release --bin orthrus -- run quickstart
//! ```
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use orthrus::prelude::*;

fn main() {
    // Four replicas, four SB instances, a small Ethereum-like workload with
    // the paper's 46% payment share. The scenario seed is the single source
    // of truth: it drives both the workload generator and network jitter.
    let workload = WorkloadConfig::small()
        .with_transactions(1_000)
        .with_payment_share(0.46);
    let scenario = Scenario::new(ProtocolKind::Orthrus, NetworkKind::Lan, 4)
        .with_workload(workload)
        .with_seed(1);

    println!("running Orthrus on a 4-replica simulated LAN ...");
    let outcome = match run_scenario(&scenario) {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("scenario rejected: {err}");
            std::process::exit(1);
        }
    };

    println!();
    println!("submitted transactions : {}", outcome.submitted);
    println!("confirmed transactions : {}", outcome.confirmed);
    println!(
        "throughput             : {:.2} ktps",
        outcome.throughput_ktps
    );
    println!("average latency        : {}", outcome.avg_latency);
    println!("p95 latency            : {}", outcome.p95_latency);
    println!("blocks delivered       : {}", outcome.blocks_delivered);
    println!();
    println!("latency breakdown (average per stage):");
    println!("  send             {}", outcome.breakdown.send);
    println!("  preprocessing    {}", outcome.breakdown.preprocess);
    println!("  partial ordering {}", outcome.breakdown.partial_ordering);
    println!("  global ordering  {}", outcome.breakdown.global_ordering);
    println!("  reply            {}", outcome.breakdown.reply);

    // Every honest replica must end in the same state (safety, Theorem 1) —
    // the default stop conditions (AllConfirmed, then DigestsQuiesce) drain
    // the run until that digest agreement is observable.
    let first = outcome.state_digests[0].1;
    assert!(
        outcome.state_digests.iter().all(|(_, d)| *d == first),
        "replica states diverged"
    );
    println!();
    println!(
        "all {} replicas agree on the final state digest {}",
        outcome.state_digests.len(),
        first
    );
}
