//! Quickstart: run Orthrus on a small simulated LAN cluster and print the
//! headline metrics.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use orthrus::prelude::*;

fn main() {
    // Four replicas, four SB instances, a small Ethereum-like workload with
    // the paper's 46% payment share.
    let workload = WorkloadConfig::small()
        .with_transactions(1_000)
        .with_payment_share(0.46);
    let scenario = Scenario::new(ProtocolKind::Orthrus, NetworkKind::Lan, 4)
        .with_workload(workload)
        .with_seed(1);

    println!("running Orthrus on a 4-replica simulated LAN ...");
    let outcome = run_scenario(&scenario);

    println!();
    println!("submitted transactions : {}", outcome.submitted);
    println!("confirmed transactions : {}", outcome.confirmed);
    println!(
        "throughput             : {:.2} ktps",
        outcome.throughput_ktps
    );
    println!("average latency        : {}", outcome.avg_latency);
    println!("p95 latency            : {}", outcome.p95_latency);
    println!("blocks delivered       : {}", outcome.blocks_delivered);
    println!();
    println!("latency breakdown (average per stage):");
    println!("  send             {}", outcome.breakdown.send);
    println!("  preprocessing    {}", outcome.breakdown.preprocess);
    println!("  partial ordering {}", outcome.breakdown.partial_ordering);
    println!("  global ordering  {}", outcome.breakdown.global_ordering);
    println!("  reply            {}", outcome.breakdown.reply);

    // Every honest replica must end in the same state (safety, Theorem 1).
    let first = outcome.state_digests[0].1;
    assert!(
        outcome.state_digests.iter().all(|(_, d)| *d == first),
        "replica states diverged"
    );
    println!();
    println!(
        "all {} replicas agree on the final state digest {}",
        outcome.state_digests.len(),
        first
    );
}
