//! Payment network: a payments-only workload (the conflict-free case the
//! paper's partial ordering is designed for), including multi-payer
//! transfers that exercise the cross-instance escrow mechanism.
//!
//! The example runs the same workload with and without a 10× straggler and
//! shows that Orthrus's payment fast path keeps latency low in both cases.
//!
//! ```bash
//! cargo run --release --example payment_network
//! ```

use orthrus::prelude::*;

fn scenario(straggler: bool) -> Scenario {
    let workload = WorkloadConfig {
        num_accounts: 256,
        num_transactions: 1_500,
        payment_share: 1.0,     // payments only
        multi_payer_share: 0.1, // 10% of them have two payers
        num_shared_objects: 0,
        ..WorkloadConfig::small()
    };
    let mut s = Scenario::new(ProtocolKind::Orthrus, NetworkKind::Wan, 8)
        .with_workload(workload)
        .with_seed(3)
        .with_batch_size(256);
    if straggler {
        s = s.with_straggler();
    }
    s
}

fn main() {
    for straggler in [false, true] {
        let label = if straggler {
            "with a 10x straggler"
        } else {
            "no straggler"
        };
        println!("== payments-only workload on 8 WAN replicas ({label}) ==");
        let outcome = run_scenario(&scenario(straggler)).expect("scenario must validate");
        println!(
            "  confirmed        : {}/{}",
            outcome.confirmed, outcome.submitted
        );
        println!("  throughput       : {:.2} ktps", outcome.throughput_ktps);
        println!("  average latency  : {}", outcome.avg_latency);
        println!(
            "  global ordering  : {} ({:.1}% of end-to-end latency)",
            outcome.breakdown.global_ordering,
            outcome.breakdown.global_ordering_share() * 100.0
        );
        let first = outcome.state_digests[0].1;
        assert!(outcome.state_digests.iter().all(|(_, d)| *d == first));
        println!(
            "  state digests    : all {} replicas agree",
            outcome.state_digests.len()
        );
        println!();
    }
    println!(
        "Payments are confirmed from the partial logs alone, so the straggler's\n\
         slow instance barely affects their latency — exactly the motivation for\n\
         Orthrus's concurrent partial ordering."
    );
}
