//! Straggler comparison: reproduce the headline qualitative claim of the
//! paper on a small scale — with one 10× straggler instance, pre-determined
//! global ordering (ISS/RCC/Mir) stalls while Orthrus keeps confirming
//! payments quickly.
//!
//! ```bash
//! cargo run --release --example straggler_comparison
//! ```

use orthrus::prelude::*;

fn scenario(protocol: ProtocolKind, straggler: bool) -> Scenario {
    let workload = WorkloadConfig {
        num_accounts: 256,
        num_transactions: 1_000,
        payment_share: 0.46,
        num_shared_objects: 16,
        ..WorkloadConfig::small()
    };
    let mut s = Scenario::new(protocol, NetworkKind::Wan, 8)
        .with_workload(workload)
        .with_seed(7)
        .with_batch_size(128);
    if straggler {
        s = s.with_straggler();
    }
    s
}

fn main() {
    let protocols = [
        ProtocolKind::Orthrus,
        ProtocolKind::Ladon,
        ProtocolKind::Dqbft,
        ProtocolKind::Iss,
        ProtocolKind::Rcc,
        ProtocolKind::MirBft,
    ];
    for straggler in [false, true] {
        println!(
            "== 8 WAN replicas, {} ==",
            if straggler {
                "one 10x straggler"
            } else {
                "no straggler"
            }
        );
        println!(
            "{:<10} {:>12} {:>14} {:>14}",
            "protocol", "throughput", "avg latency", "p95 latency"
        );
        let mut baseline_latency = None;
        for protocol in protocols {
            let outcome =
                run_scenario(&scenario(protocol, straggler)).expect("scenario must validate");
            println!(
                "{:<10} {:>9.2} ktps {:>14} {:>14}",
                protocol.label(),
                outcome.throughput_ktps,
                outcome.avg_latency,
                outcome.p95_latency
            );
            if protocol == ProtocolKind::Orthrus {
                baseline_latency = Some(outcome.avg_latency);
            } else if straggler && protocol == ProtocolKind::Iss {
                if let Some(orthrus) = baseline_latency {
                    let reduction =
                        1.0 - orthrus.as_secs_f64() / outcome.avg_latency.as_secs_f64().max(1e-9);
                    println!(
                        "           -> Orthrus latency is {:.0}% lower than ISS under a straggler",
                        reduction * 100.0
                    );
                }
            }
        }
        println!();
    }
}
