//! The `.orth` experiment-spec format: a zero-dependency, line-oriented
//! `key = value` notation for scenarios and sweep grids.
//!
//! # Grammar
//!
//! ```text
//! file     := line*
//! line     := blank | comment | kv | section
//! comment  := '#' <anything>                 (full-line only)
//! section  := '[' name ']'                   (scenario | base | axes | full_scale)
//! kv       := key '=' value                  (key: [a-z0-9_]+, value: to end of line)
//! ```
//!
//! Top-level keys (before any section): `kind` (`scenario` | `sweep`),
//! `name`, `title` (optional), `x_axis` (sweeps, optional).
//!
//! A `kind = scenario` file holds one `[scenario]` section; a `kind = sweep`
//! file holds a `[base]` section (scenario defaults), an `[axes]` section
//! whose entries form a cartesian grid (first axis outermost), and an
//! optional `[full_scale]` section of overrides applied when lowering at
//! [`crate::SpecScale::Full`].
//!
//! Parsing and serialization are exact inverses at the data-model level:
//! `parse(serialize(spec)) == spec` for every valid spec (a seeded-loop
//! property test pins this). Comments and blank lines are the only content
//! the round trip does not preserve.

use orthrus_core::StopCondition;
use orthrus_sim::QueueKind;
use orthrus_types::{EngineMode, ExecutionMode, NetworkKind, ProtocolKind};
use std::fmt;
use std::fmt::Write as _;

/// A parse or lowering error, with the 1-based source line when known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number in the spec source, if the error is positional.
    pub line: Option<usize>,
    /// Human-readable description.
    pub msg: String,
}

impl SpecError {
    pub(crate) fn at(line: usize, msg: impl Into<String>) -> Self {
        Self {
            line: Some(line),
            msg: msg.into(),
        }
    }

    pub(crate) fn general(msg: impl Into<String>) -> Self {
        Self {
            line: None,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "line {line}: {}", self.msg),
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<SpecError> for orthrus_types::OrthrusError {
    fn from(err: SpecError) -> Self {
        orthrus_types::OrthrusError::Config(format!("spec error: {err}"))
    }
}

/// One experiment spec: a single scenario or a sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub enum Spec {
    /// A single named scenario.
    Scenario(ScenarioSpec),
    /// A named sweep: base parameters × axis grid.
    Sweep(SweepSpec),
}

impl Spec {
    /// The spec's registry name.
    pub fn name(&self) -> &str {
        match self {
            Spec::Scenario(s) => &s.name,
            Spec::Sweep(s) => &s.name,
        }
    }

    /// The human-readable title, if one is set.
    pub fn title(&self) -> Option<&str> {
        match self {
            Spec::Scenario(s) => s.title.as_deref(),
            Spec::Sweep(s) => s.title.as_deref(),
        }
    }

    /// `"scenario"` or `"sweep"`.
    pub fn kind(&self) -> &'static str {
        match self {
            Spec::Scenario(_) => "scenario",
            Spec::Sweep(_) => "sweep",
        }
    }
}

/// A single named scenario spec (`kind = scenario`).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Registry name (matches the file stem for checked-in specs).
    pub name: String,
    /// Optional human-readable title.
    pub title: Option<String>,
    /// The scenario parameters (`[scenario]` section).
    pub params: Params,
}

/// A named sweep spec (`kind = sweep`).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Registry name (matches the file stem for checked-in specs).
    pub name: String,
    /// Optional human-readable title.
    pub title: Option<String>,
    /// Which axis provides each point's x value (default: `replicas`).
    pub x_axis: Option<AxisKey>,
    /// Scenario defaults every grid point starts from (`[base]` section).
    pub base: Params,
    /// The grid axes, first axis outermost (`[axes]` section).
    pub axes: Vec<Axis>,
    /// Raw `key = value` overrides applied at full scale (`[full_scale]`
    /// section): keys naming an existing axis replace that axis's values,
    /// all other keys override the base parameters.
    pub full_scale: Vec<(String, String)>,
}

/// Scenario parameters as written in a spec (`[scenario]` / `[base]`
/// sections). Every field is optional; unset fields keep the defaults of
/// [`orthrus_core::Scenario::new`] with a full-size
/// [`orthrus_workload::WorkloadConfig::default`] workload (see the lowering
/// rules in `ARCHITECTURE.md`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Params {
    /// `protocol = orthrus | iss | rcc | mir | dqbft | ladon`
    pub protocol: Option<ProtocolKind>,
    /// `network = lan | wan`
    pub network: Option<NetworkKind>,
    /// `replicas = <u32>` (instances follow `m = n`)
    pub replicas: Option<u32>,
    /// `clients = <u64>` client-actor count
    pub clients: Option<u64>,
    /// `seed = <u64>` (single source of truth; drives the workload too)
    pub seed: Option<u64>,
    /// `batch_size = <usize>`
    pub batch_size: Option<usize>,
    /// `batch_timeout_ms = <u64>`
    pub batch_timeout_ms: Option<u64>,
    /// `view_change_timeout_ms = <u64>`
    pub view_change_timeout_ms: Option<u64>,
    /// `max_inflight_blocks = <u64>`
    pub max_inflight_blocks: Option<u64>,
    /// `parallel_execution = true | false`
    pub parallel_execution: Option<bool>,
    /// `execution_mode = serial | sharded | stm` (wins over the
    /// `parallel_execution` boolean shorthand when both are set)
    pub execution_mode: Option<ExecutionMode>,
    /// `checkpoint_gc = true | false`
    pub checkpoint_gc: Option<bool>,
    /// `queue = heap | calendar`
    pub queue: Option<QueueKind>,
    /// `engine_mode = serial | parallel` — simulation engine: the serial
    /// reference walk or the conservative time-window parallel scheduler
    /// (bit-identical outcomes; parallel only changes wall-clock)
    pub engine_mode: Option<EngineMode>,
    /// `accounts = <u64>`
    pub accounts: Option<u64>,
    /// `transactions = <usize>`
    pub transactions: Option<usize>,
    /// `payment_share = <f64 in [0,1]>`
    pub payment_share: Option<f64>,
    /// `multi_payer_share = <f64 in [0,1]>`
    pub multi_payer_share: Option<f64>,
    /// `shared_objects = <u64>`
    pub shared_objects: Option<u64>,
    /// `zipf_exponent = <f64>`
    pub zipf_exponent: Option<f64>,
    /// `payload_bytes = <u32>`
    pub payload_bytes: Option<u32>,
    /// `initial_balance = <u64>`
    pub initial_balance: Option<u64>,
    /// `max_transfer = <u64>`
    pub max_transfer: Option<u64>,
    /// `submission_window_ms = <u64>`
    pub submission_window_ms: Option<u64>,
    /// `max_sim_time_ms = <u64>`
    pub max_sim_time_ms: Option<u64>,
    /// `stop = all_confirmed, digests_quiesce, sim_time_limit` (any subset)
    pub stop: Option<Vec<StopCondition>>,
    /// `stragglers = <replica>x<factor>, ...` (e.g. `0x10`)
    pub stragglers: Option<Vec<(u32, f64)>>,
    /// `crashes = <replica>@<ms>, ...` (e.g. `1@9000`)
    pub crashes: Option<Vec<(u32, u64)>>,
    /// `crash_recover = <replica>@<crash_ms>..<recover_ms>, ...`
    /// (e.g. `2@9000..15000`): the replica is silent in the window and then
    /// restarts, rejoining via state transfer.
    pub crash_recover: Option<Vec<(u32, u64, u64)>>,
    /// `selfish = <replica>, ...`
    pub selfish: Option<Vec<u32>>,
    /// `crash_count = <u32>`: crash replicas `1..=count` at `crash_at_ms`
    /// (the paper's Fig. 7 placement: instance 0 keeps its leader).
    pub crash_count: Option<u32>,
    /// `crash_at_ms = <u64>` (default 9000, the paper's t = 9 s)
    pub crash_at_ms: Option<u64>,
    /// `selfish_count = <u32>`: flag replicas `n-1, n-2, ...` as selfish
    /// (the paper's Fig. 8 placement: chosen from the tail so they lead
    /// instances other than instance 0).
    pub selfish_count: Option<u32>,
    /// `label = <string>` series label (default: the protocol's label)
    pub label: Option<String>,
    /// `x = <f64>` explicit x value (default: from `x_axis`, else replicas)
    pub x: Option<f64>,
}

/// The sweepable axes. Each key also names the value written into
/// [`crate::LoweredPoint::x`] when it is the sweep's `x_axis`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AxisKey {
    /// Protocol under test (not usable as `x_axis`).
    Protocol,
    /// Replica count (`m = n` instances follow).
    Replicas,
    /// Scenario seed (supports `start..=end` ranges).
    Seed,
    /// Payment share in percent (lowered to `payment_share = pct / 100`).
    PaymentSharePct,
    /// Multi-payer share in percent.
    MultiPayerPct,
    /// Number of crash faults (placement as in `Params::crash_count`).
    CrashCount,
    /// Number of selfish replicas (placement as in `Params::selfish_count`).
    SelfishCount,
    /// Zipf exponent of account popularity.
    ZipfExponent,
    /// Per-instance leader pipelining depth
    /// (`ProtocolConfig::max_inflight_blocks`) — the adaptive-batching sweep
    /// axis.
    MaxInflightBlocks,
    /// Partial-log execution mode (not usable as `x_axis`; series axis for
    /// the STM contention ablation).
    ExecutionMode,
}

impl AxisKey {
    /// All axis keys (used by the parser and lint diagnostics).
    pub const ALL: [AxisKey; 10] = [
        AxisKey::Protocol,
        AxisKey::Replicas,
        AxisKey::Seed,
        AxisKey::PaymentSharePct,
        AxisKey::MultiPayerPct,
        AxisKey::CrashCount,
        AxisKey::SelfishCount,
        AxisKey::ZipfExponent,
        AxisKey::MaxInflightBlocks,
        AxisKey::ExecutionMode,
    ];

    /// Stable spec-file name of the axis.
    pub fn name(self) -> &'static str {
        match self {
            AxisKey::Protocol => "protocol",
            AxisKey::Replicas => "replicas",
            AxisKey::Seed => "seed",
            AxisKey::PaymentSharePct => "payment_share_pct",
            AxisKey::MultiPayerPct => "multi_payer_pct",
            AxisKey::CrashCount => "crash_count",
            AxisKey::SelfishCount => "selfish_count",
            AxisKey::ZipfExponent => "zipf_exponent",
            AxisKey::MaxInflightBlocks => "max_inflight_blocks",
            AxisKey::ExecutionMode => "execution_mode",
        }
    }

    /// Parse a spec-file name back into an axis key.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// One sweep axis: a key plus its value list.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// Which knob the axis sweeps.
    pub key: AxisKey,
    /// The values, in sweep order.
    pub values: AxisValues,
}

/// Axis values, typed per [`AxisKey`]: `protocol` takes protocol names,
/// `execution_mode` takes mode names, `zipf_exponent` takes floats, every
/// other axis takes unsigned integers (written as a comma list or, for
/// seeds, a `start..=end` range).
#[derive(Debug, Clone, PartialEq)]
pub enum AxisValues {
    /// Protocol names (the `protocol` axis).
    Protocols(Vec<ProtocolKind>),
    /// Execution-mode names (the `execution_mode` axis).
    Modes(Vec<ExecutionMode>),
    /// Unsigned integers (every numeric axis except `zipf_exponent`).
    Ints(Vec<u64>),
    /// Floats (the `zipf_exponent` axis).
    Floats(Vec<f64>),
}

impl AxisValues {
    /// Number of values on the axis.
    pub fn len(&self) -> usize {
        match self {
            AxisValues::Protocols(v) => v.len(),
            AxisValues::Modes(v) => v.len(),
            AxisValues::Ints(v) => v.len(),
            AxisValues::Floats(v) => v.len(),
        }
    }

    /// Is the axis empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ----------------------------------------------------------------------
// Parsing
// ----------------------------------------------------------------------

fn protocol_name(protocol: ProtocolKind) -> &'static str {
    match protocol {
        ProtocolKind::Orthrus => "orthrus",
        ProtocolKind::Iss => "iss",
        ProtocolKind::Rcc => "rcc",
        ProtocolKind::MirBft => "mir",
        ProtocolKind::Dqbft => "dqbft",
        ProtocolKind::Ladon => "ladon",
    }
}

fn parse_protocol(value: &str, line: usize) -> Result<ProtocolKind, SpecError> {
    ProtocolKind::ALL
        .into_iter()
        .find(|p| protocol_name(*p) == value)
        .ok_or_else(|| {
            SpecError::at(
                line,
                format!("unknown protocol {value:?} (orthrus|iss|rcc|mir|dqbft|ladon)"),
            )
        })
}

fn parse_network(value: &str, line: usize) -> Result<NetworkKind, SpecError> {
    match value {
        "lan" => Ok(NetworkKind::Lan),
        "wan" => Ok(NetworkKind::Wan),
        _ => Err(SpecError::at(
            line,
            format!("unknown network {value:?} (lan|wan)"),
        )),
    }
}

fn parse_queue(value: &str, line: usize) -> Result<QueueKind, SpecError> {
    match value {
        "heap" => Ok(QueueKind::Heap),
        "calendar" => Ok(QueueKind::Calendar),
        _ => Err(SpecError::at(
            line,
            format!("unknown queue {value:?} (heap|calendar)"),
        )),
    }
}

fn parse_execution_mode(value: &str, line: usize) -> Result<ExecutionMode, SpecError> {
    ExecutionMode::from_name(value).ok_or_else(|| {
        SpecError::at(
            line,
            format!("unknown execution_mode {value:?} (serial|sharded|stm)"),
        )
    })
}

fn parse_engine_mode(value: &str, line: usize) -> Result<EngineMode, SpecError> {
    EngineMode::from_name(value).ok_or_else(|| {
        SpecError::at(
            line,
            format!("unknown engine_mode {value:?} (serial|parallel)"),
        )
    })
}

fn parse_bool(value: &str, line: usize) -> Result<bool, SpecError> {
    match value {
        "true" => Ok(true),
        "false" => Ok(false),
        _ => Err(SpecError::at(
            line,
            format!("expected true|false, got {value:?}"),
        )),
    }
}

fn parse_num<T: std::str::FromStr>(value: &str, line: usize, what: &str) -> Result<T, SpecError> {
    value
        .parse::<T>()
        .map_err(|_| SpecError::at(line, format!("invalid {what}: {value:?}")))
}

/// Parse a float, rejecting `NaN`/`inf`: non-finite values have no place in
/// the spec format and would corrupt the emitted JSON series downstream.
fn parse_finite_f64(value: &str, line: usize, what: &str) -> Result<f64, SpecError> {
    let parsed: f64 = parse_num(value, line, what)?;
    if !parsed.is_finite() {
        return Err(SpecError::at(
            line,
            format!("{what} must be finite, got {value:?}"),
        ));
    }
    Ok(parsed)
}

fn list_items(value: &str) -> impl Iterator<Item = &str> {
    value.split(',').map(str::trim).filter(|s| !s.is_empty())
}

/// Parse an integer list, allowing a single inclusive `start..=end` range
/// (used for seed axes and anywhere a dense integer list would be tedious).
fn parse_int_list(value: &str, line: usize, what: &str) -> Result<Vec<u64>, SpecError> {
    if let Some((start, end)) = value.split_once("..=") {
        let start: u64 = parse_num(start.trim(), line, what)?;
        let end: u64 = parse_num(end.trim(), line, what)?;
        if end < start {
            return Err(SpecError::at(
                line,
                format!("empty range {start}..={end} for {what}"),
            ));
        }
        return Ok((start..=end).collect());
    }
    list_items(value)
        .map(|item| parse_num(item, line, what))
        .collect()
}

impl Params {
    /// Set `key` from its textual `value`. `overwrite` is only allowed for
    /// `[full_scale]` overrides; inside a section a duplicate key is an
    /// error.
    pub(crate) fn set(
        &mut self,
        key: &str,
        value: &str,
        line: usize,
        overwrite: bool,
    ) -> Result<(), SpecError> {
        macro_rules! put {
            ($field:ident, $parsed:expr) => {{
                if self.$field.is_some() && !overwrite {
                    return Err(SpecError::at(line, format!("duplicate key {key:?}")));
                }
                self.$field = Some($parsed);
                Ok(())
            }};
        }
        match key {
            "protocol" => put!(protocol, parse_protocol(value, line)?),
            "network" => put!(network, parse_network(value, line)?),
            "replicas" => put!(replicas, parse_num(value, line, "replica count")?),
            "clients" => put!(clients, parse_num(value, line, "client count")?),
            "seed" => put!(seed, parse_num(value, line, "seed")?),
            "batch_size" => put!(batch_size, parse_num(value, line, "batch size")?),
            "batch_timeout_ms" => put!(batch_timeout_ms, parse_num(value, line, "timeout")?),
            "view_change_timeout_ms" => {
                put!(view_change_timeout_ms, parse_num(value, line, "timeout")?)
            }
            "max_inflight_blocks" => {
                put!(max_inflight_blocks, parse_num(value, line, "depth")?)
            }
            "parallel_execution" => put!(parallel_execution, parse_bool(value, line)?),
            "execution_mode" => put!(execution_mode, parse_execution_mode(value, line)?),
            "checkpoint_gc" => put!(checkpoint_gc, parse_bool(value, line)?),
            "queue" => put!(queue, parse_queue(value, line)?),
            "engine_mode" => put!(engine_mode, parse_engine_mode(value, line)?),
            "accounts" => put!(accounts, parse_num(value, line, "account count")?),
            "transactions" => put!(transactions, parse_num(value, line, "transaction count")?),
            "payment_share" => put!(payment_share, parse_finite_f64(value, line, "share")?),
            "multi_payer_share" => {
                put!(multi_payer_share, parse_finite_f64(value, line, "share")?)
            }
            "shared_objects" => put!(shared_objects, parse_num(value, line, "object count")?),
            "zipf_exponent" => put!(zipf_exponent, parse_finite_f64(value, line, "exponent")?),
            "payload_bytes" => put!(payload_bytes, parse_num(value, line, "byte count")?),
            "initial_balance" => put!(initial_balance, parse_num(value, line, "balance")?),
            "max_transfer" => put!(max_transfer, parse_num(value, line, "amount")?),
            "submission_window_ms" => {
                put!(submission_window_ms, parse_num(value, line, "duration")?)
            }
            "max_sim_time_ms" => put!(max_sim_time_ms, parse_num(value, line, "duration")?),
            "stop" => {
                let conditions: Vec<StopCondition> = list_items(value)
                    .map(|item| {
                        StopCondition::from_name(item).ok_or_else(|| {
                            SpecError::at(
                                line,
                                format!(
                                    "unknown stop condition {item:?} \
                                     (all_confirmed|digests_quiesce|sim_time_limit)"
                                ),
                            )
                        })
                    })
                    .collect::<Result<_, _>>()?;
                put!(stop, conditions)
            }
            "stragglers" => {
                let entries: Vec<(u32, f64)> = list_items(value)
                    .map(|item| {
                        let (replica, factor) = item.split_once('x').ok_or_else(|| {
                            SpecError::at(
                                line,
                                format!("straggler {item:?} is not <replica>x<factor>"),
                            )
                        })?;
                        Ok((
                            parse_num(replica.trim(), line, "replica id")?,
                            parse_finite_f64(factor.trim(), line, "slowdown factor")?,
                        ))
                    })
                    .collect::<Result<_, SpecError>>()?;
                put!(stragglers, entries)
            }
            "crashes" => {
                let entries: Vec<(u32, u64)> = list_items(value)
                    .map(|item| {
                        let (replica, at) = item.split_once('@').ok_or_else(|| {
                            SpecError::at(line, format!("crash {item:?} is not <replica>@<ms>"))
                        })?;
                        Ok((
                            parse_num(replica.trim(), line, "replica id")?,
                            parse_num(at.trim(), line, "crash time (ms)")?,
                        ))
                    })
                    .collect::<Result<_, SpecError>>()?;
                put!(crashes, entries)
            }
            "crash_recover" => {
                let entries: Vec<(u32, u64, u64)> = list_items(value)
                    .map(|item| {
                        let (replica, window) = item.split_once('@').ok_or_else(|| {
                            SpecError::at(
                                line,
                                format!(
                                    "crash_recover {item:?} is not \
                                     <replica>@<crash_ms>..<recover_ms>"
                                ),
                            )
                        })?;
                        let (crash_ms, recover_ms) = window.split_once("..").ok_or_else(|| {
                            SpecError::at(
                                line,
                                format!(
                                    "crash_recover {item:?} is missing the \
                                     <crash_ms>..<recover_ms> window"
                                ),
                            )
                        })?;
                        Ok((
                            parse_num(replica.trim(), line, "replica id")?,
                            parse_num(crash_ms.trim(), line, "crash time (ms)")?,
                            parse_num(recover_ms.trim(), line, "recovery time (ms)")?,
                        ))
                    })
                    .collect::<Result<_, SpecError>>()?;
                put!(crash_recover, entries)
            }
            "selfish" => {
                let entries: Vec<u32> = list_items(value)
                    .map(|item| parse_num(item, line, "replica id"))
                    .collect::<Result<_, _>>()?;
                put!(selfish, entries)
            }
            "crash_count" => put!(crash_count, parse_num(value, line, "fault count")?),
            "crash_at_ms" => put!(crash_at_ms, parse_num(value, line, "crash time (ms)")?),
            "selfish_count" => put!(selfish_count, parse_num(value, line, "fault count")?),
            "label" => {
                // Labels flow into the emitted JSON/CSV series verbatim, so
                // keep them to a charset that cannot corrupt either format.
                if value.is_empty()
                    || value
                        .chars()
                        .any(|c| c.is_control() || matches!(c, '"' | '\\' | ','))
                {
                    return Err(SpecError::at(
                        line,
                        format!(
                            "label {value:?} must be non-empty and free of quotes, \
                             backslashes, commas and control characters"
                        ),
                    ));
                }
                put!(label, value.to_string())
            }
            "x" => put!(x, parse_finite_f64(value, line, "x value")?),
            _ => Err(SpecError::at(line, format!("unknown parameter {key:?}"))),
        }
    }
}

pub(crate) fn parse_axis(key: &str, value: &str, line: usize) -> Result<Axis, SpecError> {
    let key = AxisKey::from_name(key).ok_or_else(|| {
        let known: Vec<&str> = AxisKey::ALL.iter().map(|k| k.name()).collect();
        SpecError::at(
            line,
            format!("unknown axis {key:?} (known axes: {})", known.join(", ")),
        )
    })?;
    let values = match key {
        AxisKey::Protocol => AxisValues::Protocols(
            list_items(value)
                .map(|item| parse_protocol(item, line))
                .collect::<Result<_, _>>()?,
        ),
        AxisKey::ExecutionMode => AxisValues::Modes(
            list_items(value)
                .map(|item| parse_execution_mode(item, line))
                .collect::<Result<_, _>>()?,
        ),
        AxisKey::ZipfExponent => AxisValues::Floats(
            list_items(value)
                .map(|item| parse_finite_f64(item, line, "exponent"))
                .collect::<Result<_, _>>()?,
        ),
        _ => AxisValues::Ints(parse_int_list(value, line, key.name())?),
    };
    if values.is_empty() {
        return Err(SpecError::at(line, format!("axis {} is empty", key.name())));
    }
    Ok(Axis { key, values })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Top,
    Scenario,
    Base,
    Axes,
    FullScale,
}

/// Parse one `.orth` document into a [`Spec`].
pub fn parse(text: &str) -> Result<Spec, SpecError> {
    let mut kind: Option<(String, usize)> = None;
    let mut name: Option<String> = None;
    let mut title: Option<String> = None;
    let mut x_axis: Option<AxisKey> = None;
    let mut scenario_params: Option<Params> = None;
    let mut base: Option<Params> = None;
    let mut axes: Vec<Axis> = Vec::new();
    let mut saw_axes = false;
    let mut full_scale: Vec<(String, String)> = Vec::new();
    let mut saw_full_scale = false;
    let mut section = Section::Top;

    for (index, raw) in text.lines().enumerate() {
        let line = index + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if let Some(inner) = trimmed.strip_prefix('[') {
            let section_name = inner.strip_suffix(']').ok_or_else(|| {
                SpecError::at(line, format!("unterminated section header {trimmed:?}"))
            })?;
            section = match section_name.trim() {
                "scenario" => {
                    if scenario_params.is_some() {
                        return Err(SpecError::at(line, "duplicate [scenario] section"));
                    }
                    scenario_params = Some(Params::default());
                    Section::Scenario
                }
                "base" => {
                    if base.is_some() {
                        return Err(SpecError::at(line, "duplicate [base] section"));
                    }
                    base = Some(Params::default());
                    Section::Base
                }
                "axes" => {
                    if saw_axes {
                        return Err(SpecError::at(line, "duplicate [axes] section"));
                    }
                    saw_axes = true;
                    Section::Axes
                }
                "full_scale" => {
                    if saw_full_scale {
                        return Err(SpecError::at(line, "duplicate [full_scale] section"));
                    }
                    saw_full_scale = true;
                    Section::FullScale
                }
                other => {
                    return Err(SpecError::at(line, format!("unknown section [{other}]")));
                }
            };
            continue;
        }
        let (key, value) = trimmed.split_once('=').ok_or_else(|| {
            SpecError::at(line, format!("expected `key = value`, got {trimmed:?}"))
        })?;
        let key = key.trim();
        let value = value.trim();
        match section {
            Section::Top => match key {
                "kind" => {
                    if kind.is_some() {
                        return Err(SpecError::at(line, "duplicate key \"kind\""));
                    }
                    kind = Some((value.to_string(), line));
                }
                "name" => {
                    if name.is_some() {
                        return Err(SpecError::at(line, "duplicate key \"name\""));
                    }
                    if value.is_empty()
                        || !value
                            .chars()
                            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
                    {
                        return Err(SpecError::at(
                            line,
                            format!("name {value:?} must be non-empty [a-z0-9_]+"),
                        ));
                    }
                    name = Some(value.to_string());
                }
                "title" => {
                    if title.is_some() {
                        return Err(SpecError::at(line, "duplicate key \"title\""));
                    }
                    title = Some(value.to_string());
                }
                "x_axis" => {
                    if x_axis.is_some() {
                        return Err(SpecError::at(line, "duplicate key \"x_axis\""));
                    }
                    let axis = AxisKey::from_name(value)
                        .ok_or_else(|| SpecError::at(line, format!("unknown x_axis {value:?}")))?;
                    if axis == AxisKey::Protocol || axis == AxisKey::ExecutionMode {
                        return Err(SpecError::at(
                            line,
                            format!("x_axis = {} is not numeric", axis.name()),
                        ));
                    }
                    x_axis = Some(axis);
                }
                other => {
                    return Err(SpecError::at(
                        line,
                        format!("unknown top-level key {other:?} (kind|name|title|x_axis)"),
                    ));
                }
            },
            Section::Scenario => {
                scenario_params
                    .as_mut()
                    .expect("section implies params")
                    .set(key, value, line, false)?;
            }
            Section::Base => {
                base.as_mut()
                    .expect("section implies params")
                    .set(key, value, line, false)?;
            }
            Section::Axes => {
                let axis = parse_axis(key, value, line)?;
                if axes.iter().any(|a| a.key == axis.key) {
                    return Err(SpecError::at(line, format!("duplicate axis {key:?}")));
                }
                axes.push(axis);
            }
            Section::FullScale => {
                if full_scale.iter().any(|(k, _)| k == key) {
                    return Err(SpecError::at(
                        line,
                        format!("duplicate full_scale override {key:?}"),
                    ));
                }
                full_scale.push((key.to_string(), value.to_string()));
            }
        }
    }

    let name = name.ok_or_else(|| SpecError::general("missing top-level `name`"))?;
    let (kind, kind_line) =
        kind.ok_or_else(|| SpecError::general("missing top-level `kind` (scenario|sweep)"))?;
    match kind.as_str() {
        "scenario" => {
            if base.is_some() || saw_axes || saw_full_scale || x_axis.is_some() {
                return Err(SpecError::at(
                    kind_line,
                    "kind = scenario admits only a [scenario] section",
                ));
            }
            let params = scenario_params
                .ok_or_else(|| SpecError::general("kind = scenario needs a [scenario] section"))?;
            Ok(Spec::Scenario(ScenarioSpec {
                name,
                title,
                params,
            }))
        }
        "sweep" => {
            if scenario_params.is_some() {
                return Err(SpecError::at(
                    kind_line,
                    "kind = sweep uses [base], not [scenario]",
                ));
            }
            let base =
                base.ok_or_else(|| SpecError::general("kind = sweep needs a [base] section"))?;
            if axes.is_empty() {
                return Err(SpecError::general(
                    "kind = sweep needs an [axes] section with at least one axis",
                ));
            }
            Ok(Spec::Sweep(SweepSpec {
                name,
                title,
                x_axis,
                base,
                axes,
                full_scale,
            }))
        }
        other => Err(SpecError::at(
            kind_line,
            format!("unknown kind {other:?} (scenario|sweep)"),
        )),
    }
}

// ----------------------------------------------------------------------
// Serialization
// ----------------------------------------------------------------------

fn write_params(out: &mut String, params: &Params) {
    macro_rules! kv {
        ($key:literal, $value:expr) => {
            if let Some(v) = &$value {
                let _ = writeln!(out, concat!($key, " = {}"), v);
            }
        };
    }
    if let Some(p) = params.protocol {
        let _ = writeln!(out, "protocol = {}", protocol_name(p));
    }
    if let Some(n) = params.network {
        let _ = writeln!(
            out,
            "network = {}",
            match n {
                NetworkKind::Lan => "lan",
                NetworkKind::Wan => "wan",
            }
        );
    }
    kv!("replicas", params.replicas);
    kv!("clients", params.clients);
    kv!("seed", params.seed);
    kv!("batch_size", params.batch_size);
    kv!("batch_timeout_ms", params.batch_timeout_ms);
    kv!("view_change_timeout_ms", params.view_change_timeout_ms);
    kv!("max_inflight_blocks", params.max_inflight_blocks);
    kv!("parallel_execution", params.parallel_execution);
    if let Some(mode) = params.execution_mode {
        let _ = writeln!(out, "execution_mode = {}", mode.name());
    }
    kv!("checkpoint_gc", params.checkpoint_gc);
    if let Some(q) = params.queue {
        let _ = writeln!(
            out,
            "queue = {}",
            match q {
                QueueKind::Heap => "heap",
                QueueKind::Calendar => "calendar",
            }
        );
    }
    if let Some(mode) = params.engine_mode {
        let _ = writeln!(out, "engine_mode = {}", mode.name());
    }
    kv!("accounts", params.accounts);
    kv!("transactions", params.transactions);
    kv!("payment_share", params.payment_share);
    kv!("multi_payer_share", params.multi_payer_share);
    kv!("shared_objects", params.shared_objects);
    kv!("zipf_exponent", params.zipf_exponent);
    kv!("payload_bytes", params.payload_bytes);
    kv!("initial_balance", params.initial_balance);
    kv!("max_transfer", params.max_transfer);
    kv!("submission_window_ms", params.submission_window_ms);
    kv!("max_sim_time_ms", params.max_sim_time_ms);
    if let Some(stop) = &params.stop {
        let names: Vec<&str> = stop.iter().map(|c| c.name()).collect();
        let _ = writeln!(out, "stop = {}", names.join(", "));
    }
    if let Some(stragglers) = &params.stragglers {
        let items: Vec<String> = stragglers
            .iter()
            .map(|(replica, factor)| format!("{replica}x{factor}"))
            .collect();
        let _ = writeln!(out, "stragglers = {}", items.join(", "));
    }
    if let Some(crashes) = &params.crashes {
        let items: Vec<String> = crashes
            .iter()
            .map(|(replica, at)| format!("{replica}@{at}"))
            .collect();
        let _ = writeln!(out, "crashes = {}", items.join(", "));
    }
    if let Some(recoveries) = &params.crash_recover {
        let items: Vec<String> = recoveries
            .iter()
            .map(|(replica, crash_ms, recover_ms)| format!("{replica}@{crash_ms}..{recover_ms}"))
            .collect();
        let _ = writeln!(out, "crash_recover = {}", items.join(", "));
    }
    if let Some(selfish) = &params.selfish {
        let items: Vec<String> = selfish.iter().map(u32::to_string).collect();
        let _ = writeln!(out, "selfish = {}", items.join(", "));
    }
    kv!("crash_count", params.crash_count);
    kv!("crash_at_ms", params.crash_at_ms);
    kv!("selfish_count", params.selfish_count);
    kv!("label", params.label);
    kv!("x", params.x);
}

fn write_axis(out: &mut String, axis: &Axis) {
    let values = match &axis.values {
        AxisValues::Protocols(list) => list
            .iter()
            .map(|p| protocol_name(*p).to_string())
            .collect::<Vec<_>>(),
        AxisValues::Modes(list) => list.iter().map(|m| m.name().to_string()).collect(),
        AxisValues::Ints(list) => list.iter().map(u64::to_string).collect(),
        AxisValues::Floats(list) => list.iter().map(f64::to_string).collect(),
    };
    let _ = writeln!(out, "{} = {}", axis.key.name(), values.join(", "));
}

/// Serialize a [`Spec`] into its canonical `.orth` text. Exact inverse of
/// [`parse`] at the data-model level: `parse(serialize(spec)) == spec`.
pub fn serialize(spec: &Spec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "kind = {}", spec.kind());
    let _ = writeln!(out, "name = {}", spec.name());
    if let Some(title) = spec.title() {
        let _ = writeln!(out, "title = {title}");
    }
    match spec {
        Spec::Scenario(scenario) => {
            out.push('\n');
            out.push_str("[scenario]\n");
            write_params(&mut out, &scenario.params);
        }
        Spec::Sweep(sweep) => {
            if let Some(x_axis) = sweep.x_axis {
                let _ = writeln!(out, "x_axis = {}", x_axis.name());
            }
            out.push('\n');
            out.push_str("[base]\n");
            write_params(&mut out, &sweep.base);
            out.push('\n');
            out.push_str("[axes]\n");
            for axis in &sweep.axes {
                write_axis(&mut out, axis);
            }
            if !sweep.full_scale.is_empty() {
                out.push('\n');
                out.push_str("[full_scale]\n");
                for (key, value) in &sweep.full_scale {
                    let _ = writeln!(out, "{key} = {value}");
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCENARIO_DOC: &str = "\
# a comment\n\
kind = scenario\n\
name = tiny\n\
title = Tiny smoke scenario\n\
\n\
[scenario]\n\
protocol = orthrus\n\
network = lan\n\
replicas = 4\n\
transactions = 120\n\
accounts = 32\n\
seed = 7\n";

    #[test]
    fn parses_a_scenario_spec() {
        let spec = parse(SCENARIO_DOC).expect("parse");
        let Spec::Scenario(scenario) = &spec else {
            panic!("expected a scenario spec");
        };
        assert_eq!(scenario.name, "tiny");
        assert_eq!(scenario.title.as_deref(), Some("Tiny smoke scenario"));
        assert_eq!(scenario.params.protocol, Some(ProtocolKind::Orthrus));
        assert_eq!(scenario.params.replicas, Some(4));
        assert_eq!(scenario.params.transactions, Some(120));
        assert_eq!(scenario.params.seed, Some(7));
    }

    #[test]
    fn parses_a_sweep_spec_with_axes_in_order() {
        let doc = "\
kind = sweep\n\
name = grid\n\
x_axis = replicas\n\
\n\
[base]\n\
network = wan\n\
payment_share = 0.46\n\
stragglers = 0x10\n\
\n\
[axes]\n\
replicas = 4, 8, 16\n\
protocol = orthrus, iss\n\
\n\
[full_scale]\n\
replicas = 8, 16, 32\n\
transactions = 200000\n";
        let spec = parse(doc).expect("parse");
        let Spec::Sweep(sweep) = &spec else {
            panic!("expected a sweep spec");
        };
        assert_eq!(sweep.x_axis, Some(AxisKey::Replicas));
        assert_eq!(sweep.axes.len(), 2);
        assert_eq!(sweep.axes[0].key, AxisKey::Replicas);
        assert_eq!(sweep.axes[1].key, AxisKey::Protocol);
        assert_eq!(sweep.base.stragglers, Some(vec![(0, 10.0)]));
        assert_eq!(sweep.full_scale.len(), 2);
    }

    #[test]
    fn seed_ranges_expand() {
        let axis = parse_axis("seed", "3..=6", 1).expect("axis");
        assert_eq!(axis.values, AxisValues::Ints(vec![3, 4, 5, 6]));
    }

    #[test]
    fn crash_recover_stanza_parses_and_round_trips() {
        let doc = "\
kind = scenario\n\
name = rec\n\
\n\
[scenario]\n\
protocol = orthrus\n\
network = lan\n\
replicas = 4\n\
checkpoint_gc = false\n\
crash_recover = 2@300..1800, 3@9000..15000\n";
        let spec = parse(doc).expect("parse");
        let Spec::Scenario(scenario) = &spec else {
            panic!("expected a scenario spec");
        };
        assert_eq!(
            scenario.params.crash_recover,
            Some(vec![(2, 300, 1800), (3, 9000, 15000)])
        );
        assert_eq!(scenario.params.checkpoint_gc, Some(false));
        let reparsed = parse(&serialize(&spec)).expect("reparse");
        assert_eq!(spec, reparsed);
    }

    #[test]
    fn malformed_crash_recover_stanzas_are_rejected_with_lines() {
        for (value, needle) in [
            ("2", "crash_recover"),
            ("2@300", "window"),
            ("2@300..x", "recovery time"),
            ("x@300..400", "replica id"),
        ] {
            let doc = format!(
                "kind = scenario\nname = rec\n\n[scenario]\nprotocol = orthrus\n\
                 network = lan\nreplicas = 4\ncrash_recover = {value}\n"
            );
            let err = parse(&doc).expect_err(&doc);
            assert_eq!(err.line, Some(8), "{value}");
            assert!(err.to_string().contains(needle), "{value} -> {err}");
        }
    }

    #[test]
    fn max_inflight_blocks_is_a_sweepable_axis() {
        let axis = parse_axis("max_inflight_blocks", "1, 4, 16", 1).expect("axis");
        assert_eq!(axis.key, AxisKey::MaxInflightBlocks);
        assert_eq!(axis.values, AxisValues::Ints(vec![1, 4, 16]));
        assert_eq!(
            AxisKey::from_name("max_inflight_blocks"),
            Some(AxisKey::MaxInflightBlocks)
        );
    }

    #[test]
    fn round_trips_through_serialize() {
        let spec = parse(SCENARIO_DOC).expect("parse");
        let text = serialize(&spec);
        let reparsed = parse(&text).expect("reparse");
        assert_eq!(spec, reparsed);
    }

    #[test]
    fn rejects_malformed_documents() {
        let cases = [
            ("name = x\n[scenario]\nprotocol = orthrus\n", "kind"),
            ("kind = scenario\n[scenario]\n", "name"),
            ("kind = banana\nname = x\n[scenario]\n", "banana"),
            ("kind = scenario\nname = x\n[axes]\n", "scenario"),
            ("kind = sweep\nname = x\n[base]\n", "axes"),
            (
                "kind = scenario\nname = x\n[scenario]\nprotocol = foo\n",
                "protocol",
            ),
            (
                "kind = scenario\nname = x\n[scenario]\nbananas = 4\n",
                "bananas",
            ),
            (
                "kind = scenario\nname = x\n[scenario]\nseed = 1\nseed = 2\n",
                "duplicate",
            ),
            ("kind = sweep\nname = x\nx_axis = protocol\n", "numeric"),
            ("kind = scenario\nname = Bad-Name\n[scenario]\n", "name"),
            (
                "kind = sweep\nname = x\n[base]\n[axes]\nreplicas =\n",
                "empty",
            ),
            ("kind = scenario\nname = x\n[scenario]\nx = NaN\n", "finite"),
            (
                "kind = scenario\nname = x\n[scenario]\nzipf_exponent = inf\n",
                "finite",
            ),
            (
                "kind = scenario\nname = x\n[scenario]\nlabel = say \"hi\"\n",
                "label",
            ),
            (
                "kind = scenario\nname = x\n[scenario]\nlabel = a,b\n",
                "label",
            ),
        ];
        for (doc, needle) in cases {
            let err = parse(doc).expect_err(doc);
            assert!(
                err.to_string().contains(needle),
                "{doc:?} -> {err} (expected {needle:?})"
            );
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let doc = "kind = scenario\nname = x\n[scenario]\nprotocol = nope\n";
        let err = parse(doc).expect_err("must fail");
        assert_eq!(err.line, Some(4));
    }
}
