//! Lowering: turn a parsed [`Spec`] into runnable
//! [`orthrus_core::Scenario`] values.
//!
//! # Lowering rules
//!
//! * Every grid point starts from `Scenario::new(protocol, network,
//!   replicas)` with a full-size `WorkloadConfig::default()` workload, then
//!   applies each parameter the spec sets. `protocol`, `network` and
//!   `replicas` are required (from the base or an axis).
//! * A sweep enumerates the cartesian product of its axes, **first axis
//!   outermost** — exactly the nesting order of the hand-written bench loops
//!   the registry replaced.
//! * `payment_share_pct` / `multi_payer_pct` axes lower to shares divided by
//!   100 (the percent stays in `x` so figure axes match the paper).
//! * `crash_count = k` crashes replicas `1..=k` at `crash_at_ms` (instance 0
//!   keeps its leader, as in Fig. 7); `selfish_count = k` flags the tail
//!   replicas `n-1, n-2, …` (they lead instances other than 0, as in
//!   Fig. 8).
//! * Each point's label defaults to the protocol's figure label, and its x
//!   value to the sweep's `x_axis` (falling back to the replica count).
//! * At [`SpecScale::Full`], `[full_scale]` overrides are applied first:
//!   keys naming an existing axis replace that axis's values, any other key
//!   overrides the base parameters.

use crate::spec::{parse_axis, Axis, AxisKey, AxisValues, Params, Spec, SpecError, SweepSpec};
use orthrus_core::Scenario;
use orthrus_sim::FaultPlan;
use orthrus_types::{Duration, ExecutionMode, ReplicaId, SimTime};
use orthrus_workload::WorkloadConfig;

/// Whether to lower the spec's reduced (default) or full-scale grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpecScale {
    /// The checked-in values: small enough for a laptop run.
    #[default]
    Reduced,
    /// Apply the spec's `[full_scale]` overrides (the paper's scale).
    Full,
}

impl SpecScale {
    /// Pick the scale from the `ORTHRUS_FULL_SCALE` environment variable
    /// (same convention as the bench harness).
    pub fn from_env() -> Self {
        match std::env::var("ORTHRUS_FULL_SCALE") {
            Ok(value) if value == "1" || value.eq_ignore_ascii_case("true") => SpecScale::Full,
            _ => SpecScale::Reduced,
        }
    }
}

/// One runnable point of a lowered spec: the scenario plus the series label
/// and x value the harness reports it under.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredPoint {
    /// Series label (matches the paper's figure legends).
    pub label: String,
    /// X-axis value of the point.
    pub x: f64,
    /// The scenario to run.
    pub scenario: Scenario,
}

/// The default crash time for `crash_count` lowering (the paper's t = 9 s).
pub const DEFAULT_CRASH_AT_MS: u64 = 9_000;

fn params_to_scenario(params: &Params) -> Result<Scenario, SpecError> {
    let protocol = params
        .protocol
        .ok_or_else(|| SpecError::general("missing `protocol` (set it in base or as an axis)"))?;
    let network = params
        .network
        .ok_or_else(|| SpecError::general("missing `network` (lan|wan)"))?;
    let replicas = params
        .replicas
        .ok_or_else(|| SpecError::general("missing `replicas` (set it in base or as an axis)"))?;

    let mut scenario =
        Scenario::new(protocol, network, replicas).with_workload(WorkloadConfig::default());

    if let Some(clients) = params.clients {
        scenario.num_clients = clients;
    }
    if let Some(seed) = params.seed {
        scenario.seed = seed;
    }
    if let Some(batch_size) = params.batch_size {
        scenario.config.batch_size = batch_size;
    }
    if let Some(ms) = params.batch_timeout_ms {
        scenario.config.batch_timeout = Duration::from_millis(ms);
    }
    if let Some(ms) = params.view_change_timeout_ms {
        scenario.config.view_change_timeout = Duration::from_millis(ms);
    }
    if let Some(depth) = params.max_inflight_blocks {
        scenario.config.max_inflight_blocks = depth;
    }
    if let Some(enabled) = params.parallel_execution {
        // Boolean shorthand: `true` is the soaked sharded default, `false`
        // the serial reference walk. An explicit `execution_mode` (applied
        // below) always wins over the shorthand.
        scenario.config.execution_mode = if enabled {
            ExecutionMode::ShardedDemotion
        } else {
            ExecutionMode::Serial
        };
    }
    if let Some(mode) = params.execution_mode {
        scenario.config.execution_mode = mode;
    }
    if let Some(enabled) = params.checkpoint_gc {
        scenario.config.checkpoint_gc = enabled;
    }
    if let Some(queue) = params.queue {
        scenario.queue = queue;
    }
    if let Some(mode) = params.engine_mode {
        scenario.engine_mode = mode;
    }
    if let Some(accounts) = params.accounts {
        scenario.workload.num_accounts = accounts;
    }
    if let Some(transactions) = params.transactions {
        scenario.workload.num_transactions = transactions;
    }
    if let Some(share) = params.payment_share {
        scenario.workload.payment_share = share;
    }
    if let Some(share) = params.multi_payer_share {
        scenario.workload.multi_payer_share = share;
    }
    if let Some(objects) = params.shared_objects {
        scenario.workload.num_shared_objects = objects;
    }
    if let Some(exponent) = params.zipf_exponent {
        scenario.workload.zipf_exponent = exponent;
    }
    if let Some(bytes) = params.payload_bytes {
        scenario.workload.payload_bytes = bytes;
    }
    if let Some(balance) = params.initial_balance {
        scenario.workload.initial_balance = balance;
    }
    if let Some(amount) = params.max_transfer {
        scenario.workload.max_transfer = amount;
    }
    if let Some(ms) = params.submission_window_ms {
        scenario.submission_window = Duration::from_millis(ms);
    }
    if let Some(ms) = params.max_sim_time_ms {
        scenario.max_sim_time = Duration::from_millis(ms);
    }
    if let Some(stop) = &params.stop {
        scenario.stop = stop.clone();
    }

    let mut faults = FaultPlan::none();
    if let Some(stragglers) = &params.stragglers {
        for &(replica, factor) in stragglers {
            faults = faults.with_straggler(ReplicaId::new(replica), factor);
        }
    }
    if let Some(crashes) = &params.crashes {
        for &(replica, at_ms) in crashes {
            faults = faults.with_crash(ReplicaId::new(replica), SimTime::from_millis(at_ms));
        }
    }
    if let Some(recoveries) = &params.crash_recover {
        for &(replica, crash_ms, recover_ms) in recoveries {
            faults = faults.with_crash_recover(
                ReplicaId::new(replica),
                SimTime::from_millis(crash_ms),
                SimTime::from_millis(recover_ms),
            );
        }
    }
    if let Some(selfish) = &params.selfish {
        for &replica in selfish {
            faults = faults.with_selfish(ReplicaId::new(replica));
        }
    }
    if let Some(count) = params.crash_count {
        let at = SimTime::from_millis(params.crash_at_ms.unwrap_or(DEFAULT_CRASH_AT_MS));
        for f in 0..count {
            faults = faults.with_crash(ReplicaId::new(1 + f), at);
        }
    }
    if let Some(count) = params.selfish_count {
        if count >= replicas {
            return Err(SpecError::general(format!(
                "selfish_count {count} does not fit a {replicas}-replica deployment"
            )));
        }
        for f in 0..count {
            faults = faults.with_selfish(ReplicaId::new(replicas - 1 - f));
        }
    }
    scenario.faults = faults;

    Ok(scenario)
}

/// The x value a set of resolved params yields for `key` (used when the
/// `x_axis` key lives in the base rather than on an axis).
fn x_from_params(key: AxisKey, params: &Params) -> Option<f64> {
    match key {
        AxisKey::Protocol => None,
        AxisKey::Replicas => params.replicas.map(f64::from),
        AxisKey::Seed => params.seed.map(|s| s as f64),
        AxisKey::PaymentSharePct => params.payment_share.map(|s| s * 100.0),
        AxisKey::MultiPayerPct => params.multi_payer_share.map(|s| s * 100.0),
        AxisKey::CrashCount => params.crash_count.map(f64::from),
        AxisKey::SelfishCount => params.selfish_count.map(f64::from),
        AxisKey::ZipfExponent => params.zipf_exponent,
        AxisKey::MaxInflightBlocks => params.max_inflight_blocks.map(|d| d as f64),
        AxisKey::ExecutionMode => None,
    }
}

/// Narrow a u64 axis value into a u32 parameter, rejecting overflow with a
/// diagnostic (the `[base]` path parses these keys as u32 directly, so the
/// axis path must not be laxer and silently wrap).
fn narrow_u32(key: AxisKey, value: u64) -> Result<u32, SpecError> {
    u32::try_from(value).map_err(|_| {
        SpecError::general(format!(
            "axis {} value {value} does not fit a 32-bit count",
            key.name()
        ))
    })
}

/// Apply one axis value to `params`, returning the value's numeric
/// representation (None for the protocol axis).
fn apply_axis_value(
    params: &mut Params,
    key: AxisKey,
    values: &AxisValues,
    index: usize,
) -> Result<Option<f64>, SpecError> {
    match (key, values) {
        (AxisKey::Protocol, AxisValues::Protocols(list)) => {
            params.protocol = Some(list[index]);
            Ok(None)
        }
        (AxisKey::Replicas, AxisValues::Ints(list)) => {
            params.replicas = Some(narrow_u32(key, list[index])?);
            Ok(Some(list[index] as f64))
        }
        (AxisKey::Seed, AxisValues::Ints(list)) => {
            params.seed = Some(list[index]);
            Ok(Some(list[index] as f64))
        }
        (AxisKey::PaymentSharePct, AxisValues::Ints(list)) => {
            params.payment_share = Some(list[index] as f64 / 100.0);
            Ok(Some(list[index] as f64))
        }
        (AxisKey::MultiPayerPct, AxisValues::Ints(list)) => {
            params.multi_payer_share = Some(list[index] as f64 / 100.0);
            Ok(Some(list[index] as f64))
        }
        (AxisKey::CrashCount, AxisValues::Ints(list)) => {
            params.crash_count = Some(narrow_u32(key, list[index])?);
            Ok(Some(list[index] as f64))
        }
        (AxisKey::SelfishCount, AxisValues::Ints(list)) => {
            params.selfish_count = Some(narrow_u32(key, list[index])?);
            Ok(Some(list[index] as f64))
        }
        (AxisKey::ZipfExponent, AxisValues::Floats(list)) => {
            params.zipf_exponent = Some(list[index]);
            Ok(Some(list[index]))
        }
        (AxisKey::MaxInflightBlocks, AxisValues::Ints(list)) => {
            params.max_inflight_blocks = Some(list[index]);
            Ok(Some(list[index] as f64))
        }
        (AxisKey::ExecutionMode, AxisValues::Modes(list)) => {
            params.execution_mode = Some(list[index]);
            Ok(None)
        }
        (key, _) => Err(SpecError::general(format!(
            "axis {} carries values of the wrong type",
            key.name()
        ))),
    }
}

fn apply_full_scale(sweep: &SweepSpec) -> Result<(Params, Vec<Axis>), SpecError> {
    let mut base = sweep.base.clone();
    let mut axes = sweep.axes.clone();
    for (key, value) in &sweep.full_scale {
        let as_axis =
            AxisKey::from_name(key).and_then(|k| axes.iter().position(|axis| axis.key == k));
        match as_axis {
            Some(position) => {
                axes[position] = parse_axis(key, value, 0).map_err(|err| {
                    SpecError::general(format!("full_scale override {key:?}: {}", err.msg))
                })?;
            }
            None => {
                base.set(key, value, 0, true).map_err(|err| {
                    SpecError::general(format!("full_scale override {key:?}: {}", err.msg))
                })?;
            }
        }
    }
    Ok((base, axes))
}

impl Spec {
    /// Lower the spec into runnable points at the given scale.
    ///
    /// Scenario specs yield exactly one point; sweeps yield their full
    /// cartesian grid in deterministic order (first axis outermost).
    pub fn lower(&self, scale: SpecScale) -> Result<Vec<LoweredPoint>, SpecError> {
        match self {
            Spec::Scenario(spec) => {
                let scenario = params_to_scenario(&spec.params)?;
                let label = spec
                    .params
                    .label
                    .clone()
                    .unwrap_or_else(|| scenario.protocol.label().to_string());
                let x = spec
                    .params
                    .x
                    .unwrap_or(f64::from(scenario.config.num_replicas));
                Ok(vec![LoweredPoint { label, x, scenario }])
            }
            Spec::Sweep(sweep) => {
                let (base, axes) = match scale {
                    SpecScale::Reduced => (sweep.base.clone(), sweep.axes.clone()),
                    SpecScale::Full => apply_full_scale(sweep)?,
                };
                // Cartesian product, first axis outermost.
                let mut combos: Vec<(Params, Option<f64>)> = vec![(base, None)];
                for axis in &axes {
                    let mut next = Vec::with_capacity(combos.len() * axis.values.len());
                    for (params, x) in &combos {
                        for index in 0..axis.values.len() {
                            let mut refined = params.clone();
                            let raw =
                                apply_axis_value(&mut refined, axis.key, &axis.values, index)?;
                            let x = if sweep.x_axis == Some(axis.key) {
                                raw
                            } else {
                                *x
                            };
                            next.push((refined, x));
                        }
                    }
                    combos = next;
                }
                // A mode axis produces series that differ only in how plogs
                // execute, so the default label must carry the mode or the
                // series would collide under one name.
                let has_mode_axis = axes.iter().any(|axis| axis.key == AxisKey::ExecutionMode);
                combos
                    .into_iter()
                    .map(|(params, axis_x)| {
                        let scenario = params_to_scenario(&params)?;
                        let label = params.label.clone().unwrap_or_else(|| {
                            let base = scenario.protocol.label().to_string();
                            match params.execution_mode {
                                Some(mode) if has_mode_axis => format!("{base} [{}]", mode.name()),
                                _ => base,
                            }
                        });
                        let x = params
                            .x
                            .or(axis_x)
                            .or_else(|| sweep.x_axis.and_then(|key| x_from_params(key, &params)))
                            .unwrap_or(f64::from(scenario.config.num_replicas));
                        Ok(LoweredPoint { label, x, scenario })
                    })
                    .collect()
            }
        }
    }

    /// Validate the spec end to end: lower it at both scales and run every
    /// resulting scenario through [`Scenario::validate`]. Returns the number
    /// of (reduced-scale) points on success.
    pub fn lint(&self) -> Result<usize, SpecError> {
        let mut reduced_points = 0;
        for scale in [SpecScale::Reduced, SpecScale::Full] {
            let points = self.lower(scale)?;
            if scale == SpecScale::Reduced {
                reduced_points = points.len();
            }
            for point in &points {
                point.scenario.validate().map_err(|err| {
                    SpecError::general(format!(
                        "{} (scale {scale:?}, label {}, x {}): {err}",
                        self.name(),
                        point.label,
                        point.x
                    ))
                })?;
            }
        }
        Ok(reduced_points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::parse;
    use orthrus_types::{NetworkKind, ProtocolKind};

    const SWEEP_DOC: &str = "\
kind = sweep\n\
name = grid\n\
x_axis = replicas\n\
\n\
[base]\n\
network = wan\n\
payment_share = 0.46\n\
transactions = 200\n\
accounts = 64\n\
shared_objects = 8\n\
stragglers = 0x10\n\
\n\
[axes]\n\
replicas = 4, 8\n\
protocol = orthrus, iss\n\
\n\
[full_scale]\n\
replicas = 8, 16\n\
transactions = 500\n";

    #[test]
    fn sweep_lowering_orders_first_axis_outermost() {
        let spec = parse(SWEEP_DOC).expect("parse");
        let points = spec.lower(SpecScale::Reduced).expect("lower");
        assert_eq!(points.len(), 4);
        let summary: Vec<(f64, &str)> = points.iter().map(|p| (p.x, p.label.as_str())).collect();
        assert_eq!(
            summary,
            vec![
                (4.0, "Orthrus"),
                (4.0, "ISS"),
                (8.0, "Orthrus"),
                (8.0, "ISS")
            ]
        );
        for point in &points {
            assert_eq!(point.scenario.network, NetworkKind::Wan);
            assert_eq!(point.scenario.workload.num_transactions, 200);
            assert_eq!(point.scenario.faults.stragglers.len(), 1);
            assert!(point.scenario.validate().is_ok());
        }
    }

    #[test]
    fn full_scale_overrides_axes_and_base() {
        let spec = parse(SWEEP_DOC).expect("parse");
        let points = spec.lower(SpecScale::Full).expect("lower");
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].x, 8.0);
        assert_eq!(points[3].x, 16.0);
        for point in &points {
            assert_eq!(point.scenario.workload.num_transactions, 500);
        }
    }

    #[test]
    fn crash_and_selfish_counts_follow_the_paper_placement() {
        let doc = "\
kind = sweep\n\
name = faults\n\
x_axis = crash_count\n\
\n\
[base]\n\
protocol = orthrus\n\
network = wan\n\
replicas = 8\n\
crash_at_ms = 9000\n\
\n\
[axes]\n\
crash_count = 0, 2\n";
        let spec = parse(doc).expect("parse");
        let points = spec.lower(SpecScale::Reduced).expect("lower");
        assert_eq!(points.len(), 2);
        assert!(points[0].scenario.faults.crashes.is_empty());
        let crashed: Vec<u32> = points[1]
            .scenario
            .faults
            .crashes
            .iter()
            .map(|c| c.replica.value())
            .collect();
        assert_eq!(crashed, vec![1, 2], "instance 0 keeps its leader");
        assert_eq!(points[1].x, 2.0);

        let doc = "\
kind = sweep\n\
name = selfish\n\
x_axis = selfish_count\n\
\n\
[base]\n\
protocol = orthrus\n\
network = wan\n\
replicas = 8\n\
\n\
[axes]\n\
selfish_count = 2\n";
        let spec = parse(doc).expect("parse");
        let points = spec.lower(SpecScale::Reduced).expect("lower");
        let selfish: Vec<u32> = points[0]
            .scenario
            .faults
            .selfish
            .iter()
            .map(|r| r.value())
            .collect();
        assert_eq!(selfish, vec![7, 6], "selfish replicas come from the tail");
    }

    #[test]
    fn percent_axes_keep_percent_in_x_but_lower_to_shares() {
        let doc = "\
kind = sweep\n\
name = shares\n\
x_axis = payment_share_pct\n\
\n\
[base]\n\
protocol = orthrus\n\
network = wan\n\
replicas = 4\n\
\n\
[axes]\n\
payment_share_pct = 0, 40, 100\n";
        let spec = parse(doc).expect("parse");
        let points = spec.lower(SpecScale::Reduced).expect("lower");
        let pairs: Vec<(f64, f64)> = points
            .iter()
            .map(|p| (p.x, p.scenario.workload.payment_share))
            .collect();
        assert_eq!(pairs, vec![(0.0, 0.0), (40.0, 0.4), (100.0, 1.0)]);
    }

    #[test]
    fn oversized_axis_counts_are_rejected_not_truncated() {
        // The [base] path parses `replicas` as u32 and rejects overflow; the
        // axis path must do the same instead of wrapping 2^32 + 4 to 4.
        let doc = "\
kind = sweep\n\
name = overflow\n\
\n\
[base]\n\
protocol = orthrus\n\
network = lan\n\
\n\
[axes]\n\
replicas = 4294967300\n";
        let spec = parse(doc).expect("parse");
        let err = spec.lower(SpecScale::Reduced).expect_err("must reject");
        assert!(err.to_string().contains("does not fit"), "{err}");
    }

    #[test]
    fn crash_recover_lowers_to_fault_plan_windows() {
        let doc = "\
kind = scenario\n\
name = rec\n\
\n\
[scenario]\n\
protocol = orthrus\n\
network = lan\n\
replicas = 4\n\
transactions = 100\n\
accounts = 32\n\
checkpoint_gc = false\n\
crash_recover = 2@300..1800\n";
        let spec = parse(doc).expect("parse");
        let points = spec.lower(SpecScale::Reduced).expect("lower");
        assert_eq!(points.len(), 1);
        let scenario = &points[0].scenario;
        assert!(!scenario.config.checkpoint_gc);
        assert_eq!(scenario.faults.crash_recoveries.len(), 1);
        let spec_fault = scenario.faults.crash_recoveries[0];
        assert_eq!(spec_fault.replica.value(), 2);
        assert_eq!(spec_fault.crash_at, SimTime::from_millis(300));
        assert_eq!(spec_fault.recover_at, SimTime::from_millis(1800));
        assert!(scenario.validate().is_ok());
        // An inverted window is caught by scenario validation through lint.
        let bad = doc.replace("2@300..1800", "2@1800..300");
        let err = parse(&bad).expect("parse").lint().expect_err("must fail");
        assert!(err.to_string().contains("recover"), "{err}");
    }

    #[test]
    fn max_inflight_axis_sweeps_the_pipelining_depth() {
        let doc = "\
kind = sweep\n\
name = inflight\n\
x_axis = max_inflight_blocks\n\
\n\
[base]\n\
protocol = orthrus\n\
network = lan\n\
replicas = 4\n\
transactions = 100\n\
accounts = 32\n\
\n\
[axes]\n\
max_inflight_blocks = 1, 4, 16\n";
        let spec = parse(doc).expect("parse");
        let points = spec.lower(SpecScale::Reduced).expect("lower");
        let pairs: Vec<(f64, u64)> = points
            .iter()
            .map(|p| (p.x, p.scenario.config.max_inflight_blocks))
            .collect();
        assert_eq!(pairs, vec![(1.0, 1), (4.0, 4), (16.0, 16)]);
        assert!(spec.lint().is_ok());
    }

    #[test]
    fn missing_required_keys_are_reported() {
        let doc = "kind = scenario\nname = x\n\n[scenario]\nnetwork = lan\n";
        let spec = parse(doc).expect("parse");
        let err = spec.lower(SpecScale::Reduced).expect_err("must fail");
        assert!(err.to_string().contains("protocol"), "{err}");
    }

    #[test]
    fn scenario_specs_lower_to_one_point() {
        let doc = "\
kind = scenario\n\
name = tiny\n\
\n\
[scenario]\n\
protocol = ladon\n\
network = lan\n\
replicas = 4\n\
transactions = 100\n\
accounts = 32\n\
label = MyRun\n";
        let spec = parse(doc).expect("parse");
        let points = spec.lower(SpecScale::Reduced).expect("lower");
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].label, "MyRun");
        assert_eq!(points[0].x, 4.0);
        assert_eq!(points[0].scenario.protocol, ProtocolKind::Ladon);
    }

    #[test]
    fn lint_runs_scenario_validation() {
        // 3 replicas is below the BFT minimum: lint must surface it.
        let doc = "\
kind = scenario\n\
name = bad\n\
\n\
[scenario]\n\
protocol = orthrus\n\
network = lan\n\
replicas = 3\n";
        let spec = parse(doc).expect("parse");
        let err = spec.lint().expect_err("must fail");
        assert!(err.to_string().contains("replicas"), "{err}");
    }
}
