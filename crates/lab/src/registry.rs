//! The named scenario registry: every checked-in `scenarios/*.orth` file,
//! embedded at compile time so the `orthrus` CLI works from any directory.
//!
//! The registry seeds the paper's whole evaluation grid (§VII): Figures 3–8
//! plus the four ablation studies and a tiny `quickstart` smoke scenario.
//! Each entry's name matches its file stem; golden-file tests in
//! `tests/scenario_specs.rs` pin that every entry parses, round-trips and
//! lowers to valid scenarios at both scales.

use crate::spec::{parse, Spec, SpecError};

/// One registry entry: a name plus the embedded `.orth` source.
#[derive(Debug, Clone, Copy)]
pub struct RegistryEntry {
    /// Registry name (the file stem under `scenarios/`).
    pub name: &'static str,
    /// The embedded spec source.
    pub source: &'static str,
}

impl RegistryEntry {
    /// Parse the entry into a [`Spec`].
    pub fn spec(&self) -> Result<Spec, SpecError> {
        parse(self.source)
    }
}

macro_rules! entry {
    ($name:literal) => {
        RegistryEntry {
            name: $name,
            source: include_str!(concat!("../../../scenarios/", $name, ".orth")),
        }
    };
}

/// All checked-in specs, in presentation order.
pub const ENTRIES: &[RegistryEntry] = &[
    entry!("quickstart"),
    entry!("fig3_smoke"),
    entry!("fig3ab_wan_no_straggler"),
    entry!("fig3cd_wan_straggler"),
    entry!("fig4ab_lan_no_straggler"),
    entry!("fig4cd_lan_straggler"),
    entry!("fig5_payment_share_no_straggler"),
    entry!("fig5_payment_share_straggler"),
    entry!("fig6_latency_breakdown"),
    entry!("fig7_fault_timeline"),
    entry!("fig8_undetectable_faults"),
    entry!("ablation_fast_path"),
    entry!("ablation_global_ordering"),
    entry!("ablation_multi_payer"),
    entry!("ablation_hot_account"),
    entry!("ablation_stm_contention"),
    entry!("ablation_inflight"),
    entry!("recovery_smoke"),
    entry!("recovery_protocols"),
];

/// Look up a registry entry by name.
pub fn find(name: &str) -> Option<&'static RegistryEntry> {
    ENTRIES.iter().find(|entry| entry.name == name)
}

/// Parse the named registry spec. Registry sources are pinned by golden
/// tests, so a parse failure here is a build defect, reported as an error
/// rather than a panic.
pub fn spec(name: &str) -> Result<Spec, SpecError> {
    let entry = find(name)
        .ok_or_else(|| SpecError::general(format!("no registry entry named {name:?}")))?;
    entry.spec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_entry_parses_and_matches_its_name() {
        for entry in ENTRIES {
            let spec = entry.spec().unwrap_or_else(|err| {
                panic!("registry entry {} does not parse: {err}", entry.name)
            });
            assert_eq!(spec.name(), entry.name, "name must match the file stem");
        }
    }

    #[test]
    fn lookup_by_name_works() {
        assert!(find("quickstart").is_some());
        assert!(find("fig3ab_wan_no_straggler").is_some());
        assert!(find("no_such_grid").is_none());
        assert!(spec("no_such_grid").is_err());
    }

    #[test]
    fn registry_names_are_unique() {
        let mut names: Vec<&str> = ENTRIES.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ENTRIES.len());
    }
}
