//! # orthrus-lab
//!
//! Declarative experiment specs for the Orthrus reproduction: **scenarios as
//! data**, not as copy-pasted Rust.
//!
//! The paper's evaluation (§VII) is a large grid — 6 protocols × {LAN, WAN}
//! × replica counts × payment shares × fault plans. This crate puts a named,
//! serializable experiment layer in front of `orthrus_core::run_scenario`:
//!
//! * [`spec`] — the zero-dependency, line-oriented `.orth` format
//!   (`key = value` sections) with a hand-rolled parser and serializer whose
//!   round trip is exact at the data-model level;
//! * [`lower`] — lowering rules from [`Spec`] to runnable
//!   [`orthrus_core::Scenario`] grids ([`Spec::lower`]), plus end-to-end
//!   validation ([`Spec::lint`]);
//! * [`registry`] — the named registry of checked-in `scenarios/*.orth`
//!   files covering Figures 3–8 and the ablation studies.
//!
//! The `orthrus` CLI (`orthrus list | show | run <name|file>`) is a thin
//! shell over these three modules; the figure benches pull their grids from
//! the same registry, so a new experiment is a ten-line spec file instead of
//! a new bench binary.
//!
//! ## Example
//!
//! ```
//! use orthrus_lab::{parse, SpecScale};
//!
//! let spec = parse(
//!     "kind = scenario\n\
//!      name = smoke\n\
//!      \n\
//!      [scenario]\n\
//!      protocol = orthrus\n\
//!      network = lan\n\
//!      replicas = 4\n\
//!      accounts = 32\n\
//!      transactions = 120\n\
//!      shared_objects = 4\n\
//!      clients = 2\n\
//!      submission_window_ms = 200\n\
//!      seed = 7\n",
//! )
//! .expect("valid spec");
//! let points = spec.lower(SpecScale::Reduced).expect("lowers");
//! let outcome = orthrus_core::run_scenario(&points[0].scenario).expect("runs");
//! assert_eq!(outcome.confirmed, outcome.submitted);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lower;
pub mod registry;
pub mod spec;

pub use lower::{LoweredPoint, SpecScale, DEFAULT_CRASH_AT_MS};
pub use registry::{find, RegistryEntry, ENTRIES};
pub use spec::{
    parse, serialize, Axis, AxisKey, AxisValues, Params, ScenarioSpec, Spec, SpecError, SweepSpec,
};
