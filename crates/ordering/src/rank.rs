//! Rank assignment for dynamic global ordering (Ladon, paper Appendix A).
//!
//! Before broadcasting a block, a leader assigns it a *rank* that must be
//! larger than the rank of every block it has generated before (intra-
//! instance monotonicity) and of every delivered block it knows about
//! (delivered inter-instance monotonicity). Honest replicas then order blocks
//! by `(rank, instance)` without further communication.
//!
//! The paper's Ladon implementation has the leader collect the highest ranks
//! from `2f + 1` replicas before proposing; because every replica in a
//! Multi-BFT deployment participates in *all* instances, the leader's own
//! view of delivered blocks is an accurate stand-in, and that is what
//! [`RankTracker`] provides. Safety (consistent confirmation across replicas)
//! only requires intra-instance monotonicity, which the tracker guarantees
//! unconditionally; the inter-instance part affects freshness only.

use orthrus_types::{Block, Rank};

/// Tracks the highest rank observed (delivered or self-proposed) and hands
/// out the next rank to use for a proposal.
#[derive(Debug, Default, Clone)]
pub struct RankTracker {
    highest_seen: Rank,
}

impl RankTracker {
    /// A tracker that has seen nothing (next rank will be 1).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a delivered block's rank.
    pub fn observe_block(&mut self, block: &Block) {
        self.observe_rank(block.header.rank);
    }

    /// Record an arbitrary rank (e.g. gossiped by other replicas).
    pub fn observe_rank(&mut self, rank: Rank) {
        self.highest_seen = self.highest_seen.max(rank);
    }

    /// The highest rank observed so far.
    pub fn highest(&self) -> Rank {
        self.highest_seen
    }

    /// Assign the rank for the next proposal: one more than everything seen.
    /// The assigned rank is itself recorded, so consecutive proposals by the
    /// same leader get strictly increasing ranks even before delivery.
    pub fn next_rank(&mut self) -> Rank {
        let rank = self.highest_seen.next();
        self.highest_seen = rank;
        rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_types::{BlockParams, Epoch, InstanceId, ReplicaId, SeqNum, SystemState, View};

    fn block_with_rank(rank: u64) -> Block {
        Block::no_op(BlockParams {
            instance: InstanceId::new(0),
            sn: SeqNum::new(0),
            epoch: Epoch::new(0),
            view: View::new(0),
            proposer: ReplicaId::new(0),
            rank: Rank::new(rank),
            state: SystemState::new(1),
        })
    }

    #[test]
    fn ranks_start_at_one_and_increase() {
        let mut tracker = RankTracker::new();
        assert_eq!(tracker.next_rank(), Rank::new(1));
        assert_eq!(tracker.next_rank(), Rank::new(2));
        assert_eq!(tracker.highest(), Rank::new(2));
    }

    #[test]
    fn observed_blocks_push_the_next_rank_up() {
        let mut tracker = RankTracker::new();
        tracker.observe_block(&block_with_rank(41));
        assert_eq!(tracker.next_rank(), Rank::new(42));
        // Observing something lower afterwards does not regress.
        tracker.observe_rank(Rank::new(5));
        assert_eq!(tracker.next_rank(), Rank::new(43));
    }

    /// Monotonicity: no matter what ranks are observed in between, successive
    /// proposals always receive strictly increasing ranks that exceed every
    /// previously observed rank. (Seeded-loop replacement for the former
    /// property-based test.)
    #[test]
    fn assigned_ranks_are_monotonic_under_random_observations() {
        use orthrus_types::rng::{Rng, StdRng};
        for seed in 0u64..100 {
            let mut rng = StdRng::seed_from_u64(seed);
            let len = rng.gen_range(0usize..50);
            let mut tracker = RankTracker::new();
            let mut last_assigned = Rank::new(0);
            let mut max_observed = Rank::new(0);
            for i in 0..len {
                let obs: u64 = rng.gen_range(0..1_000);
                tracker.observe_rank(Rank::new(obs));
                max_observed = max_observed.max(Rank::new(obs));
                if i % 3 == 0 {
                    let assigned = tracker.next_rank();
                    assert!(assigned > last_assigned);
                    assert!(assigned > max_observed);
                    last_assigned = assigned;
                }
            }
        }
    }
}
