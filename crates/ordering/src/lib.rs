//! # orthrus-ordering
//!
//! Partial and global log structures plus the global-ordering policies of
//! every protocol the paper evaluates.
//!
//! * [`plog`] — the per-instance partial log (`plog`) of delivered blocks and
//!   its execution cursor;
//! * [`glog`] — the system-wide global log (`glog`);
//! * [`rank`] — monotonic rank assignment for dynamic ordering;
//! * [`policy`] — the [`policy::GlobalOrderingPolicy`] trait;
//! * [`predetermined`] — ISS / Mir-BFT / RCC round-robin interleaving;
//! * [`dqbft`] — DQBFT's dedicated ordering instance;
//! * [`ladon`] — Ladon's rank-based dynamic ordering, also used by Orthrus
//!   for contract transactions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dqbft;
pub mod glog;
pub mod ladon;
pub mod plog;
pub mod policy;
pub mod predetermined;
pub mod rank;

pub use dqbft::DqbftOrdering;
pub use glog::GlobalLog;
pub use ladon::{LadonOrdering, OrderKey};
pub use plog::{PartialLog, PartialLogs};
pub use policy::GlobalOrderingPolicy;
pub use predetermined::PredeterminedOrdering;
pub use rank::RankTracker;
