//! The global log (`glog`): the single, totally ordered sequence of blocks
//! shared by the whole Multi-BFT system (paper §V-B).
//!
//! Blocks are appended by the global ordering policy (pre-determined, DQBFT
//! or Ladon); the execution module consumes them in order through the cursor,
//! executing contract transactions sequentially.
//!
//! # Retention
//!
//! The log distinguishes the *order* (every block id ever confirmed, in
//! global order — a few words per entry, kept for agreement checks and
//! duplicate suppression) from the *retained payloads* (the `Arc<Block>`
//! handles). Executed payloads below the stable-checkpoint frontier are
//! released by [`GlobalLog::truncate_before`], so a long run holds payload
//! memory proportional to the in-flight window, not the full history.

use orthrus_types::{BlockId, SharedBlock, SystemState};
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

/// The global log.
#[derive(Debug, Default, Clone)]
pub struct GlobalLog {
    /// Retained block payloads; `blocks[0]` sits at global position `base`.
    blocks: VecDeque<SharedBlock>,
    /// Global position of the first retained payload (number of truncated
    /// entries).
    base: usize,
    /// Every confirmed block id in global order (compact; never truncated).
    order: Vec<BlockId>,
    ids: HashSet<BlockId>,
    /// Global position of the first entry not yet consumed by the execution
    /// module.
    cursor: usize,
    /// Wire-size estimate of the retained payloads.
    retained_bytes: u64,
}

impl GlobalLog {
    /// An empty global log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a globally confirmed block. Duplicate block ids are ignored
    /// (the ordering policy emits each block exactly once, but the execution
    /// layer's abort path may try to re-append during recovery).
    pub fn append(&mut self, block: SharedBlock) {
        if self.ids.insert(block.id()) {
            self.order.push(block.id());
            self.retained_bytes += block.wire_bytes();
            self.blocks.push_back(block);
        }
    }

    /// Number of blocks ever appended (truncated entries included).
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Number of block payloads currently retained (not yet released by
    /// checkpoint truncation).
    pub fn retained_len(&self) -> usize {
        self.blocks.len()
    }

    /// Wire-size estimate of the retained payloads.
    pub fn retained_bytes(&self) -> u64 {
        self.retained_bytes
    }

    /// Has `id` been globally confirmed?
    pub fn contains(&self, id: BlockId) -> bool {
        self.ids.contains(&id)
    }

    /// The first appended-but-not-yet-executed block, if any.
    pub fn first_pending(&self) -> Option<&SharedBlock> {
        self.blocks.get(self.cursor - self.base)
    }

    /// Position of the execution cursor.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Pop the next block for execution, advancing the cursor. Returns a
    /// clone of the shared handle (a reference-count bump).
    pub fn pop_pending(&mut self) -> Option<SharedBlock> {
        let block = Arc::clone(self.blocks.get(self.cursor - self.base)?);
        self.cursor += 1;
        Some(block)
    }

    /// Checkpoint-driven truncation: release executed payloads from the
    /// front of the log whose `(instance, sn)` is covered by `stable`, the
    /// per-instance stable-checkpoint frontier. Truncation is prefix-only —
    /// the first unexecuted or uncovered entry stops it — so the retained
    /// window stays contiguous and the cursor always points into it.
    ///
    /// The compact id order is never truncated: duplicate suppression and
    /// cross-replica agreement checks keep working over the full history.
    pub fn truncate_before(&mut self, stable: &SystemState) {
        while self.base < self.cursor {
            let Some(front) = self.blocks.front() else {
                break;
            };
            let covered = stable
                .get(front.header.instance)
                .is_some_and(|sn| sn >= front.header.sn);
            if !covered {
                break;
            }
            self.retained_bytes -= front.wire_bytes();
            self.blocks.pop_front();
            self.base += 1;
        }
    }

    /// The global position assigned to `id`, if confirmed.
    pub fn position_of(&self, id: BlockId) -> Option<usize> {
        if !self.ids.contains(&id) {
            return None;
        }
        self.order.iter().position(|b| *b == id)
    }

    /// Iterate over the *retained* confirmed blocks in global order
    /// (truncated payloads are gone; use [`GlobalLog::order`] for the full
    /// history of ids).
    pub fn iter(&self) -> impl Iterator<Item = &SharedBlock> {
        self.blocks.iter()
    }

    /// Block ids in global order, truncated entries included (useful for
    /// cross-replica agreement checks).
    pub fn order(&self) -> Vec<BlockId> {
        self.order.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_types::{
        Block, BlockParams, Epoch, InstanceId, Rank, ReplicaId, SeqNum, SystemState, View,
    };

    fn block(instance: u32, sn: u64) -> SharedBlock {
        Arc::new(Block::no_op(BlockParams {
            instance: InstanceId::new(instance),
            sn: SeqNum::new(sn),
            epoch: Epoch::new(0),
            view: View::new(0),
            proposer: ReplicaId::new(instance),
            rank: Rank::new(sn),
            state: SystemState::new(2),
        }))
    }

    #[test]
    fn append_preserves_order_and_dedups() {
        let mut glog = GlobalLog::new();
        glog.append(block(0, 0));
        glog.append(block(1, 0));
        glog.append(block(0, 0)); // duplicate
        assert_eq!(glog.len(), 2);
        assert!(glog.contains(BlockId::new(InstanceId::new(0), SeqNum::new(0))));
        assert_eq!(
            glog.order(),
            vec![
                BlockId::new(InstanceId::new(0), SeqNum::new(0)),
                BlockId::new(InstanceId::new(1), SeqNum::new(0)),
            ]
        );
    }

    #[test]
    fn cursor_walks_the_log() {
        let mut glog = GlobalLog::new();
        glog.append(block(0, 0));
        glog.append(block(1, 0));
        assert_eq!(
            glog.first_pending().unwrap().header.instance,
            InstanceId::new(0)
        );
        assert_eq!(
            glog.pop_pending().unwrap().header.instance,
            InstanceId::new(0)
        );
        assert_eq!(glog.cursor(), 1);
        assert_eq!(
            glog.pop_pending().unwrap().header.instance,
            InstanceId::new(1)
        );
        assert!(glog.pop_pending().is_none());
    }

    #[test]
    fn position_lookup() {
        let mut glog = GlobalLog::new();
        glog.append(block(0, 0));
        glog.append(block(3, 7));
        assert_eq!(
            glog.position_of(BlockId::new(InstanceId::new(3), SeqNum::new(7))),
            Some(1)
        );
        assert_eq!(
            glog.position_of(BlockId::new(InstanceId::new(9), SeqNum::new(9))),
            None
        );
    }

    #[test]
    fn truncation_releases_executed_covered_payloads_only() {
        let mut glog = GlobalLog::new();
        glog.append(block(0, 0));
        glog.append(block(1, 0));
        glog.append(block(0, 1));
        let full = glog.retained_bytes();

        // Nothing executed yet: truncation is a no-op even with coverage.
        let mut stable = SystemState::new(2);
        stable.observe(InstanceId::new(0), SeqNum::new(5));
        stable.observe(InstanceId::new(1), SeqNum::new(5));
        glog.truncate_before(&stable);
        assert_eq!(glog.retained_len(), 3);

        // Execute two entries; only instance 0 is checkpoint-covered.
        glog.pop_pending();
        glog.pop_pending();
        let mut partial = SystemState::new(2);
        partial.observe(InstanceId::new(0), SeqNum::new(5));
        glog.truncate_before(&partial);
        // (0,0) released; (1,0) uncovered stops the prefix truncation.
        assert_eq!(glog.retained_len(), 2);
        assert!(glog.retained_bytes() < full);

        // Full coverage releases the rest of the executed prefix, and the
        // cursor keeps working over the truncated representation.
        glog.truncate_before(&stable);
        assert_eq!(glog.retained_len(), 1);
        assert_eq!(
            glog.first_pending().unwrap().id(),
            BlockId::new(InstanceId::new(0), SeqNum::new(1))
        );
        assert_eq!(glog.pop_pending().unwrap().header.sn, SeqNum::new(1));
        glog.truncate_before(&stable);
        assert_eq!(glog.retained_len(), 0);
        assert_eq!(glog.retained_bytes(), 0);

        // History survives truncation: order, len and dedup are intact.
        assert_eq!(glog.len(), 3);
        assert_eq!(glog.order().len(), 3);
        glog.append(block(0, 0)); // duplicate of a truncated entry
        assert_eq!(glog.len(), 3);

        // New appends land after the truncated prefix and execute normally.
        glog.append(block(1, 1));
        assert_eq!(glog.retained_len(), 1);
        assert_eq!(glog.pop_pending().unwrap().header.sn, SeqNum::new(1));
    }
}
