//! The global log (`glog`): the single, totally ordered sequence of blocks
//! shared by the whole Multi-BFT system (paper §V-B).
//!
//! Blocks are appended by the global ordering policy (pre-determined, DQBFT
//! or Ladon); the execution module consumes them in order through the cursor,
//! executing contract transactions sequentially.

use orthrus_types::{BlockId, SharedBlock};
use std::collections::HashSet;
use std::sync::Arc;

/// The global log.
#[derive(Debug, Default, Clone)]
pub struct GlobalLog {
    blocks: Vec<SharedBlock>,
    ids: HashSet<BlockId>,
    /// Index of the first entry not yet consumed by the execution module.
    cursor: usize,
}

impl GlobalLog {
    /// An empty global log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a globally confirmed block. Duplicate block ids are ignored
    /// (the ordering policy emits each block exactly once, but the execution
    /// layer's abort path may try to re-append during recovery).
    pub fn append(&mut self, block: SharedBlock) {
        if self.ids.insert(block.id()) {
            self.blocks.push(block);
        }
    }

    /// Number of blocks ever appended.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Has `id` been globally confirmed?
    pub fn contains(&self, id: BlockId) -> bool {
        self.ids.contains(&id)
    }

    /// The first appended-but-not-yet-executed block, if any.
    pub fn first_pending(&self) -> Option<&SharedBlock> {
        self.blocks.get(self.cursor)
    }

    /// Position of the execution cursor.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Pop the next block for execution, advancing the cursor. Returns a
    /// clone of the shared handle (a reference-count bump).
    pub fn pop_pending(&mut self) -> Option<SharedBlock> {
        let block = Arc::clone(self.blocks.get(self.cursor)?);
        self.cursor += 1;
        Some(block)
    }

    /// The global position assigned to `id`, if confirmed.
    pub fn position_of(&self, id: BlockId) -> Option<usize> {
        if !self.ids.contains(&id) {
            return None;
        }
        self.blocks.iter().position(|b| b.id() == id)
    }

    /// Iterate over the confirmed blocks in global order.
    pub fn iter(&self) -> impl Iterator<Item = &SharedBlock> {
        self.blocks.iter()
    }

    /// Block ids in global order (useful for cross-replica agreement checks).
    pub fn order(&self) -> Vec<BlockId> {
        self.blocks.iter().map(|b| b.id()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_types::{
        Block, BlockParams, Epoch, InstanceId, Rank, ReplicaId, SeqNum, SystemState, View,
    };

    fn block(instance: u32, sn: u64) -> SharedBlock {
        Arc::new(Block::no_op(BlockParams {
            instance: InstanceId::new(instance),
            sn: SeqNum::new(sn),
            epoch: Epoch::new(0),
            view: View::new(0),
            proposer: ReplicaId::new(instance),
            rank: Rank::new(sn),
            state: SystemState::new(2),
        }))
    }

    #[test]
    fn append_preserves_order_and_dedups() {
        let mut glog = GlobalLog::new();
        glog.append(block(0, 0));
        glog.append(block(1, 0));
        glog.append(block(0, 0)); // duplicate
        assert_eq!(glog.len(), 2);
        assert!(glog.contains(BlockId::new(InstanceId::new(0), SeqNum::new(0))));
        assert_eq!(
            glog.order(),
            vec![
                BlockId::new(InstanceId::new(0), SeqNum::new(0)),
                BlockId::new(InstanceId::new(1), SeqNum::new(0)),
            ]
        );
    }

    #[test]
    fn cursor_walks_the_log() {
        let mut glog = GlobalLog::new();
        glog.append(block(0, 0));
        glog.append(block(1, 0));
        assert_eq!(
            glog.first_pending().unwrap().header.instance,
            InstanceId::new(0)
        );
        assert_eq!(
            glog.pop_pending().unwrap().header.instance,
            InstanceId::new(0)
        );
        assert_eq!(glog.cursor(), 1);
        assert_eq!(
            glog.pop_pending().unwrap().header.instance,
            InstanceId::new(1)
        );
        assert!(glog.pop_pending().is_none());
    }

    #[test]
    fn position_lookup() {
        let mut glog = GlobalLog::new();
        glog.append(block(0, 0));
        glog.append(block(3, 7));
        assert_eq!(
            glog.position_of(BlockId::new(InstanceId::new(3), SeqNum::new(7))),
            Some(1)
        );
        assert_eq!(
            glog.position_of(BlockId::new(InstanceId::new(9), SeqNum::new(9))),
            None
        );
    }
}
