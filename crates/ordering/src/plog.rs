//! The partial log (`plog`): per-instance sequence of delivered blocks.
//!
//! Each SB instance maintains its own partial log (paper §V-B). Blocks enter
//! the log when the instance delivers them; the execution module walks the
//! log in sequence-number order ("first pending transaction") to execute
//! payment transactions without waiting for the global log.

use orthrus_types::{InstanceId, SeqNum, SharedBlock, SystemState};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The partial log of a single SB instance.
#[derive(Debug, Default, Clone)]
pub struct PartialLog {
    blocks: BTreeMap<SeqNum, SharedBlock>,
    /// First sequence number not yet consumed by the execution module.
    cursor: SeqNum,
    /// Wire-size estimate of every retained block, maintained on insert and
    /// truncation so retained-memory accounting is O(1) to read.
    retained_bytes: u64,
}

impl PartialLog {
    /// An empty partial log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a delivered block at its sequence number. The log stores the
    /// shared handle the SB instance delivered — no transaction data is
    /// copied. Re-inserting the same sequence number keeps the first handle
    /// (SB agreement guarantees the contents are identical).
    pub fn insert(&mut self, block: SharedBlock) {
        let bytes = block.wire_bytes();
        if let std::collections::btree_map::Entry::Vacant(entry) =
            self.blocks.entry(block.header.sn)
        {
            entry.insert(block);
            self.retained_bytes += bytes;
        }
    }

    /// The block at `sn`, if delivered.
    pub fn get(&self, sn: SeqNum) -> Option<&SharedBlock> {
        self.blocks.get(&sn)
    }

    /// Number of blocks in the log (delivered, not yet garbage-collected).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The execution cursor: first sequence number not yet consumed.
    pub fn cursor(&self) -> SeqNum {
        self.cursor
    }

    /// The next contiguous block available for execution (the paper's
    /// `firstPending(plog[i])`), if it has been delivered.
    pub fn first_pending(&self) -> Option<&SharedBlock> {
        self.blocks.get(&self.cursor)
    }

    /// Pop the next contiguous block for execution, advancing the cursor.
    /// Returns a clone of the shared handle (a reference-count bump); the
    /// block stays in the log until garbage collection.
    pub fn pop_pending(&mut self) -> Option<SharedBlock> {
        let block = Arc::clone(self.blocks.get(&self.cursor)?);
        self.cursor = self.cursor.next();
        Some(block)
    }

    /// Checkpoint-driven truncation: drop blocks with sequence numbers at or
    /// below `stable` that the execution module has already consumed. The
    /// quorum certificate behind `stable` guarantees the prefix is durable at
    /// `2f + 1` replicas, so the `Arc` handles can be released; anything the
    /// cursor has not passed is retained regardless (it is still needed for
    /// execution).
    pub fn truncate_before(&mut self, stable: SeqNum) {
        let cursor = self.cursor;
        let mut freed = 0u64;
        self.blocks.retain(|k, block| {
            let keep = *k > stable || *k >= cursor;
            if !keep {
                freed += block.wire_bytes();
            }
            keep
        });
        self.retained_bytes -= freed;
    }

    /// Wire-size estimate of the retained blocks.
    pub fn retained_bytes(&self) -> u64 {
        self.retained_bytes
    }

    /// Iterate over all delivered blocks in sequence order.
    pub fn iter(&self) -> impl Iterator<Item = &SharedBlock> {
        self.blocks.values()
    }
}

/// The set of partial logs of all instances, indexed by instance id.
#[derive(Debug, Default, Clone)]
pub struct PartialLogs {
    logs: BTreeMap<InstanceId, PartialLog>,
}

impl PartialLogs {
    /// Create partial logs for `m` instances.
    pub fn new(m: u32) -> Self {
        let logs = (0..m)
            .map(|i| (InstanceId::new(i), PartialLog::new()))
            .collect();
        Self { logs }
    }

    /// The partial log of `instance` (created on demand).
    pub fn get_mut(&mut self, instance: InstanceId) -> &mut PartialLog {
        self.logs.entry(instance).or_default()
    }

    /// Read-only access to the partial log of `instance`.
    pub fn get(&self, instance: InstanceId) -> Option<&PartialLog> {
        self.logs.get(&instance)
    }

    /// Iterate over `(instance, log)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (InstanceId, &PartialLog)> {
        self.logs.iter().map(|(i, l)| (*i, l))
    }

    /// Iterate mutably over `(instance, log)` pairs.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (InstanceId, &mut PartialLog)> {
        self.logs.iter_mut().map(|(i, l)| (*i, l))
    }

    /// Total number of blocks across all instances.
    pub fn total_blocks(&self) -> usize {
        self.logs.values().map(PartialLog::len).sum()
    }

    /// Total wire-size estimate of retained blocks across all instances.
    pub fn retained_bytes(&self) -> u64 {
        self.logs.values().map(PartialLog::retained_bytes).sum()
    }

    /// Drain every block that is ready for execution: repeatedly sweep the
    /// instances in id order, popping each instance's first pending block
    /// whose referenced state `b.S` is covered by `executed` (paper §V-C) and
    /// recording its delivery in `executed`, until a full sweep makes no
    /// progress. The returned *schedule* — `(instance, block)` pairs in pop
    /// order — is exactly the order the replica's old serial walk consumed
    /// blocks in, so executing it (serially or via the executor's shard
    /// pool) preserves the confirmation trace bit for bit.
    ///
    /// Readiness depends only on delivery coverage, never on execution
    /// outcomes, which is why the schedule can be computed up front and
    /// handed to the execution module as one batch.
    pub fn drain_ready(&mut self, executed: &mut SystemState) -> Vec<(InstanceId, SharedBlock)> {
        let mut schedule = Vec::new();
        loop {
            let mut progressed = false;
            for (instance, log) in self.logs.iter_mut() {
                let ready = log
                    .first_pending()
                    .is_some_and(|block| executed.covers(&block.header.state));
                if !ready {
                    continue;
                }
                let block = log.pop_pending().expect("first_pending was Some");
                executed.observe(*instance, block.header.sn);
                schedule.push((*instance, block));
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_types::{Block, BlockParams, Epoch, Rank, ReplicaId, SystemState, View};

    fn block(instance: u32, sn: u64) -> SharedBlock {
        Arc::new(Block::no_op(BlockParams {
            instance: InstanceId::new(instance),
            sn: SeqNum::new(sn),
            epoch: Epoch::new(0),
            view: View::new(0),
            proposer: ReplicaId::new(instance),
            rank: Rank::new(sn),
            state: SystemState::new(2),
        }))
    }

    #[test]
    fn first_pending_requires_contiguity() {
        let mut log = PartialLog::new();
        log.insert(block(0, 1));
        assert!(log.first_pending().is_none());
        log.insert(block(0, 0));
        assert_eq!(log.first_pending().unwrap().header.sn, SeqNum::new(0));
        assert_eq!(log.pop_pending().unwrap().header.sn, SeqNum::new(0));
        assert_eq!(log.pop_pending().unwrap().header.sn, SeqNum::new(1));
        assert!(log.pop_pending().is_none());
        assert_eq!(log.cursor(), SeqNum::new(2));
    }

    #[test]
    fn duplicate_insert_keeps_first() {
        let mut log = PartialLog::new();
        let first = block(0, 0);
        log.insert(Arc::clone(&first));
        log.insert(block(0, 0));
        assert_eq!(log.len(), 1);
        assert_eq!(log.get(SeqNum::new(0)).unwrap().digest(), first.digest());
    }

    #[test]
    fn truncation_spares_unexecuted_blocks() {
        let mut log = PartialLog::new();
        for sn in 0..4 {
            log.insert(block(0, sn));
        }
        let full_bytes = log.retained_bytes();
        assert!(full_bytes > 0);
        log.pop_pending();
        log.pop_pending();
        // Truncate up to sn 3, but only executed blocks (0 and 1) may go.
        log.truncate_before(SeqNum::new(3));
        assert!(log.get(SeqNum::new(0)).is_none());
        assert!(log.get(SeqNum::new(1)).is_none());
        assert!(log.get(SeqNum::new(2)).is_some());
        assert!(log.get(SeqNum::new(3)).is_some());
        assert_eq!(log.retained_bytes(), full_bytes / 2);
    }

    #[test]
    fn retained_bytes_track_inserts_and_duplicates() {
        let mut log = PartialLog::new();
        log.insert(block(0, 0));
        let one = log.retained_bytes();
        // A duplicate insert keeps the first handle and charges nothing.
        log.insert(block(0, 0));
        assert_eq!(log.retained_bytes(), one);
        log.insert(block(0, 1));
        assert_eq!(log.retained_bytes(), 2 * one);
        log.pop_pending();
        log.pop_pending();
        log.truncate_before(SeqNum::new(1));
        assert_eq!(log.retained_bytes(), 0);
        assert!(log.is_empty());
    }

    #[test]
    fn logs_per_instance_are_independent() {
        let mut logs = PartialLogs::new(2);
        logs.get_mut(InstanceId::new(0)).insert(block(0, 0));
        logs.get_mut(InstanceId::new(1)).insert(block(1, 0));
        logs.get_mut(InstanceId::new(1)).insert(block(1, 1));
        assert_eq!(logs.get(InstanceId::new(0)).unwrap().len(), 1);
        assert_eq!(logs.get(InstanceId::new(1)).unwrap().len(), 2);
        assert_eq!(logs.total_blocks(), 3);
        assert_eq!(logs.iter().count(), 2);
    }

    #[test]
    fn on_demand_instance_creation() {
        let mut logs = PartialLogs::new(1);
        logs.get_mut(InstanceId::new(5)).insert(block(5, 0));
        assert!(logs.get(InstanceId::new(5)).is_some());
    }

    fn block_with_state(instance: u32, sn: u64, state: SystemState) -> SharedBlock {
        Arc::new(orthrus_types::Block::no_op(BlockParams {
            instance: InstanceId::new(instance),
            sn: SeqNum::new(sn),
            epoch: Epoch::new(0),
            view: View::new(0),
            proposer: ReplicaId::new(instance),
            rank: Rank::new(sn),
            state,
        }))
    }

    #[test]
    fn drain_ready_pops_in_sweep_order_and_respects_coverage() {
        let mut logs = PartialLogs::new(2);
        // Instance 1's second block requires instance 0 to have delivered
        // sn 0 first.
        let mut needs_i0 = SystemState::new(2);
        needs_i0.observe(InstanceId::new(0), SeqNum::new(0));
        logs.get_mut(InstanceId::new(0)).insert(block(0, 0));
        logs.get_mut(InstanceId::new(1))
            .insert(block_with_state(1, 0, SystemState::new(2)));
        logs.get_mut(InstanceId::new(1))
            .insert(block_with_state(1, 1, needs_i0));

        let mut executed = SystemState::new(2);
        let schedule = logs.drain_ready(&mut executed);
        // Sweep 1 pops (0, sn0) then (1, sn0); sweep 2 pops (1, sn1), which
        // became ready once instance 0's delivery was observed.
        let shape: Vec<(u32, u64)> = schedule
            .iter()
            .map(|(i, b)| (i.value(), b.header.sn.value()))
            .collect();
        assert_eq!(shape, vec![(0, 0), (1, 0), (1, 1)]);
        assert_eq!(executed.get(InstanceId::new(0)), Some(SeqNum::new(0)));
        assert_eq!(executed.get(InstanceId::new(1)), Some(SeqNum::new(1)));
        // Nothing left to drain.
        assert!(logs.drain_ready(&mut executed).is_empty());
    }

    #[test]
    fn drain_ready_leaves_uncovered_blocks_pending() {
        let mut logs = PartialLogs::new(1);
        let mut unreachable = SystemState::new(1);
        unreachable.observe(InstanceId::new(0), SeqNum::new(99));
        logs.get_mut(InstanceId::new(0))
            .insert(block_with_state(0, 0, unreachable));
        let mut executed = SystemState::new(1);
        assert!(logs.drain_ready(&mut executed).is_empty());
        assert_eq!(logs.total_blocks(), 1);
        assert_eq!(
            logs.get(InstanceId::new(0)).unwrap().cursor(),
            SeqNum::new(0)
        );
    }
}
