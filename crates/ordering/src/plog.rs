//! The partial log (`plog`): per-instance sequence of delivered blocks.
//!
//! Each SB instance maintains its own partial log (paper §V-B). Blocks enter
//! the log when the instance delivers them; the execution module walks the
//! log in sequence-number order ("first pending transaction") to execute
//! payment transactions without waiting for the global log.

use orthrus_types::{InstanceId, SeqNum, SharedBlock};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The partial log of a single SB instance.
#[derive(Debug, Default, Clone)]
pub struct PartialLog {
    blocks: BTreeMap<SeqNum, SharedBlock>,
    /// First sequence number not yet consumed by the execution module.
    cursor: SeqNum,
}

impl PartialLog {
    /// An empty partial log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a delivered block at its sequence number. The log stores the
    /// shared handle the SB instance delivered — no transaction data is
    /// copied. Re-inserting the same sequence number keeps the first handle
    /// (SB agreement guarantees the contents are identical).
    pub fn insert(&mut self, block: SharedBlock) {
        self.blocks.entry(block.header.sn).or_insert(block);
    }

    /// The block at `sn`, if delivered.
    pub fn get(&self, sn: SeqNum) -> Option<&SharedBlock> {
        self.blocks.get(&sn)
    }

    /// Number of blocks in the log (delivered, not yet garbage-collected).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The execution cursor: first sequence number not yet consumed.
    pub fn cursor(&self) -> SeqNum {
        self.cursor
    }

    /// The next contiguous block available for execution (the paper's
    /// `firstPending(plog[i])`), if it has been delivered.
    pub fn first_pending(&self) -> Option<&SharedBlock> {
        self.blocks.get(&self.cursor)
    }

    /// Pop the next contiguous block for execution, advancing the cursor.
    /// Returns a clone of the shared handle (a reference-count bump); the
    /// block stays in the log until garbage collection.
    pub fn pop_pending(&mut self) -> Option<SharedBlock> {
        let block = Arc::clone(self.blocks.get(&self.cursor)?);
        self.cursor = self.cursor.next();
        Some(block)
    }

    /// Drop blocks with sequence numbers at or below `sn` that have already
    /// been executed (garbage collection after a stable checkpoint).
    pub fn garbage_collect(&mut self, sn: SeqNum) {
        let cursor = self.cursor;
        self.blocks.retain(|k, _| *k > sn || *k >= cursor);
    }

    /// Iterate over all delivered blocks in sequence order.
    pub fn iter(&self) -> impl Iterator<Item = &SharedBlock> {
        self.blocks.values()
    }
}

/// The set of partial logs of all instances, indexed by instance id.
#[derive(Debug, Default, Clone)]
pub struct PartialLogs {
    logs: BTreeMap<InstanceId, PartialLog>,
}

impl PartialLogs {
    /// Create partial logs for `m` instances.
    pub fn new(m: u32) -> Self {
        let logs = (0..m)
            .map(|i| (InstanceId::new(i), PartialLog::new()))
            .collect();
        Self { logs }
    }

    /// The partial log of `instance` (created on demand).
    pub fn get_mut(&mut self, instance: InstanceId) -> &mut PartialLog {
        self.logs.entry(instance).or_default()
    }

    /// Read-only access to the partial log of `instance`.
    pub fn get(&self, instance: InstanceId) -> Option<&PartialLog> {
        self.logs.get(&instance)
    }

    /// Iterate over `(instance, log)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (InstanceId, &PartialLog)> {
        self.logs.iter().map(|(i, l)| (*i, l))
    }

    /// Iterate mutably over `(instance, log)` pairs.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (InstanceId, &mut PartialLog)> {
        self.logs.iter_mut().map(|(i, l)| (*i, l))
    }

    /// Total number of blocks across all instances.
    pub fn total_blocks(&self) -> usize {
        self.logs.values().map(PartialLog::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_types::{Block, BlockParams, Epoch, Rank, ReplicaId, SystemState, View};

    fn block(instance: u32, sn: u64) -> SharedBlock {
        Arc::new(Block::no_op(BlockParams {
            instance: InstanceId::new(instance),
            sn: SeqNum::new(sn),
            epoch: Epoch::new(0),
            view: View::new(0),
            proposer: ReplicaId::new(instance),
            rank: Rank::new(sn),
            state: SystemState::new(2),
        }))
    }

    #[test]
    fn first_pending_requires_contiguity() {
        let mut log = PartialLog::new();
        log.insert(block(0, 1));
        assert!(log.first_pending().is_none());
        log.insert(block(0, 0));
        assert_eq!(log.first_pending().unwrap().header.sn, SeqNum::new(0));
        assert_eq!(log.pop_pending().unwrap().header.sn, SeqNum::new(0));
        assert_eq!(log.pop_pending().unwrap().header.sn, SeqNum::new(1));
        assert!(log.pop_pending().is_none());
        assert_eq!(log.cursor(), SeqNum::new(2));
    }

    #[test]
    fn duplicate_insert_keeps_first() {
        let mut log = PartialLog::new();
        let first = block(0, 0);
        log.insert(Arc::clone(&first));
        log.insert(block(0, 0));
        assert_eq!(log.len(), 1);
        assert_eq!(log.get(SeqNum::new(0)).unwrap().digest(), first.digest());
    }

    #[test]
    fn garbage_collection_spares_unexecuted_blocks() {
        let mut log = PartialLog::new();
        for sn in 0..4 {
            log.insert(block(0, sn));
        }
        log.pop_pending();
        log.pop_pending();
        // GC up to sn 3, but only executed blocks (0 and 1) may go.
        log.garbage_collect(SeqNum::new(3));
        assert!(log.get(SeqNum::new(0)).is_none());
        assert!(log.get(SeqNum::new(1)).is_none());
        assert!(log.get(SeqNum::new(2)).is_some());
        assert!(log.get(SeqNum::new(3)).is_some());
    }

    #[test]
    fn logs_per_instance_are_independent() {
        let mut logs = PartialLogs::new(2);
        logs.get_mut(InstanceId::new(0)).insert(block(0, 0));
        logs.get_mut(InstanceId::new(1)).insert(block(1, 0));
        logs.get_mut(InstanceId::new(1)).insert(block(1, 1));
        assert_eq!(logs.get(InstanceId::new(0)).unwrap().len(), 1);
        assert_eq!(logs.get(InstanceId::new(1)).unwrap().len(), 2);
        assert_eq!(logs.total_blocks(), 3);
        assert_eq!(logs.iter().count(), 2);
    }

    #[test]
    fn on_demand_instance_creation() {
        let mut logs = PartialLogs::new(1);
        logs.get_mut(InstanceId::new(5)).insert(block(5, 0));
        assert!(logs.get(InstanceId::new(5)).is_some());
    }
}
