//! Pre-determined global ordering (ISS, Mir-BFT, RCC).
//!
//! The global position of block `(instance i, sequence number s)` is fixed in
//! advance as `s · m + i`: the log interleaves one block from every instance
//! per "round". A block can only be confirmed when every earlier position is
//! filled, so a straggler instance leaves a gap that stalls every subsequent
//! block of every other instance — exactly the behaviour the paper's Fig. 1
//! and Fig. 3c/3d demonstrate. ISS mitigates missing batches (empty buckets)
//! by delivering no-op blocks, which occupy their positions like any other
//! block; that happens at the proposal layer and is transparent here.

use crate::policy::GlobalOrderingPolicy;
use orthrus_types::SharedBlock;
use std::collections::BTreeMap;

/// Pre-determined (round-robin interleaved) global ordering.
#[derive(Debug, Clone)]
pub struct PredeterminedOrdering {
    /// Number of instances `m`.
    num_instances: u64,
    /// Next global position that must be filled before anything later can be
    /// confirmed.
    next_position: u64,
    /// Delivered blocks waiting for their position to be reached.
    buffer: BTreeMap<u64, SharedBlock>,
}

impl PredeterminedOrdering {
    /// Create the ordering for `m` instances.
    pub fn new(num_instances: u32) -> Self {
        Self {
            num_instances: u64::from(num_instances.max(1)),
            next_position: 0,
            buffer: BTreeMap::new(),
        }
    }

    /// The fixed global position of a block.
    fn position(&self, block: &SharedBlock) -> u64 {
        block.header.sn.value() * self.num_instances + u64::from(block.header.instance.value())
    }

    /// The next unfilled global position (exposed for tests and metrics).
    pub fn next_position(&self) -> u64 {
        self.next_position
    }
}

impl GlobalOrderingPolicy for PredeterminedOrdering {
    fn on_deliver(&mut self, block: SharedBlock) -> Vec<SharedBlock> {
        let position = self.position(&block);
        if position < self.next_position {
            // Late duplicate of an already-confirmed position.
            return Vec::new();
        }
        self.buffer.insert(position, block);
        let mut confirmed = Vec::new();
        while let Some(block) = self.buffer.remove(&self.next_position) {
            confirmed.push(block);
            self.next_position += 1;
        }
        confirmed
    }

    fn pending(&self) -> usize {
        self.buffer.len()
    }

    fn name(&self) -> &'static str {
        "predetermined"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_support::block;
    use orthrus_types::InstanceId;

    #[test]
    fn confirms_in_round_robin_order() {
        let mut ord = PredeterminedOrdering::new(3);
        // Deliver out of order: (1,0), (0,0), (2,0).
        assert!(ord.on_deliver(block(1, 0, 0)).is_empty());
        let first = ord.on_deliver(block(0, 0, 0));
        assert_eq!(first.len(), 2); // positions 0 and 1
        assert_eq!(first[0].header.instance, InstanceId::new(0));
        assert_eq!(first[1].header.instance, InstanceId::new(1));
        let second = ord.on_deliver(block(2, 0, 0));
        assert_eq!(second.len(), 1);
        assert_eq!(ord.pending(), 0);
        assert_eq!(ord.next_position(), 3);
    }

    #[test]
    fn straggler_gap_blocks_everything() {
        let mut ord = PredeterminedOrdering::new(3);
        // Instances 1 and 2 race ahead by two sequence numbers; instance 0
        // (the straggler) has delivered nothing.
        for sn in 0..2 {
            for inst in 1..3 {
                assert!(ord.on_deliver(block(inst, sn, 0)).is_empty());
            }
        }
        assert_eq!(ord.pending(), 4);
        // The straggler's first block unblocks exactly one round plus the
        // buffered instance-1/2 blocks of round 0, then stalls again at
        // position 3 (instance 0, sn 1).
        let confirmed = ord.on_deliver(block(0, 0, 0));
        assert_eq!(confirmed.len(), 3);
        assert_eq!(ord.pending(), 2);
        let confirmed = ord.on_deliver(block(0, 1, 0));
        assert_eq!(confirmed.len(), 3);
        assert_eq!(ord.pending(), 0);
    }

    #[test]
    fn duplicate_deliveries_are_ignored() {
        let mut ord = PredeterminedOrdering::new(2);
        assert_eq!(ord.on_deliver(block(0, 0, 0)).len(), 1);
        assert!(ord.on_deliver(block(0, 0, 0)).is_empty());
    }

    /// Whatever the delivery interleaving, the confirmed order is always the
    /// canonical position order and every block is confirmed exactly once
    /// after all blocks are delivered. (Seeded-loop replacement for the
    /// former property-based test; 200 shuffles cover the interleavings.)
    #[test]
    fn total_order_is_position_order_under_any_interleaving() {
        use orthrus_types::rng::{SliceRandom, StdRng};
        let m = 4u32;
        let sns = 5u64;
        for seed in 0u64..200 {
            let mut blocks: Vec<_> = (0..m)
                .flat_map(|i| (0..sns).map(move |s| block(i, s, 0)))
                .collect();
            let mut rng = StdRng::seed_from_u64(seed);
            blocks.shuffle(&mut rng);

            let mut ord = PredeterminedOrdering::new(m);
            let mut confirmed = Vec::new();
            for b in blocks {
                confirmed.extend(ord.on_deliver(b));
            }
            assert_eq!(confirmed.len(), (m as u64 * sns) as usize);
            assert_eq!(ord.pending(), 0);
            for (idx, b) in confirmed.iter().enumerate() {
                let expected_sn = idx as u64 / m as u64;
                let expected_inst = idx as u64 % m as u64;
                assert_eq!(b.header.sn.value(), expected_sn);
                assert_eq!(u64::from(b.header.instance.value()), expected_inst);
            }
        }
    }
}
