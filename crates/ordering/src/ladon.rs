//! Ladon's dynamic rank-based global ordering (paper Appendix A,
//! Algorithm 3), used by both the Ladon baseline and Orthrus (for its
//! contract transactions).
//!
//! Blocks are globally ordered by `(rank, instance)`. A delivered block `b`
//! can be confirmed as soon as the *bar* — the lowest `(rank + 1, instance)`
//! over the most recently delivered block of every instance — exceeds `b`'s
//! key, because rank monotonicity guarantees that no instance can later
//! deliver a block below the bar.
//!
//! Compared with the pre-determined interleaving, a straggler instance only
//! delays confirmation until its *next* delivery (which then carries a large,
//! up-to-date rank and advances the bar past everything waiting), instead of
//! forcing every other instance to wait for the straggler to fill each of its
//! reserved slots.

use crate::policy::GlobalOrderingPolicy;
use orthrus_types::{Block, InstanceId, Rank, SharedBlock};
use std::collections::BTreeMap;

/// The global ordering key of a block: `(rank, instance)`, compared
/// lexicographically (the paper's `≺` relation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OrderKey {
    /// The block's rank.
    pub rank: Rank,
    /// The block's instance (tie-breaker).
    pub instance: InstanceId,
}

impl OrderKey {
    /// Key of a block.
    pub fn of(block: &Block) -> Self {
        Self {
            rank: block.header.rank,
            instance: block.header.instance,
        }
    }
}

/// Dynamic rank-based global ordering.
#[derive(Debug, Clone)]
pub struct LadonOrdering {
    /// Number of instances `m`.
    num_instances: u32,
    /// Rank of the most recently delivered block per instance (`P'`).
    last_delivered: Vec<Option<Rank>>,
    /// Blocks delivered but not yet confirmed (`W`), keyed by order key plus
    /// sequence number to keep keys unique even if a Byzantine leader reuses
    /// a rank within its instance.
    waiting: BTreeMap<(OrderKey, u64), SharedBlock>,
}

impl LadonOrdering {
    /// Create the ordering for `m` instances.
    pub fn new(num_instances: u32) -> Self {
        Self {
            num_instances: num_instances.max(1),
            last_delivered: vec![None; num_instances.max(1) as usize],
            waiting: BTreeMap::new(),
        }
    }

    /// The current bar: the lowest `(rank + 1, instance)` over every
    /// instance's last delivered block. Instances that have not delivered yet
    /// contribute `(1, instance)` — their first block will carry rank ≥ 1 —
    /// which keeps the bar conservative (initially `(1, 0)`, matching the
    /// paper's `(0, 0)` initialisation in effect).
    pub fn bar(&self) -> OrderKey {
        let mut bar = OrderKey {
            rank: Rank::new(u64::MAX),
            instance: InstanceId::new(u32::MAX),
        };
        for (idx, last) in self.last_delivered.iter().enumerate() {
            let candidate = OrderKey {
                rank: last.map_or(Rank::new(1), Rank::next),
                instance: InstanceId::new(idx as u32),
            };
            if candidate < bar {
                bar = candidate;
            }
        }
        bar
    }

    /// Number of instances that have delivered at least one block.
    pub fn instances_started(&self) -> usize {
        self.last_delivered.iter().filter(|l| l.is_some()).count()
    }
}

impl GlobalOrderingPolicy for LadonOrdering {
    fn on_deliver(&mut self, block: SharedBlock) -> Vec<SharedBlock> {
        let instance = block.header.instance.as_usize();
        if instance >= self.last_delivered.len() {
            self.last_delivered.resize(instance + 1, None);
            self.num_instances = (instance + 1) as u32;
        }
        // Update P': the most recent delivered block of this instance. Ranks
        // are monotone within an instance, so `max` and "most recent"
        // coincide; `max` also tolerates Byzantine rank regressions.
        let entry = &mut self.last_delivered[instance];
        *entry = Some(match *entry {
            Some(prev) => prev.max(block.header.rank),
            None => block.header.rank,
        });
        self.waiting
            .insert((OrderKey::of(&block), block.header.sn.value()), block);

        // Confirm every waiting block strictly below the bar.
        let bar = self.bar();
        let mut confirmed = Vec::new();
        while let Some((&(key, sn), _)) = self.waiting.iter().next() {
            if key < bar {
                let block = self
                    .waiting
                    .remove(&(key, sn))
                    .expect("key taken from iterator");
                confirmed.push(block);
            } else {
                break;
            }
        }
        confirmed
    }

    fn pending(&self) -> usize {
        self.waiting.len()
    }

    fn name(&self) -> &'static str {
        "ladon"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_support::block;
    use std::sync::Arc;

    #[test]
    fn bar_starts_conservative() {
        let ord = LadonOrdering::new(3);
        assert_eq!(
            ord.bar(),
            OrderKey {
                rank: Rank::new(1),
                instance: InstanceId::new(0)
            }
        );
        assert_eq!(ord.instances_started(), 0);
    }

    #[test]
    fn confirmation_respects_the_bar() {
        let mut ord = LadonOrdering::new(2);
        // Instance 0 delivers rank 1. The bar is (1, instance 1) because
        // instance 1 has not delivered yet; key (1, instance 0) lies below it
        // (instance tie-break), so the block confirms immediately — no future
        // block of either instance can have a lower key.
        assert_eq!(ord.on_deliver(block(0, 0, 1)).len(), 1);
        // Instance 0's next block (rank 2) must wait: instance 1 could still
        // deliver a rank-1 block, whose key (1, 1) would be lower.
        assert!(ord.on_deliver(block(0, 1, 2)).is_empty());
        assert_eq!(ord.pending(), 1);
        // Instance 1's first delivery (rank 3) lifts the bar to (3, 0):
        // instance 0's rank-2 block confirms, instance 1's rank-3 block
        // still waits (its key (3,1) is not below the bar (3,0)).
        let confirmed = ord.on_deliver(block(1, 0, 3));
        let ranks: Vec<u64> = confirmed.iter().map(|b| b.header.rank.value()).collect();
        assert_eq!(ranks, vec![2]);
        assert_eq!(ord.pending(), 1);
    }

    #[test]
    fn straggler_catchup_confirms_backlog_at_once() {
        let mut ord = LadonOrdering::new(2);
        // Fast instance 1 delivers ranks 1..=5; straggler instance 0 has
        // delivered nothing, so everything waits (the bar stays at (1, 0)).
        for (sn, rank) in (1..=5).enumerate() {
            assert!(ord.on_deliver(block(1, sn as u64, rank)).is_empty());
        }
        assert_eq!(ord.pending(), 5);
        // The straggler finally delivers a block with an up-to-date rank (6):
        // the bar is min((7,0), (6,1)) = (6,1), so the whole backlog of
        // instance 1 (ranks 1..=5) confirms at once, and the straggler's own
        // rank-6 block confirms too (its key (6,0) lies below (6,1)).
        let confirmed = ord.on_deliver(block(0, 0, 6));
        assert_eq!(confirmed.len(), 6);
        assert_eq!(ord.pending(), 0);
    }

    #[test]
    fn order_is_by_rank_then_instance() {
        let mut ord = LadonOrdering::new(3);
        let mut confirmed = Vec::new();
        confirmed.extend(ord.on_deliver(block(2, 0, 2)));
        confirmed.extend(ord.on_deliver(block(1, 0, 2)));
        confirmed.extend(ord.on_deliver(block(0, 0, 5)));
        // bar = min((6,0),(3,1),(3,2)) = (3,1): both rank-2 blocks confirm,
        // instance 1 before instance 2.
        let keys: Vec<(u64, u32)> = confirmed
            .iter()
            .map(|b| (b.header.rank.value(), b.header.instance.value()))
            .collect();
        assert_eq!(keys, vec![(2, 1), (2, 2)]);
    }

    /// Agreement: two replicas that deliver the same blocks in different
    /// orders confirm the same global prefix in the same order. (Seeded-loop
    /// replacement for the former property-based test.)
    #[test]
    fn confirmation_order_is_delivery_order_independent() {
        use orthrus_types::rng::{SliceRandom, StdRng};
        let m = 3u32;
        // Per-instance monotone ranks loosely interleaved across instances.
        let mut blocks = Vec::new();
        let mut rank = 1u64;
        for sn in 0..4u64 {
            for inst in 0..m {
                blocks.push(block(inst, sn, rank));
                rank += 1;
            }
        }
        let run = |order: &[SharedBlock]| {
            let mut ord = LadonOrdering::new(m);
            let mut confirmed = Vec::new();
            for b in order {
                confirmed.extend(ord.on_deliver(Arc::clone(b)));
            }
            confirmed.iter().map(|b| b.id()).collect::<Vec<_>>()
        };
        // Replica A: per-instance in-order delivery, instances interleaved
        // round-robin (canonical).
        let canonical = run(&blocks);

        for seed in 0u64..150 {
            // Replica B: instances still deliver in order internally, but the
            // interleaving across instances is random.
            let mut per_instance: Vec<Vec<SharedBlock>> = vec![Vec::new(); m as usize];
            for b in &blocks {
                per_instance[b.header.instance.as_usize()].push(Arc::clone(b));
            }
            let mut rng = StdRng::seed_from_u64(seed);
            let mut shuffled = Vec::new();
            let mut cursors = vec![0usize; m as usize];
            while shuffled.len() < blocks.len() {
                let available: Vec<usize> = (0..m as usize)
                    .filter(|i| cursors[*i] < per_instance[*i].len())
                    .collect();
                let pick = *available.choose(&mut rng).unwrap();
                shuffled.push(Arc::clone(&per_instance[pick][cursors[pick]]));
                cursors[pick] += 1;
            }
            let other = run(&shuffled);

            // One run may have confirmed a longer prefix than the other, but
            // the shared prefix must be identical.
            let common = canonical.len().min(other.len());
            assert_eq!(&canonical[..common], &other[..common], "seed {seed}");
        }
    }

    /// Liveness/totality: once every instance has delivered its last block
    /// with the globally largest rank observed so far plus one sentinel
    /// block, every earlier block is confirmed.
    #[test]
    fn sentinel_flush_confirms_everything() {
        let m = 4u32;
        for num_blocks in 1usize..30 {
            let mut ord = LadonOrdering::new(m);
            let mut rank = 1u64;
            let mut total = 0usize;
            let mut confirmed = 0usize;
            for sn in 0..num_blocks as u64 {
                for inst in 0..m {
                    confirmed += ord.on_deliver(block(inst, sn, rank)).len();
                    total += 1;
                    rank += 1;
                }
            }
            // Flush with one sentinel block per instance carrying the highest
            // ranks.
            for inst in 0..m {
                confirmed += ord.on_deliver(block(inst, num_blocks as u64, rank)).len();
                rank += 1;
            }
            assert!(confirmed >= total, "confirmed {confirmed} of {total}");
        }
    }
}
