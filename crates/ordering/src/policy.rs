//! The global-ordering policy abstraction.
//!
//! Every Multi-BFT protocol in the paper takes the blocks delivered by the
//! per-instance SB protocols and merges them into one global log; they differ
//! in *how* that merge is computed:
//!
//! * ISS, Mir-BFT and RCC use a **pre-determined** interleaving of sequence
//!   numbers ([`crate::predetermined::PredeterminedOrdering`]);
//! * DQBFT funnels delivered block ids through one **dedicated ordering
//!   instance** ([`crate::dqbft::DqbftOrdering`]);
//! * Ladon — and Orthrus for its contract transactions — uses **dynamic
//!   rank-based ordering** ([`crate::ladon::LadonOrdering`]).
//!
//! A policy is a deterministic function of the blocks it is fed, so every
//! honest replica running the same policy over the same delivered blocks
//! obtains the same global log, without extra communication (DQBFT's decision
//! stream also goes through consensus and is therefore identical everywhere).

use orthrus_types::{BlockId, SharedBlock};

/// A deterministic rule turning per-instance deliveries into a global order.
pub trait GlobalOrderingPolicy {
    /// Feed one block delivered by its SB instance. Returns the blocks that
    /// become globally confirmed as a result, in global order. May return
    /// zero blocks (the delivery filled no gap) or several (it unblocked a
    /// prefix). Blocks move through the policy as shared handles; buffering
    /// and confirming never copies transaction data.
    fn on_deliver(&mut self, block: SharedBlock) -> Vec<SharedBlock>;

    /// Feed one ordering decision (only meaningful for DQBFT, where the
    /// dedicated ordering instance delivers the ids of data blocks in their
    /// global order). The default implementation ignores decisions.
    fn on_order_decision(&mut self, _id: BlockId) -> Vec<SharedBlock> {
        Vec::new()
    }

    /// Number of blocks delivered but not yet globally confirmed (waiting for
    /// a gap to fill). Used by the metrics and by back-pressure heuristics.
    fn pending(&self) -> usize;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
pub(crate) mod test_support {
    use orthrus_types::{
        Block, BlockParams, Epoch, InstanceId, Rank, ReplicaId, SeqNum, SharedBlock, SystemState,
        View,
    };

    /// Build a no-op block for ordering tests.
    pub(crate) fn block(instance: u32, sn: u64, rank: u64) -> SharedBlock {
        std::sync::Arc::new(Block::no_op(BlockParams {
            instance: InstanceId::new(instance),
            sn: SeqNum::new(sn),
            epoch: Epoch::new(0),
            view: View::new(0),
            proposer: ReplicaId::new(instance),
            rank: Rank::new(rank),
            state: SystemState::new(4),
        }))
    }
}
