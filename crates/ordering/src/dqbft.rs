//! DQBFT-style global ordering: a dedicated ordering instance sequences the
//! blocks delivered by all data instances.
//!
//! In DQBFT (Arun & Ravindran, VLDB '22) replicas run many data instances
//! plus one *ordering* instance. Data instances deliver blocks; the ordering
//! instance runs consensus over the delivered block ids, and the resulting
//! decision stream *is* the global order. A block is confirmed once (a) its
//! data has been delivered by its data instance and (b) the ordering instance
//! has decided its position and every earlier decided block is confirmed.
//!
//! Confirmation therefore costs one extra consensus round on the ordering
//! instance, and the ordering instance's leader is a throughput bottleneck
//! and an attack target — which is why the paper's Fig. 3/4 show DQBFT behind
//! Orthrus/Ladon but ahead of the pre-determined protocols under stragglers.

use crate::policy::GlobalOrderingPolicy;
use orthrus_types::{BlockId, SharedBlock};
use std::collections::{HashMap, HashSet, VecDeque};

/// Global ordering driven by a dedicated ordering instance's decisions.
#[derive(Debug, Default, Clone)]
pub struct DqbftOrdering {
    /// Data blocks delivered but not yet confirmed, keyed by id.
    delivered: HashMap<BlockId, SharedBlock>,
    /// Decided ids waiting for their data (or for earlier decisions).
    decisions: VecDeque<BlockId>,
    /// Ids already confirmed (to drop duplicates).
    confirmed: HashSet<BlockId>,
}

impl DqbftOrdering {
    /// Create an empty ordering.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drain the front of the decision queue as long as data is available.
    fn drain(&mut self) -> Vec<SharedBlock> {
        let mut out = Vec::new();
        while let Some(next) = self.decisions.front() {
            if self.confirmed.contains(next) {
                self.decisions.pop_front();
                continue;
            }
            match self.delivered.remove(next) {
                Some(block) => {
                    self.confirmed.insert(*next);
                    self.decisions.pop_front();
                    out.push(block);
                }
                None => break,
            }
        }
        out
    }

    /// Number of ordering decisions not yet matched with data.
    pub fn undecided_data(&self) -> usize {
        self.delivered.len()
    }
}

impl GlobalOrderingPolicy for DqbftOrdering {
    fn on_deliver(&mut self, block: SharedBlock) -> Vec<SharedBlock> {
        let id = block.id();
        if self.confirmed.contains(&id) {
            return Vec::new();
        }
        self.delivered.entry(id).or_insert(block);
        self.drain()
    }

    fn on_order_decision(&mut self, id: BlockId) -> Vec<SharedBlock> {
        if self.confirmed.contains(&id) || self.decisions.contains(&id) {
            return Vec::new();
        }
        self.decisions.push_back(id);
        self.drain()
    }

    fn pending(&self) -> usize {
        self.delivered.len() + self.decisions.len()
    }

    fn name(&self) -> &'static str {
        "dqbft"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_support::block;

    #[test]
    fn confirmation_waits_for_both_data_and_decision() {
        let mut ord = DqbftOrdering::new();
        let b = block(0, 0, 0);
        let id = b.id();
        assert!(ord.on_deliver(b).is_empty());
        assert_eq!(ord.pending(), 1);
        let confirmed = ord.on_order_decision(id);
        assert_eq!(confirmed.len(), 1);
        assert_eq!(ord.pending(), 0);
    }

    #[test]
    fn decision_before_data_also_works() {
        let mut ord = DqbftOrdering::new();
        let b = block(1, 3, 0);
        assert!(ord.on_order_decision(b.id()).is_empty());
        let confirmed = ord.on_deliver(b);
        assert_eq!(confirmed.len(), 1);
    }

    #[test]
    fn global_order_follows_the_decision_stream() {
        let mut ord = DqbftOrdering::new();
        let a = block(0, 0, 0);
        let b = block(1, 0, 0);
        let c = block(2, 0, 0);
        // Data arrives a, b, c but the ordering instance decides c, a, b.
        assert!(ord.on_deliver(a.clone()).is_empty());
        assert!(ord.on_deliver(b.clone()).is_empty());
        assert!(ord.on_deliver(c.clone()).is_empty());
        let mut confirmed = Vec::new();
        confirmed.extend(ord.on_order_decision(c.id()));
        confirmed.extend(ord.on_order_decision(a.id()));
        confirmed.extend(ord.on_order_decision(b.id()));
        let ids: Vec<BlockId> = confirmed.iter().map(|b| b.id()).collect();
        assert_eq!(ids, vec![c.id(), a.id(), b.id()]);
    }

    #[test]
    fn missing_data_blocks_later_decisions() {
        let mut ord = DqbftOrdering::new();
        let a = block(0, 0, 0);
        let b = block(1, 0, 0);
        // Decisions for a then b, but only b's data is available: nothing can
        // confirm until a's data arrives (FIFO discipline of the decision
        // stream).
        assert!(ord.on_order_decision(a.id()).is_empty());
        assert!(ord.on_order_decision(b.id()).is_empty());
        assert!(ord.on_deliver(b.clone()).is_empty());
        let confirmed = ord.on_deliver(a.clone());
        assert_eq!(confirmed.len(), 2);
        assert_eq!(confirmed[0].id(), a.id());
        assert_eq!(confirmed[1].id(), b.id());
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut ord = DqbftOrdering::new();
        let a = block(0, 0, 0);
        ord.on_deliver(a.clone());
        ord.on_order_decision(a.id());
        assert!(ord.on_deliver(a.clone()).is_empty());
        assert!(ord.on_order_decision(a.id()).is_empty());
        assert_eq!(ord.pending(), 0);
    }
}
