//! The replicated object store: owned accounts and shared contract records.
//!
//! Objects follow the paper's object-centric model (§III-B). Owned objects
//! hold token balances and support incremental (credit) and decremental
//! (debit) operations; shared objects hold a contract value and support
//! assignment / arithmetic updates. The store is purely local state — every
//! replica has its own copy and the protocols above keep the copies
//! consistent.
//!
//! # Sharding
//!
//! The store is split into `m` account shards plus one dedicated shard for
//! shared objects. An owned object lives in the shard selected by
//! [`ObjectKey::shard`] — the same routing function `Partitioner::assign`
//! uses to map accounts to SB instances — so the accounts instance `i`
//! serialises are exactly the objects shard `i` owns. That is what lets the
//! executor hand disjoint `&mut` shards to per-instance workers when it
//! executes independent partial logs in parallel.
//!
//! # Incremental digests
//!
//! Each shard maintains a running accumulator: the wrapping sum of the
//! digests of its entries, adjusted on every write. [`ObjectStore::digest`]
//! folds the `m + 1` accumulators instead of rescanning every object, so the
//! steady-state cost is O(m) rather than O(objects). The accumulator is
//! commutative, which makes the digest independent of the shard count — a
//! single-shard store and a 16-way sharded store holding the same objects
//! produce the same digest ([`ObjectStore::rescan_digest`] pins the
//! equivalence in tests).

use orthrus_types::{Amount, Digest, ObjectKey, OrthrusError, Result, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The state of one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectState {
    /// An owned account holding a balance.
    Owned {
        /// Spendable balance of the account.
        balance: Amount,
    },
    /// A shared contract record holding a value.
    Shared {
        /// Current value of the record.
        value: Value,
    },
}

impl ObjectState {
    /// Deterministic digest of one `(key, state)` entry. The formula is the
    /// per-entry digest the unsharded store used, so state fingerprints stay
    /// comparable across shard layouts.
    fn entry_digest(key: ObjectKey, state: &ObjectState) -> u64 {
        match state {
            ObjectState::Owned { balance } => Digest::of(&(key, 0u8, *balance)).0,
            ObjectState::Shared { value } => Digest::of(&(key, 1u8, *value as u64)).0,
        }
    }
}

/// One shard of the object store: a key-ordered map plus running aggregates
/// (digest accumulator, owned-balance total, mutation count) maintained on
/// every write.
#[derive(Debug, Clone, Default)]
pub struct StoreShard {
    objects: BTreeMap<ObjectKey, ObjectState>,
    /// Wrapping sum of the entry digests of everything in `objects`.
    acc: u64,
    /// Sum of the owned balances in this shard.
    owned_total: u128,
    /// Number of successful mutating operations (credit / debit / shared
    /// writes) applied to this shard — the per-shard load counter surfaced by
    /// `MeasuredPoint` to quantify shard imbalance under skewed workloads.
    ops: u64,
}

impl StoreShard {
    /// Number of objects in the shard.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Is the shard empty?
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Successful mutating operations applied to this shard so far.
    pub fn op_count(&self) -> u64 {
        self.ops
    }

    /// Does the shard hold this key?
    pub fn contains(&self, key: ObjectKey) -> bool {
        self.objects.contains_key(&key)
    }

    /// Balance of an owned account in this shard (zero if absent).
    pub fn balance(&self, key: ObjectKey) -> Amount {
        match self.objects.get(&key) {
            Some(ObjectState::Owned { balance }) => *balance,
            _ => 0,
        }
    }

    /// Existence and balance in a single tree descent: `Some(balance)` if any
    /// entry sits under `key` (owned balance, or zero for a non-owned entry
    /// — exactly the `(contains, balance)` pair), `None` if absent.
    pub fn account_state(&self, key: ObjectKey) -> Option<Amount> {
        self.objects.get(&key).map(|state| match state {
            ObjectState::Owned { balance } => *balance,
            _ => 0,
        })
    }

    /// Value of a shared object in this shard (zero if absent).
    pub fn shared_value(&self, key: ObjectKey) -> Value {
        match self.objects.get(&key) {
            Some(ObjectState::Shared { value }) => *value,
            _ => 0,
        }
    }

    /// Insert or replace an entry, keeping the aggregates in sync.
    fn put(&mut self, key: ObjectKey, state: ObjectState) {
        if let Some(old) = self.objects.insert(key, state) {
            self.acc = self.acc.wrapping_sub(ObjectState::entry_digest(key, &old));
            if let ObjectState::Owned { balance } = old {
                self.owned_total -= u128::from(balance);
            }
        }
        self.acc = self
            .acc
            .wrapping_add(ObjectState::entry_digest(key, &state));
        if let ObjectState::Owned { balance } = state {
            self.owned_total += u128::from(balance);
        }
    }

    /// Remove an entry, keeping the aggregates in sync.
    fn remove(&mut self, key: ObjectKey) -> Option<ObjectState> {
        let old = self.objects.remove(&key)?;
        self.acc = self.acc.wrapping_sub(ObjectState::entry_digest(key, &old));
        if let ObjectState::Owned { balance } = old {
            self.owned_total -= u128::from(balance);
        }
        Some(old)
    }

    /// Credit an owned account in this shard, creating it if needed. The
    /// caller is responsible for having routed the key here and for the
    /// cross-shard type check (see [`ObjectStore::credit`]); within a shard
    /// only owned entries exist for account keys.
    pub fn credit(&mut self, key: ObjectKey, amount: Amount) {
        let balance = self.balance(key).saturating_add(amount);
        self.put(key, ObjectState::Owned { balance });
        self.ops += 1;
    }

    /// Debit an owned account in this shard. Fails (leaving the shard
    /// unchanged) on insufficient balance or a missing account.
    pub fn debit(&mut self, key: ObjectKey, amount: Amount) -> Result<()> {
        match self.objects.get(&key) {
            Some(ObjectState::Owned { balance }) => {
                let have = *balance;
                if have < amount {
                    return Err(OrthrusError::InsufficientBalance {
                        object: key,
                        have,
                        need: amount,
                    });
                }
                self.put(
                    key,
                    ObjectState::Owned {
                        balance: have - amount,
                    },
                );
                self.ops += 1;
                Ok(())
            }
            Some(ObjectState::Shared { .. }) => Err(OrthrusError::TypeMismatch {
                object: key,
                reason: "debit applied to a shared object".into(),
            }),
            None => Err(OrthrusError::UnknownObject(key)),
        }
    }

    fn write_shared(&mut self, key: ObjectKey, value: Value) {
        self.put(key, ObjectState::Shared { value });
        self.ops += 1;
    }

    /// Apply a coalesced run of `op_count` successful credits/debits against
    /// one account in a single write: the accumulator updates telescope, so
    /// writing only the final balance (and bumping `ops` by the run length)
    /// leaves the shard bit-identical to applying every operation one by
    /// one. Used by the Block-STM commit pass to fold a validated
    /// per-account write run.
    pub(crate) fn apply_owned_run(&mut self, key: ObjectKey, balance: Amount, op_count: u64) {
        self.put(key, ObjectState::Owned { balance });
        self.ops += op_count;
    }

    /// Iterate over the shard's objects in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&ObjectKey, &ObjectState)> {
        self.objects.iter()
    }
}

/// The store of all objects known to a replica: `m` account shards plus a
/// dedicated shard for shared (contract) objects.
///
/// Shards sit behind [`Arc`]s with copy-on-write mutation
/// ([`Arc::make_mut`]), so cloning the store — the basis of checkpoint
/// snapshots and crash-recovery state transfer — costs O(shards) reference
/// bumps instead of a deep copy; a shard's map is only duplicated when the
/// live store next writes to it while a snapshot is still holding the other
/// reference.
#[derive(Debug, Clone)]
pub struct ObjectStore {
    accounts: Vec<Arc<StoreShard>>,
    shared: Arc<StoreShard>,
}

impl Default for ObjectStore {
    fn default() -> Self {
        Self::with_shards(1)
    }
}

impl ObjectStore {
    /// An empty store with a single account shard (the unsharded layout).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty store with `shards` account shards (plus the shared-object
    /// shard).
    pub fn with_shards(shards: u32) -> Self {
        Self {
            accounts: (0..shards.max(1))
                .map(|_| Arc::new(StoreShard::default()))
                .collect(),
            shared: Arc::new(StoreShard::default()),
        }
    }

    /// Number of account shards.
    pub fn num_account_shards(&self) -> u32 {
        self.accounts.len() as u32
    }

    /// Re-split the store into `shards` account shards, re-routing every
    /// owned object. Digests are shard-count independent, so resharding never
    /// changes [`ObjectStore::digest`]. Used when a replica adopts a genesis
    /// store built with the default layout.
    pub fn reshard(&mut self, shards: u32) {
        let shards = shards.max(1);
        if self.accounts.len() == shards as usize {
            return;
        }
        let old = std::mem::take(&mut self.accounts);
        self.accounts = (0..shards)
            .map(|_| Arc::new(StoreShard::default()))
            .collect();
        let mut ops = 0u64;
        for shard in old {
            let shard = Arc::try_unwrap(shard).unwrap_or_else(|arc| (*arc).clone());
            ops += shard.ops;
            for (key, state) in shard.objects {
                Arc::make_mut(&mut self.accounts[key.shard(shards) as usize]).put(key, state);
            }
        }
        // Mutation history cannot be attributed to the new layout; park it on
        // shard 0 so global op totals survive a reshard.
        Arc::make_mut(&mut self.accounts[0]).ops += ops;
    }

    #[inline]
    fn route(&self, key: ObjectKey) -> usize {
        key.shard(self.accounts.len() as u32) as usize
    }

    /// Create (or reset) an owned account with the given initial balance.
    pub fn create_account(&mut self, key: ObjectKey, balance: Amount) {
        // A key has exactly one live entry across the whole store: creating
        // it as an account evicts any shared record under the same key (the
        // unsharded store's `insert` semantics).
        Arc::make_mut(&mut self.shared).remove(key);
        let shard = self.route(key);
        Arc::make_mut(&mut self.accounts[shard]).put(key, ObjectState::Owned { balance });
    }

    /// Create (or reset) a shared object with the given initial value.
    pub fn create_shared(&mut self, key: ObjectKey, value: Value) {
        let shard = self.route(key);
        Arc::make_mut(&mut self.accounts[shard]).remove(key);
        Arc::make_mut(&mut self.shared).put(key, ObjectState::Shared { value });
    }

    /// Number of objects in the store.
    pub fn len(&self) -> usize {
        self.accounts.iter().map(|s| s.len()).sum::<usize>() + self.shared.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The balance of an owned account (zero if the account does not exist
    /// yet — accounts spring into existence on first credit).
    pub fn balance(&self, key: ObjectKey) -> Amount {
        self.accounts[self.route(key)].balance(key)
    }

    /// The value of a shared object (zero if it does not exist yet).
    pub fn shared_value(&self, key: ObjectKey) -> Value {
        self.shared.shared_value(key)
    }

    /// Does the account have at least `amount` available?
    pub fn can_debit(&self, key: ObjectKey, amount: Amount) -> bool {
        self.balance(key) >= amount
    }

    /// Credit `amount` tokens to the owned account `key`, creating it if
    /// needed.
    pub fn credit(&mut self, key: ObjectKey, amount: Amount) -> Result<()> {
        let shard = self.route(key);
        if !self.accounts[shard].contains(key) && self.shared.contains(key) {
            return Err(OrthrusError::TypeMismatch {
                object: key,
                reason: "credit applied to a shared object".into(),
            });
        }
        Arc::make_mut(&mut self.accounts[shard]).credit(key, amount);
        Ok(())
    }

    /// Debit `amount` tokens from the owned account `key`. Fails (leaving the
    /// store unchanged) if the balance is insufficient or the object is not
    /// an account.
    pub fn debit(&mut self, key: ObjectKey, amount: Amount) -> Result<()> {
        let shard = self.route(key);
        if !self.accounts[shard].contains(key) && self.shared.contains(key) {
            return Err(OrthrusError::TypeMismatch {
                object: key,
                reason: "debit applied to a shared object".into(),
            });
        }
        Arc::make_mut(&mut self.accounts[shard]).debit(key, amount)
    }

    /// Assign `value` to the shared object `key`, creating it if needed.
    pub fn set_shared(&mut self, key: ObjectKey, value: Value) -> Result<()> {
        if !self.shared.contains(key) && self.accounts[self.route(key)].contains(key) {
            return Err(OrthrusError::TypeMismatch {
                object: key,
                reason: "contract write applied to an owned account".into(),
            });
        }
        Arc::make_mut(&mut self.shared).write_shared(key, value);
        Ok(())
    }

    /// Add `delta` to the shared object `key`, creating it if needed.
    pub fn add_shared(&mut self, key: ObjectKey, delta: Value) -> Result<()> {
        if !self.shared.contains(key) && self.accounts[self.route(key)].contains(key) {
            return Err(OrthrusError::TypeMismatch {
                object: key,
                reason: "contract update applied to an owned account".into(),
            });
        }
        let value = self.shared.shared_value(key).saturating_add(delta);
        Arc::make_mut(&mut self.shared).write_shared(key, value);
        Ok(())
    }

    /// Sum of all account balances (used by conservation-of-supply checks;
    /// escrowed amounts are tracked separately by the escrow log). O(m):
    /// folds the per-shard running totals.
    pub fn total_balance(&self) -> u128 {
        self.accounts.iter().map(|s| s.owned_total).sum()
    }

    /// Deterministic digest of the full store contents, used to compare
    /// replica states (the paper's safety property: replicas in the same
    /// state have consistent values for all objects).
    ///
    /// O(m): folds the per-shard accumulators maintained on every write. The
    /// commutative accumulator makes the digest independent of the shard
    /// layout, so sharded and unsharded replicas of the same state agree.
    pub fn digest(&self) -> Digest {
        let mut acc = self.shared.acc;
        let mut len = self.shared.len() as u64;
        for shard in &self.accounts {
            acc = acc.wrapping_add(shard.acc);
            len += shard.len() as u64;
        }
        Digest::of(&(acc, len))
    }

    /// Recompute [`ObjectStore::digest`] from scratch by walking every
    /// object. Used by tests and benches to pin the incremental accumulator
    /// against a full rescan.
    pub fn rescan_digest(&self) -> Digest {
        let mut acc = 0u64;
        let mut len = 0u64;
        for (key, state) in self.iter() {
            acc = acc.wrapping_add(ObjectState::entry_digest(*key, state));
            len += 1;
        }
        Digest::of(&(acc, len))
    }

    /// Iterate over all objects, account shards first (in shard order, keys
    /// ordered within a shard), then the shared-object shard.
    pub fn iter(&self) -> impl Iterator<Item = (&ObjectKey, &ObjectState)> {
        self.accounts
            .iter()
            .flat_map(|s| s.iter())
            .chain(self.shared.iter())
    }

    /// Per-shard object counts: one entry per account shard, then the
    /// shared-object shard last.
    pub fn shard_object_counts(&self) -> Vec<u64> {
        self.accounts
            .iter()
            .map(|s| s.len() as u64)
            .chain(std::iter::once(self.shared.len() as u64))
            .collect()
    }

    /// Per-shard mutation counts (successful credits/debits/shared writes):
    /// one entry per account shard, then the shared-object shard last.
    pub fn shard_op_counts(&self) -> Vec<u64> {
        self.accounts
            .iter()
            .map(|s| s.op_count())
            .chain(std::iter::once(self.shared.op_count()))
            .collect()
    }

    /// Read access to one account shard (the executor's speculative readers
    /// index shards directly during the Block-STM wave).
    pub fn account_shard(&self, shard: usize) -> &StoreShard {
        &self.accounts[shard]
    }

    /// Read access to the shared-object shard.
    pub fn shared_shard(&self) -> &StoreShard {
        &self.shared
    }

    /// Split the store into its mutable account shards and the (read-only)
    /// shared shard, for the executor's parallel plog workers. Unshares any
    /// shard still referenced by a snapshot (copy-on-write), so in-flight
    /// state transfers never observe the workers' writes.
    pub fn split_shards_mut(&mut self) -> (Vec<&mut StoreShard>, &StoreShard) {
        (
            self.accounts.iter_mut().map(Arc::make_mut).collect(),
            &self.shared,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(k: u64) -> ObjectKey {
        ObjectKey::new(k)
    }

    #[test]
    fn accounts_credit_and_debit() {
        let mut store = ObjectStore::new();
        store.create_account(key(1), 100);
        assert_eq!(store.balance(key(1)), 100);
        store.credit(key(1), 50).unwrap();
        assert_eq!(store.balance(key(1)), 150);
        store.debit(key(1), 120).unwrap();
        assert_eq!(store.balance(key(1)), 30);
        assert!(store.debit(key(1), 31).is_err());
        assert_eq!(store.balance(key(1)), 30);
    }

    #[test]
    fn credits_create_accounts_on_demand() {
        let mut store = ObjectStore::new();
        store.credit(key(7), 5).unwrap();
        assert_eq!(store.balance(key(7)), 5);
        assert!(store.can_debit(key(7), 5));
        assert!(!store.can_debit(key(7), 6));
    }

    #[test]
    fn debit_of_unknown_account_fails() {
        let mut store = ObjectStore::new();
        assert!(store.debit(key(9), 1).is_err());
        assert_eq!(store.balance(key(9)), 0);
    }

    #[test]
    fn overdraft_reports_insufficient_balance() {
        let mut store = ObjectStore::new();
        store.create_account(key(1), 10);
        assert_eq!(
            store.debit(key(1), 11),
            Err(OrthrusError::InsufficientBalance {
                object: key(1),
                have: 10,
                need: 11,
            })
        );
        assert_eq!(store.balance(key(1)), 10);
    }

    #[test]
    fn shared_objects() {
        let mut store = ObjectStore::new();
        store.set_shared(key(100), 42).unwrap();
        assert_eq!(store.shared_value(key(100)), 42);
        store.add_shared(key(100), -2).unwrap();
        assert_eq!(store.shared_value(key(100)), 40);
        store.add_shared(key(101), 7).unwrap();
        assert_eq!(store.shared_value(key(101)), 7);
    }

    #[test]
    fn type_mismatches_are_rejected() {
        let mut store = ObjectStore::new();
        store.create_account(key(1), 10);
        store.create_shared(key(2), 0);
        assert!(store.set_shared(key(1), 5).is_err());
        assert!(store.add_shared(key(1), 5).is_err());
        assert!(store.credit(key(2), 5).is_err());
        assert!(store.debit(key(2), 5).is_err());
    }

    #[test]
    fn type_mismatches_are_rejected_on_every_shard_layout() {
        for shards in [1u32, 4, 16] {
            let mut store = ObjectStore::with_shards(shards);
            store.create_account(key(1), 10);
            store.create_shared(key(2), 0);
            assert!(store.set_shared(key(1), 5).is_err());
            assert!(store.add_shared(key(1), 5).is_err());
            assert!(store.credit(key(2), 5).is_err());
            assert!(store.debit(key(2), 5).is_err());
        }
    }

    #[test]
    fn recreation_swaps_the_object_type() {
        let mut store = ObjectStore::with_shards(4);
        store.create_account(key(5), 10);
        store.create_shared(key(5), 3);
        assert_eq!(store.len(), 1);
        assert_eq!(store.shared_value(key(5)), 3);
        assert_eq!(store.balance(key(5)), 0);
        store.create_account(key(5), 7);
        assert_eq!(store.len(), 1);
        assert_eq!(store.balance(key(5)), 7);
        assert_eq!(store.shared_value(key(5)), 0);
        assert_eq!(store.digest(), store.rescan_digest());
    }

    #[test]
    fn digest_reflects_state() {
        let mut a = ObjectStore::new();
        let mut b = ObjectStore::new();
        a.create_account(key(1), 10);
        b.create_account(key(1), 10);
        assert_eq!(a.digest(), b.digest());
        b.credit(key(1), 1).unwrap();
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn digest_is_shard_count_independent() {
        let build = |shards: u32| {
            let mut store = ObjectStore::with_shards(shards);
            for k in 0..200u64 {
                store.create_account(key(k), k * 3);
            }
            for k in 0..20u64 {
                store.create_shared(key(1_000_000 + k), k as i64 - 5);
            }
            store.debit(key(3), 4).unwrap();
            store.credit(key(7), 11).unwrap();
            store.add_shared(key(1_000_001), 9).unwrap();
            store
        };
        let one = build(1);
        let four = build(4);
        let sixteen = build(16);
        assert_eq!(one.digest(), four.digest());
        assert_eq!(four.digest(), sixteen.digest());
        assert_eq!(one.digest(), one.rescan_digest());
        assert_eq!(sixteen.digest(), sixteen.rescan_digest());
        assert_eq!(one.total_balance(), sixteen.total_balance());
    }

    #[test]
    fn reshard_preserves_contents_and_digest() {
        let mut store = ObjectStore::new();
        for k in 0..100u64 {
            store.create_account(key(k), k + 1);
        }
        store.create_shared(key(1 << 40), 12);
        let before = (store.digest(), store.total_balance(), store.len());
        store.reshard(8);
        assert_eq!(store.num_account_shards(), 8);
        assert_eq!((store.digest(), store.total_balance(), store.len()), before);
        assert_eq!(store.balance(key(42)), 43);
        assert_eq!(store.digest(), store.rescan_digest());
    }

    #[test]
    fn total_balance_ignores_shared_objects() {
        let mut store = ObjectStore::new();
        store.create_account(key(1), 10);
        store.create_account(key(2), 5);
        store.create_shared(key(3), 1_000);
        assert_eq!(store.total_balance(), 15);
    }

    #[test]
    fn shard_counters_track_objects_and_ops() {
        let mut store = ObjectStore::with_shards(4);
        for k in 0..40u64 {
            store.create_account(key(k), 100);
        }
        store.create_shared(key(1 << 30), 0);
        let objects = store.shard_object_counts();
        assert_eq!(objects.len(), 5);
        assert_eq!(objects.iter().sum::<u64>(), 41);
        assert_eq!(*objects.last().unwrap(), 1);
        // Creates are not ops; a credit and a shared write are.
        assert_eq!(store.shard_op_counts().iter().sum::<u64>(), 0);
        store.credit(key(1), 1).unwrap();
        store.add_shared(key(1 << 30), 2).unwrap();
        assert_eq!(store.shard_op_counts().iter().sum::<u64>(), 2);
        assert_eq!(*store.shard_op_counts().last().unwrap(), 1);
    }
}
