//! The replicated object store: owned accounts and shared contract records.
//!
//! Objects follow the paper's object-centric model (§III-B). Owned objects
//! hold token balances and support incremental (credit) and decremental
//! (debit) operations; shared objects hold a contract value and support
//! assignment / arithmetic updates. The store is purely local state — every
//! replica has its own copy and the protocols above keep the copies
//! consistent.

use orthrus_types::{Amount, Digest, ObjectKey, OrthrusError, Result, Value};
use std::collections::BTreeMap;

/// The state of one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectState {
    /// An owned account holding a balance.
    Owned {
        /// Spendable balance of the account.
        balance: Amount,
    },
    /// A shared contract record holding a value.
    Shared {
        /// Current value of the record.
        value: Value,
    },
}

/// The store of all objects known to a replica.
#[derive(Debug, Clone, Default)]
pub struct ObjectStore {
    objects: BTreeMap<ObjectKey, ObjectState>,
}

impl ObjectStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create (or reset) an owned account with the given initial balance.
    pub fn create_account(&mut self, key: ObjectKey, balance: Amount) {
        self.objects.insert(key, ObjectState::Owned { balance });
    }

    /// Create (or reset) a shared object with the given initial value.
    pub fn create_shared(&mut self, key: ObjectKey, value: Value) {
        self.objects.insert(key, ObjectState::Shared { value });
    }

    /// Number of objects in the store.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The balance of an owned account (zero if the account does not exist
    /// yet — accounts spring into existence on first credit).
    pub fn balance(&self, key: ObjectKey) -> Amount {
        match self.objects.get(&key) {
            Some(ObjectState::Owned { balance }) => *balance,
            _ => 0,
        }
    }

    /// The value of a shared object (zero if it does not exist yet).
    pub fn shared_value(&self, key: ObjectKey) -> Value {
        match self.objects.get(&key) {
            Some(ObjectState::Shared { value }) => *value,
            _ => 0,
        }
    }

    /// Does the account have at least `amount` available?
    pub fn can_debit(&self, key: ObjectKey, amount: Amount) -> bool {
        self.balance(key) >= amount
    }

    /// Credit `amount` tokens to the owned account `key`, creating it if
    /// needed.
    pub fn credit(&mut self, key: ObjectKey, amount: Amount) -> Result<()> {
        match self
            .objects
            .entry(key)
            .or_insert(ObjectState::Owned { balance: 0 })
        {
            ObjectState::Owned { balance } => {
                *balance = balance.saturating_add(amount);
                Ok(())
            }
            ObjectState::Shared { .. } => Err(OrthrusError::TypeMismatch {
                object: key,
                reason: "credit applied to a shared object".into(),
            }),
        }
    }

    /// Debit `amount` tokens from the owned account `key`. Fails (leaving the
    /// store unchanged) if the balance is insufficient or the object is not
    /// an account.
    pub fn debit(&mut self, key: ObjectKey, amount: Amount) -> Result<()> {
        match self.objects.get_mut(&key) {
            Some(ObjectState::Owned { balance }) => {
                if *balance < amount {
                    return Err(OrthrusError::EscrowFailed {
                        object: key,
                        tx: orthrus_types::TxId::default(),
                    });
                }
                *balance -= amount;
                Ok(())
            }
            Some(ObjectState::Shared { .. }) => Err(OrthrusError::TypeMismatch {
                object: key,
                reason: "debit applied to a shared object".into(),
            }),
            None => Err(OrthrusError::UnknownObject(key)),
        }
    }

    /// Assign `value` to the shared object `key`, creating it if needed.
    pub fn set_shared(&mut self, key: ObjectKey, value: Value) -> Result<()> {
        match self
            .objects
            .entry(key)
            .or_insert(ObjectState::Shared { value: 0 })
        {
            ObjectState::Shared { value: v } => {
                *v = value;
                Ok(())
            }
            ObjectState::Owned { .. } => Err(OrthrusError::TypeMismatch {
                object: key,
                reason: "contract write applied to an owned account".into(),
            }),
        }
    }

    /// Add `delta` to the shared object `key`, creating it if needed.
    pub fn add_shared(&mut self, key: ObjectKey, delta: Value) -> Result<()> {
        match self
            .objects
            .entry(key)
            .or_insert(ObjectState::Shared { value: 0 })
        {
            ObjectState::Shared { value } => {
                *value = value.saturating_add(delta);
                Ok(())
            }
            ObjectState::Owned { .. } => Err(OrthrusError::TypeMismatch {
                object: key,
                reason: "contract update applied to an owned account".into(),
            }),
        }
    }

    /// Sum of all account balances (used by conservation-of-supply checks;
    /// escrowed amounts are tracked separately by the escrow log).
    pub fn total_balance(&self) -> u128 {
        self.objects
            .values()
            .map(|o| match o {
                ObjectState::Owned { balance } => u128::from(*balance),
                ObjectState::Shared { .. } => 0,
            })
            .sum()
    }

    /// Deterministic digest of the full store contents, used to compare
    /// replica states (the paper's safety property: replicas in the same
    /// state have consistent values for all objects).
    pub fn digest(&self) -> Digest {
        let mut digest = Digest::EMPTY;
        for (key, state) in &self.objects {
            let entry = match state {
                ObjectState::Owned { balance } => Digest::of(&(key, 0u8, *balance)),
                ObjectState::Shared { value } => Digest::of(&(key, 1u8, *value as u64)),
            };
            digest = digest.combine(entry);
        }
        digest
    }

    /// Iterate over all objects.
    pub fn iter(&self) -> impl Iterator<Item = (&ObjectKey, &ObjectState)> {
        self.objects.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(k: u64) -> ObjectKey {
        ObjectKey::new(k)
    }

    #[test]
    fn accounts_credit_and_debit() {
        let mut store = ObjectStore::new();
        store.create_account(key(1), 100);
        assert_eq!(store.balance(key(1)), 100);
        store.credit(key(1), 50).unwrap();
        assert_eq!(store.balance(key(1)), 150);
        store.debit(key(1), 120).unwrap();
        assert_eq!(store.balance(key(1)), 30);
        assert!(store.debit(key(1), 31).is_err());
        assert_eq!(store.balance(key(1)), 30);
    }

    #[test]
    fn credits_create_accounts_on_demand() {
        let mut store = ObjectStore::new();
        store.credit(key(7), 5).unwrap();
        assert_eq!(store.balance(key(7)), 5);
        assert!(store.can_debit(key(7), 5));
        assert!(!store.can_debit(key(7), 6));
    }

    #[test]
    fn debit_of_unknown_account_fails() {
        let mut store = ObjectStore::new();
        assert!(store.debit(key(9), 1).is_err());
        assert_eq!(store.balance(key(9)), 0);
    }

    #[test]
    fn shared_objects() {
        let mut store = ObjectStore::new();
        store.set_shared(key(100), 42).unwrap();
        assert_eq!(store.shared_value(key(100)), 42);
        store.add_shared(key(100), -2).unwrap();
        assert_eq!(store.shared_value(key(100)), 40);
        store.add_shared(key(101), 7).unwrap();
        assert_eq!(store.shared_value(key(101)), 7);
    }

    #[test]
    fn type_mismatches_are_rejected() {
        let mut store = ObjectStore::new();
        store.create_account(key(1), 10);
        store.create_shared(key(2), 0);
        assert!(store.set_shared(key(1), 5).is_err());
        assert!(store.add_shared(key(1), 5).is_err());
        assert!(store.credit(key(2), 5).is_err());
        assert!(store.debit(key(2), 5).is_err());
    }

    #[test]
    fn digest_reflects_state() {
        let mut a = ObjectStore::new();
        let mut b = ObjectStore::new();
        a.create_account(key(1), 10);
        b.create_account(key(1), 10);
        assert_eq!(a.digest(), b.digest());
        b.credit(key(1), 1).unwrap();
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn total_balance_ignores_shared_objects() {
        let mut store = ObjectStore::new();
        store.create_account(key(1), 10);
        store.create_account(key(2), 5);
        store.create_shared(key(3), 1_000);
        assert_eq!(store.total_balance(), 15);
    }
}
