//! Multi-version memory for Block-STM optimistic execution.
//!
//! The optimistic engine (`stm_scheduler`) runs every transaction occurrence
//! of a partial-log schedule speculatively and keeps the results here: one
//! [`VersionedWrite`] per occurrence, carrying the incarnation number, the
//! execution's [`ReadTrace`] and its [`WriteSet`]. Nothing in this module
//! touches the real sharded store — the write-sets are folded into the
//! shards only after the serial validation pass has accepted them.
//!
//! # Verdict-based read-sets
//!
//! A classic Block-STM read-set records the raw values read (balances), so
//! any write to a hot key invalidates every later reader. The payment fast
//! path only ever branches on *verdicts* — "is `(object, tx)` escrowed?",
//! "does the balance cover the debit under its condition?", "does the credit
//! cross-type check pass?" — and every amount it writes is a static function
//! of the transaction's own legs. The [`ReadTrace`] therefore records one
//! byte per verdict instead of one balance per read: a speculative execution
//! stays valid as long as its *decisions* match the committed order, even
//! when the balances underneath changed. On hot-account workloads this is
//! the difference between re-executing almost every chained transaction and
//! re-executing almost none (the hot account's balance changes constantly,
//! but "balance covers the debit" rarely flips).
//!
//! # Why trace equality implies write-set equality
//!
//! Every write the fast path performs is `(static key, static amount)` —
//! debits and escrow inserts use the leg's own amount, refunds refund the
//! leg that was escrowed, credits use the payee leg's amount. Which writes
//! happen is decided exclusively by the verdict sequence, plus one verdict
//! that is *invariant across the schedule* and therefore excluded from the
//! trace: the payee credit's cross-type check (`applies = exists || not
//! shared`). The plog path never writes shared objects, and a credit can
//! only flip `exists` on for a key whose `applies` was already true, so the
//! speculative wave and the serial order always agree on it — recording it
//! would add a read per payee leg and never catch a divergence. Two
//! executions of the same `(tx, instance)` with equal traces therefore
//! produce equal write-sets, which is what lets the validation pass accept a
//! speculative result by comparing traces alone.

use crate::executor::TxOutcome;
use crate::store::ObjectStore;
use crate::EscrowLog;
use orthrus_types::{Amount, FxHashMap, FxHashSet, ObjectKey, TxId};

/// One write against an account shard, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreWrite {
    /// Subtract `amount` from `key` (a validated escrow debit; the verdict
    /// that admitted it guarantees it cannot underflow).
    Debit {
        /// Account written.
        key: ObjectKey,
        /// Amount deducted.
        amount: Amount,
    },
    /// Add `amount` to `key` with saturating semantics, creating the account
    /// on first credit (payee credits and abort refunds).
    Credit {
        /// Account written.
        key: ObjectKey,
        /// Amount added.
        amount: Amount,
    },
}

impl StoreWrite {
    /// The account this write touches.
    pub fn key(&self) -> ObjectKey {
        match self {
            StoreWrite::Debit { key, .. } | StoreWrite::Credit { key, .. } => *key,
        }
    }
}

/// One write against an escrow shard, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EscrowWrite {
    /// Record the reservation `(key, tx) → amount`.
    Insert {
        /// Account the reservation locks.
        key: ObjectKey,
        /// Reserving transaction.
        tx: TxId,
        /// Reserved amount.
        amount: Amount,
    },
    /// Drop the reservation `(key, tx)`.
    Remove {
        /// Account the reservation locked.
        key: ObjectKey,
        /// Reserving transaction.
        tx: TxId,
    },
}

impl EscrowWrite {
    /// The account whose shard this write routes to.
    pub fn key(&self) -> ObjectKey {
        match self {
            EscrowWrite::Insert { key, .. } | EscrowWrite::Remove { key, .. } => *key,
        }
    }
}

/// The complete effect of executing one occurrence: ordered store and escrow
/// writes plus the outcome the serial walk would have returned.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteSet {
    /// Account-shard writes, in execution order.
    pub store: Vec<StoreWrite>,
    /// Escrow-shard writes, in execution order.
    pub escrow: Vec<EscrowWrite>,
    /// What `process_plog_tx` would have returned for this occurrence:
    /// `Some` if the transaction was confirmed (or already had an outcome),
    /// `None` while it waits for escrows elsewhere or for global ordering.
    pub result: Option<TxOutcome>,
}

/// The verdict sequence of one execution — the read-set in compressed,
/// value-free form (see the module docs). Equal traces ⇒ equal write-sets.
///
/// Verdicts are two-bit values (0, 1 or 2), so up to 64 of them pack into a
/// single inline `u128` — the common case (a payment records a handful) never
/// allocates, which matters because the validation pass builds one probe
/// trace per occurrence. Executions with more than 64 verdicts (very wide
/// multi-payer contracts) spill to a byte vector. The representation is a
/// pure function of the verdict count, so the derived equality — which
/// treats different variants as unequal — is exact: traces of different
/// lengths differ anyway, and equal-length traces share a variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadTrace(TraceRepr);

#[derive(Debug, Clone, PartialEq, Eq)]
enum TraceRepr {
    /// Up to 64 two-bit verdicts, newest at the high end.
    Packed { len: u8, bits: u128 },
    /// One byte per verdict, used past 64 entries.
    Heap(Vec<u8>),
}

impl Default for ReadTrace {
    fn default() -> Self {
        Self(TraceRepr::Packed { len: 0, bits: 0 })
    }
}

impl ReadTrace {
    /// Append one verdict (must be `0..=2`; two bits are stored).
    #[inline]
    pub fn push(&mut self, verdict: u8) {
        debug_assert!(verdict <= 2, "verdicts are two-bit values");
        match &mut self.0 {
            TraceRepr::Packed { len, bits } if *len < 64 => {
                *bits |= u128::from(verdict & 0b11) << (2 * u32::from(*len));
                *len += 1;
            }
            TraceRepr::Packed { len, bits } => {
                let mut spilled: Vec<u8> = (0..*len)
                    .map(|i| ((*bits >> (2 * u32::from(i))) & 0b11) as u8)
                    .collect();
                spilled.push(verdict);
                self.0 = TraceRepr::Heap(spilled);
            }
            TraceRepr::Heap(bytes) => bytes.push(verdict),
        }
    }

    /// Number of verdicts recorded.
    pub fn len(&self) -> usize {
        match &self.0 {
            TraceRepr::Packed { len, .. } => usize::from(*len),
            TraceRepr::Heap(bytes) => bytes.len(),
        }
    }

    /// Is the trace empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One versioned entry of the multi-version memory: the write-set and read
/// trace produced by incarnation `incarnation` of an occurrence.
#[derive(Debug, Clone)]
pub struct VersionedWrite {
    /// Incarnation number: 0 for the speculative wave, bumped once per
    /// validation-triggered re-execution.
    pub incarnation: u32,
    /// The verdict sequence the execution observed.
    pub trace: ReadTrace,
    /// The writes the execution produced.
    pub set: WriteSet,
}

/// The multi-version memory: the latest [`VersionedWrite`] of every
/// occurrence in the schedule, indexed by schedule position.
///
/// The serial validation pass replaces an entry (bumping its incarnation)
/// whenever the speculative trace disagrees with the committed order; the
/// commit pass then folds the surviving write-sets into the shards.
#[derive(Debug, Default)]
pub struct MVMemory {
    entries: Vec<VersionedWrite>,
}

impl MVMemory {
    /// Build the memory from the speculative wave's results, in schedule
    /// order (everything enters at incarnation 0).
    pub fn from_wave(wave: Vec<(ReadTrace, WriteSet)>) -> Self {
        Self {
            entries: wave
                .into_iter()
                .map(|(trace, set)| VersionedWrite {
                    incarnation: 0,
                    trace,
                    set,
                })
                .collect(),
        }
    }

    /// Number of occurrences tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the memory empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The latest version of occurrence `index`.
    pub fn entry(&self, index: usize) -> &VersionedWrite {
        &self.entries[index]
    }

    /// Replace occurrence `index` with a re-executed version, bumping its
    /// incarnation. Returns the new incarnation number.
    pub fn reexecute(&mut self, index: usize, trace: ReadTrace, set: WriteSet) -> u32 {
        let entry = &mut self.entries[index];
        entry.incarnation += 1;
        entry.trace = trace;
        entry.set = set;
        entry.incarnation
    }

    /// Iterate over the validated entries in schedule order.
    pub fn iter(&self) -> impl Iterator<Item = &VersionedWrite> {
        self.entries.iter()
    }
}

/// The read interface an occurrence execution runs against. The speculative
/// wave reads the frozen committed state ([`CommittedView`]); the validation
/// pass reads the committed state plus every validated write so far
/// ([`OverlayView`]).
pub trait StateView {
    /// Existence and spendable balance of the account under `key` in one
    /// read: `Some(balance)` if the account exists, `None` if absent.
    fn account(&self, key: ObjectKey) -> Option<Amount>;
    /// Does a shared object exist under `key`? (The plog fast path never
    /// writes shared objects, so this read is stable across the schedule.)
    fn shared_contains(&self, key: ObjectKey) -> bool;
    /// Amount currently escrowed under `(key, tx)`, if any (the exact value
    /// an abort refunds).
    fn escrow_amount(&self, key: ObjectKey, tx: TxId) -> Option<Amount>;
    /// Is `(key, tx)` currently escrowed?
    fn escrow_contains(&self, key: ObjectKey, tx: TxId) -> bool {
        self.escrow_amount(key, tx).is_some()
    }
    /// Outcome already recorded for `tx`, if any.
    fn known_outcome(&self, tx: TxId) -> Option<TxOutcome>;
}

/// The committed state at schedule start, frozen: what every incarnation-0
/// execution reads.
pub struct CommittedView<'a> {
    store: &'a ObjectStore,
    elog: &'a EscrowLog,
    outcomes: &'a FxHashMap<TxId, TxOutcome>,
    shards: u32,
}

impl<'a> CommittedView<'a> {
    /// Freeze the executor's current state.
    pub fn new(
        store: &'a ObjectStore,
        elog: &'a EscrowLog,
        outcomes: &'a FxHashMap<TxId, TxOutcome>,
    ) -> Self {
        let shards = store.num_account_shards();
        Self {
            store,
            elog,
            outcomes,
            shards,
        }
    }
}

impl StateView for CommittedView<'_> {
    fn account(&self, key: ObjectKey) -> Option<Amount> {
        self.store
            .account_shard(key.shard(self.shards) as usize)
            .account_state(key)
    }

    fn shared_contains(&self, key: ObjectKey) -> bool {
        self.store.shared_shard().contains(key)
    }

    fn escrow_amount(&self, key: ObjectKey, tx: TxId) -> Option<Amount> {
        // Ids holding no reservation — the dominant case on the payment fast
        // path — short-circuit inside the shard's incremental tx-id index.
        self.elog.amount_of(key, tx)
    }

    fn known_outcome(&self, tx: TxId) -> Option<TxOutcome> {
        self.outcomes.get(&tx).copied()
    }
}

/// The exact serial-order state during validation: the committed base plus
/// the fold of every validated write-set so far. Reads hit the overlay maps
/// first and fall back to the frozen base, so occurrence `k` observes
/// precisely what the serial reference walk would have shown it.
pub struct OverlayView<'a> {
    base: CommittedView<'a>,
    /// Balances of every account written so far (presence ⇒ the account
    /// exists).
    balances: FxHashMap<ObjectKey, Amount>,
    /// Escrow overrides: `Some(amount)` = inserted, `None` = removed.
    /// (Named distinctly from `WriteSet::escrow`, a plain `Vec`, so the
    /// nondet-iter lint's name-based matching can tell them apart.)
    escrow_overlay: FxHashMap<(ObjectKey, TxId), Option<Amount>>,
    /// Outcomes recorded earlier in this schedule.
    outcomes: FxHashMap<TxId, TxOutcome>,
    /// Transactions with *surviving* escrow overrides (reservations left
    /// pending or refunded across the schedule boundary) — together with
    /// `outcomes` this is exactly the set of transaction ids whose reads
    /// could differ from the frozen base.
    escrow_touched: FxHashSet<TxId>,
}

impl<'a> OverlayView<'a> {
    /// Start an overlay with no writes on top of the committed base.
    pub fn new(base: CommittedView<'a>) -> Self {
        Self {
            base,
            balances: FxHashMap::default(),
            escrow_overlay: FxHashMap::default(),
            outcomes: FxHashMap::default(),
            escrow_touched: FxHashSet::default(),
        }
    }

    /// Fold one validated write-set (of transaction `tx`) into the overlay.
    pub fn apply(&mut self, tx: TxId, set: &WriteSet) {
        let Self { base, balances, .. } = self;
        for write in &set.store {
            match *write {
                StoreWrite::Debit { key, amount } => match balances.entry(key) {
                    std::collections::hash_map::Entry::Occupied(mut entry) => {
                        *entry.get_mut() -= amount;
                    }
                    std::collections::hash_map::Entry::Vacant(entry) => {
                        entry.insert(base.account(key).unwrap_or(0) - amount);
                    }
                },
                StoreWrite::Credit { key, amount } => match balances.entry(key) {
                    std::collections::hash_map::Entry::Occupied(mut entry) => {
                        let balance = entry.get_mut();
                        *balance = balance.saturating_add(amount);
                    }
                    std::collections::hash_map::Entry::Vacant(entry) => {
                        entry.insert(base.account(key).unwrap_or(0).saturating_add(amount));
                    }
                },
            }
        }
        // The outcome (recorded below) shields `tx`'s escrow reads: entries
        // under `(key, tx)` are only ever read by `tx` itself, which
        // short-circuits on the recorded outcome first. So a reservation
        // both taken and dropped inside a concluded write-set is invisible
        // to the rest of the schedule and needs no overlay entry; only
        // unmatched removes (pre-schedule reservations being refunded) and
        // unmatched inserts must land. On payment-heavy schedules this
        // skips the escrow bookkeeping entirely, allocation-free.
        if set.result.is_some() && set.escrow.len() <= 64 {
            let mut cancelled: u64 = 0;
            for (at, write) in set.escrow.iter().enumerate() {
                if let EscrowWrite::Remove { key, .. } = write {
                    for earlier in (0..at).rev() {
                        if cancelled & (1 << earlier) == 0 {
                            if let EscrowWrite::Insert { key: taken, .. } = set.escrow[earlier] {
                                if taken == *key {
                                    cancelled |= (1 << earlier) | (1 << at);
                                    break;
                                }
                            }
                        }
                    }
                }
            }
            for (at, write) in set.escrow.iter().enumerate() {
                if cancelled & (1 << at) == 0 {
                    self.record_escrow(write);
                    self.escrow_touched.insert(tx);
                }
            }
        } else if !set.escrow.is_empty() {
            for write in &set.escrow {
                self.record_escrow(write);
            }
            self.escrow_touched.insert(tx);
        }
        if let Some(outcome) = set.result {
            self.outcomes.entry(tx).or_insert(outcome);
        }
    }

    fn record_escrow(&mut self, write: &EscrowWrite) {
        match *write {
            EscrowWrite::Insert { key, tx, amount } => {
                self.escrow_overlay.insert((key, tx), Some(amount));
            }
            EscrowWrite::Remove { key, tx } => {
                self.escrow_overlay.insert((key, tx), None);
            }
        }
    }

    /// Has the account under `key` been written during this schedule? The
    /// keys of the balance overlay are exactly the dirty set the validation
    /// pass needs — no separate bookkeeping required.
    pub fn balance_written(&self, key: ObjectKey) -> bool {
        self.balances.contains_key(&key)
    }

    /// Could `tx`'s own reads (its recorded outcome, its escrow entries)
    /// differ from the frozen base? True once the schedule recorded an
    /// outcome or a surviving escrow override for it.
    pub fn tx_touched(&self, tx: TxId) -> bool {
        self.outcomes.contains_key(&tx) || self.escrow_touched.contains(&tx)
    }

    /// Final balance of an account that received at least one write during
    /// the schedule (used by the commit pass's coalesced per-key fold).
    pub fn final_balance(&self, key: ObjectKey) -> Amount {
        self.balances[&key]
    }

    /// Consume the overlay, returning the final balance of every account
    /// written during the schedule — the commit pass's coalesced targets.
    pub fn into_balances(self) -> FxHashMap<ObjectKey, Amount> {
        self.balances
    }
}

impl StateView for OverlayView<'_> {
    fn account(&self, key: ObjectKey) -> Option<Amount> {
        // A written balance implies the account exists (debits require
        // existence, credits create).
        match self.balances.get(&key) {
            Some(balance) => Some(*balance),
            None => self.base.account(key),
        }
    }

    fn shared_contains(&self, key: ObjectKey) -> bool {
        self.base.shared_contains(key)
    }

    fn escrow_amount(&self, key: ObjectKey, tx: TxId) -> Option<Amount> {
        match self.escrow_overlay.get(&(key, tx)) {
            Some(entry) => *entry,
            None => self.base.escrow_amount(key, tx),
        }
    }

    fn known_outcome(&self, tx: TxId) -> Option<TxOutcome> {
        self.outcomes
            .get(&tx)
            .copied()
            .or_else(|| self.base.known_outcome(tx))
    }
}
