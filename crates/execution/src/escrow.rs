//! The escrow mechanism (paper §V-C, Algorithm 2).
//!
//! Orthrus uses escrow for two purposes:
//!
//! * **Atomicity of multi-payer payments** (Challenge-I): every payer leg is
//!   escrowed in its own instance; only when *all* legs have escrowed does
//!   the transaction commit, otherwise every reservation is refunded.
//! * **Non-blocking interaction with contract transactions** (Challenge-II):
//!   a pending contract transaction escrows its payers' funds immediately, so
//!   later payments by the same payer are evaluated as if the contract's
//!   debit had already happened and never wait for global ordering.
//!
//! An escrow reservation deducts the amount from the payer's spendable
//! balance and records `(object, tx) → amount` in the escrow log (`elog`).
//! Committing drops the reservation (the funds are gone for good); aborting
//! refunds it.
//!
//! # Sharding
//!
//! Reservations are split across shards with the same routing function as
//! the object store ([`ObjectKey::shard`]): the reservation for a payer leg
//! lives next to the account it locks. Commit and abort walk the
//! transaction's payer legs and remove exactly those reservations — O(legs)
//! instead of the former O(outstanding-entries) retain scan, which matters
//! when thousands of contract escrows sit waiting for global ordering while
//! the payment fast path keeps committing.

use crate::store::ObjectStore;
use orthrus_types::{Amount, FxHashMap, ObjectKey, ObjectOp, Operation, Transaction, TxId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One shard of the escrow log: the outstanding reservations whose account
/// keys route to this shard, plus a running total.
#[derive(Debug, Clone, Default)]
pub struct EscrowShard {
    entries: BTreeMap<(ObjectKey, TxId), Amount>,
    reserved: u128,
    /// Reservation count per transaction id, maintained incrementally so
    /// membership probes for ids holding nothing — the dominant case on the
    /// payment fast path, where fresh transactions probe their own id
    /// against a log full of pending contracts — answer with one hash
    /// lookup instead of a tree descent.
    tx_counts: FxHashMap<TxId, u32>,
}

impl EscrowShard {
    /// Number of outstanding reservations in this shard.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the shard empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Is `(object, tx)` reserved in this shard?
    pub fn contains(&self, object: ObjectKey, tx: TxId) -> bool {
        self.tx_counts.contains_key(&tx) && self.entries.contains_key(&(object, tx))
    }

    /// Record a reservation. Overwriting an existing `(object, tx)` entry
    /// replaces its amount in the running total as well.
    pub fn insert(&mut self, object: ObjectKey, tx: TxId, amount: Amount) {
        if let Some(old) = self.entries.insert((object, tx), amount) {
            self.reserved -= u128::from(old);
        } else {
            *self.tx_counts.entry(tx).or_insert(0) += 1;
        }
        self.reserved += u128::from(amount);
    }

    /// Drop a reservation, returning its amount if it existed.
    pub fn remove(&mut self, object: ObjectKey, tx: TxId) -> Option<Amount> {
        let amount = self.entries.remove(&(object, tx))?;
        self.reserved -= u128::from(amount);
        match self.tx_counts.get_mut(&tx) {
            Some(count) if *count > 1 => *count -= 1,
            _ => {
                self.tx_counts.remove(&tx);
            }
        }
        Some(amount)
    }

    /// Total amount reserved in this shard.
    pub fn total_reserved(&self) -> u128 {
        self.reserved
    }

    /// Amount reserved under `(object, tx)`, if that reservation exists.
    pub fn amount_of(&self, object: ObjectKey, tx: TxId) -> Option<Amount> {
        if !self.tx_counts.contains_key(&tx) {
            return None;
        }
        self.entries.get(&(object, tx)).copied()
    }

    /// Total amount reserved against one account in this shard.
    fn reserved_for(&self, object: ObjectKey) -> Amount {
        self.entries
            .range((object, TxId::default())..)
            .take_while(|((key, _), _)| *key == object)
            .map(|(_, amount)| *amount)
            .sum()
    }
}

/// The escrow log (`elog`): outstanding reservations, sharded by account.
///
/// Like the object store, shards sit behind [`Arc`]s with copy-on-write
/// mutation so snapshot clones cost O(shards).
#[derive(Debug, Clone)]
pub struct EscrowLog {
    shards: Vec<Arc<EscrowShard>>,
}

impl Default for EscrowLog {
    fn default() -> Self {
        Self::with_shards(1)
    }
}

impl EscrowLog {
    /// An empty escrow log with a single shard.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty escrow log with `shards` shards (matched to the object
    /// store's account-shard count by the executor).
    pub fn with_shards(shards: u32) -> Self {
        Self {
            shards: (0..shards.max(1))
                .map(|_| Arc::new(EscrowShard::default()))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> u32 {
        self.shards.len() as u32
    }

    #[inline]
    fn route(&self, key: ObjectKey) -> usize {
        key.shard(self.shards.len() as u32) as usize
    }

    /// Read access to one shard (shard `i` of the log pairs with account
    /// shard `i` of the store).
    pub fn shard(&self, shard: usize) -> &EscrowShard {
        &self.shards[shard]
    }

    /// Mutable access to every shard, for the executor's parallel plog
    /// workers. Unshares shards still referenced by snapshots
    /// (copy-on-write).
    pub fn shards_mut(&mut self) -> Vec<&mut EscrowShard> {
        self.shards.iter_mut().map(Arc::make_mut).collect()
    }

    /// Number of outstanding reservations.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Is `(object, tx)` currently escrowed?
    pub fn contains(&self, object: ObjectKey, tx: TxId) -> bool {
        self.shards[self.route(object)].contains(object, tx)
    }

    /// Total amount currently reserved across all transactions (used by
    /// supply-conservation checks). O(shards): folds the running totals.
    pub fn total_reserved(&self) -> u128 {
        self.shards.iter().map(|s| s.total_reserved()).sum()
    }

    /// Total amount currently reserved against a specific account.
    pub fn reserved_for(&self, object: ObjectKey) -> Amount {
        self.shards[self.route(object)].reserved_for(object)
    }

    /// Amount reserved under `(object, tx)`, if that reservation exists.
    pub fn amount_of(&self, object: ObjectKey, tx: TxId) -> Option<Amount> {
        self.shards[self.route(object)].amount_of(object, tx)
    }

    /// Attempt to escrow the owned-decrement leg `leg` of transaction `tx`
    /// (Algorithm 2, `escrow`): apply the debit speculatively; if the
    /// object's condition holds, keep the deduction and record the
    /// reservation. Returns whether the escrow succeeded. Escrowing the same
    /// `(object, tx)` pair twice is idempotent.
    pub fn escrow(&mut self, store: &mut ObjectStore, leg: &ObjectOp, tx: TxId) -> bool {
        if !leg.is_owned_decrement() {
            return false;
        }
        if self.contains(leg.key, tx) {
            return true;
        }
        let amount = match leg.op {
            Operation::Debit(a) => a,
            _ => return false,
        };
        let balance_after = i128::from(store.balance(leg.key)) - i128::from(amount);
        if !leg.condition.allows_balance(balance_after) {
            return false;
        }
        if store.debit(leg.key, amount).is_err() {
            return false;
        }
        let shard = self.route(leg.key);
        Arc::make_mut(&mut self.shards[shard]).insert(leg.key, tx, amount);
        true
    }

    /// Algorithm 2, `allEscrowed`: have all owned-decrement legs of `tx` been
    /// escrowed?
    pub fn all_escrowed(&self, tx: &Transaction) -> bool {
        tx.ops
            .iter()
            .filter(|leg| leg.is_owned_decrement())
            .all(|leg| self.contains(leg.key, tx.id))
    }

    /// Algorithm 2, `commitEscrow`: drop every reservation of `tx`. The
    /// deducted funds become permanently spent. Reservations of a
    /// transaction exist only under its own payer-leg keys, so walking the
    /// legs removes exactly the reservations the old full-log retain did.
    pub fn commit(&mut self, tx: &Transaction) {
        for leg in tx.ops.iter().filter(|leg| leg.is_owned_decrement()) {
            let shard = self.route(leg.key);
            if self.shards[shard].contains(leg.key, tx.id) {
                Arc::make_mut(&mut self.shards[shard]).remove(leg.key, tx.id);
            }
        }
    }

    /// Algorithm 2, `abortEscrow`: refund and drop every reservation of `tx`.
    pub fn abort(&mut self, store: &mut ObjectStore, tx: &Transaction) {
        for leg in tx.ops.iter().filter(|leg| leg.is_owned_decrement()) {
            let shard = self.route(leg.key);
            if !self.shards[shard].contains(leg.key, tx.id) {
                continue;
            }
            if let Some(amount) = Arc::make_mut(&mut self.shards[shard]).remove(leg.key, tx.id) {
                // Refunding cannot fail: the account existed when the escrow
                // was taken and credits never fail on owned objects.
                let _ = store.credit(leg.key, amount);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_types::{ClientId, Transaction, TxId};

    fn key(k: u64) -> ObjectKey {
        ObjectKey::new(k)
    }
    fn txid(i: u64) -> TxId {
        TxId::new(ClientId::new(1), i)
    }

    fn setup() -> (ObjectStore, EscrowLog) {
        let mut store = ObjectStore::new();
        store.create_account(key(1), 100);
        store.create_account(key(2), 50);
        (store, EscrowLog::new())
    }

    #[test]
    fn successful_escrow_reserves_funds() {
        let (mut store, mut elog) = setup();
        let leg = ObjectOp::debit(key(1), 30);
        assert!(elog.escrow(&mut store, &leg, txid(0)));
        assert_eq!(store.balance(key(1)), 70);
        assert!(elog.contains(key(1), txid(0)));
        assert_eq!(elog.reserved_for(key(1)), 30);
        assert_eq!(elog.total_reserved(), 30);
    }

    #[test]
    fn escrow_is_idempotent_per_object_and_tx() {
        let (mut store, mut elog) = setup();
        let leg = ObjectOp::debit(key(1), 30);
        assert!(elog.escrow(&mut store, &leg, txid(0)));
        assert!(elog.escrow(&mut store, &leg, txid(0)));
        assert_eq!(store.balance(key(1)), 70);
        assert_eq!(elog.len(), 1);
    }

    #[test]
    fn insufficient_balance_fails_and_leaves_state_untouched() {
        let (mut store, mut elog) = setup();
        let leg = ObjectOp::debit(key(2), 51);
        assert!(!elog.escrow(&mut store, &leg, txid(0)));
        assert_eq!(store.balance(key(2)), 50);
        assert!(elog.is_empty());
    }

    #[test]
    fn non_decrement_legs_cannot_be_escrowed() {
        let (mut store, mut elog) = setup();
        assert!(!elog.escrow(&mut store, &ObjectOp::credit(key(1), 5), txid(0)));
        assert!(!elog.escrow(&mut store, &ObjectOp::set_shared(key(9), 1), txid(0)));
        assert!(elog.is_empty());
    }

    #[test]
    fn commit_consumes_the_reservation() {
        let (mut store, mut elog) = setup();
        let tx = Transaction::payment(txid(0), ClientId::new(1), ClientId::new(2), 30);
        let leg = ObjectOp::debit(key(1), 30);
        elog.escrow(&mut store, &leg, tx.id);
        assert!(elog.all_escrowed(&tx));
        elog.commit(&tx);
        assert!(elog.is_empty());
        assert_eq!(elog.total_reserved(), 0);
        // Funds stay deducted after a commit.
        assert_eq!(store.balance(key(1)), 70);
    }

    #[test]
    fn abort_refunds_every_leg() {
        let (mut store, mut elog) = setup();
        let tx = Transaction::multi_payment(
            txid(0),
            &[(ClientId::new(1), 10), (ClientId::new(2), 20)],
            &[(ClientId::new(3), 30)],
        );
        for leg in tx.ops.iter().filter(|l| l.is_owned_decrement()) {
            assert!(elog.escrow(&mut store, leg, tx.id));
        }
        assert!(elog.all_escrowed(&tx));
        elog.abort(&mut store, &tx);
        assert!(elog.is_empty());
        assert_eq!(store.balance(key(1)), 100);
        assert_eq!(store.balance(key(2)), 50);
    }

    #[test]
    fn all_escrowed_detects_missing_legs() {
        let (mut store, mut elog) = setup();
        let tx = Transaction::multi_payment(
            txid(0),
            &[(ClientId::new(1), 10), (ClientId::new(2), 20)],
            &[(ClientId::new(3), 30)],
        );
        let first_leg = tx.ops.iter().find(|l| l.is_owned_decrement()).unwrap();
        elog.escrow(&mut store, first_leg, tx.id);
        assert!(!elog.all_escrowed(&tx));
    }

    #[test]
    fn shard_insert_overwrite_replaces_reserved_total() {
        let mut log = EscrowLog::with_shards(2);
        let mut shards = log.shards_mut();
        let shard = &mut *shards[0];
        shard.insert(key(1), txid(0), 5);
        shard.insert(key(1), txid(0), 10);
        assert_eq!(shard.total_reserved(), 10);
        assert_eq!(shard.remove(key(1), txid(0)), Some(10));
        assert_eq!(shard.total_reserved(), 0);
    }

    #[test]
    fn sharded_log_matches_single_shard_accounting() {
        let mut single = EscrowLog::with_shards(1);
        let mut sharded = EscrowLog::with_shards(8);
        let mut store_a = ObjectStore::new();
        let mut store_b = ObjectStore::with_shards(8);
        for k in 1..=16u64 {
            store_a.create_account(key(k), 1_000);
            store_b.create_account(key(k), 1_000);
        }
        for i in 0..40u64 {
            let payer = ClientId::new(1 + (i % 16));
            let tx = Transaction::payment(txid(i), payer, ClientId::new(99), 5 + i);
            let leg = ObjectOp::debit(ObjectKey::account_of(payer), 5 + i);
            assert_eq!(
                single.escrow(&mut store_a, &leg, tx.id),
                sharded.escrow(&mut store_b, &leg, tx.id)
            );
            if i % 3 == 0 {
                single.commit(&tx);
                sharded.commit(&tx);
            } else if i % 3 == 1 {
                single.abort(&mut store_a, &tx);
                sharded.abort(&mut store_b, &tx);
            }
            assert_eq!(single.len(), sharded.len());
            assert_eq!(single.total_reserved(), sharded.total_reserved());
            assert_eq!(store_a.digest(), store_b.digest());
        }
    }

    /// Conservation of supply: spendable balances plus escrow reservations
    /// stay constant under any sequence of escrow / abort operations, and
    /// only decrease by committed amounts after commits. (Seeded-loop
    /// replacement for the former property-based test.)
    #[test]
    fn supply_is_conserved_under_random_escrow_sequences() {
        use orthrus_types::rng::{Rng, StdRng};
        for seed in 0u64..100 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut store = ObjectStore::new();
            store.create_account(key(1), 500);
            store.create_account(key(2), 500);
            let mut elog = EscrowLog::new();
            let initial: u128 = 1_000;
            let mut committed: u128 = 0;
            let mut live_txs: Vec<Transaction> = Vec::new();

            let steps = rng.gen_range(1usize..60);
            for i in 0..steps {
                let action: u64 = rng.gen_range(0..3);
                let account: u64 = rng.gen_range(1..3);
                let amount: u64 = rng.gen_range(1..60);
                match action {
                    0 => {
                        // Escrow a fresh single-payer payment.
                        let payer = ClientId::new(account);
                        let tx =
                            Transaction::payment(txid(i as u64), payer, ClientId::new(3), amount);
                        let leg = ObjectOp::debit(ObjectKey::account_of(payer), amount);
                        if elog.escrow(&mut store, &leg, tx.id) {
                            live_txs.push(tx);
                        }
                    }
                    1 => {
                        // Abort the oldest live transaction.
                        if !live_txs.is_empty() {
                            let tx = live_txs.remove(0);
                            elog.abort(&mut store, &tx);
                        }
                    }
                    _ => {
                        // Commit the oldest live transaction (without applying
                        // payee credits, to isolate the escrow accounting).
                        if !live_txs.is_empty() {
                            let tx = live_txs.remove(0);
                            committed += u128::from(tx.total_debit());
                            elog.commit(&tx);
                        }
                    }
                }
                let held = store.total_balance() + elog.total_reserved();
                assert_eq!(held + committed, initial, "seed {seed} step {i}");
            }
        }
    }
}
