//! The escrow mechanism (paper §V-C, Algorithm 2).
//!
//! Orthrus uses escrow for two purposes:
//!
//! * **Atomicity of multi-payer payments** (Challenge-I): every payer leg is
//!   escrowed in its own instance; only when *all* legs have escrowed does
//!   the transaction commit, otherwise every reservation is refunded.
//! * **Non-blocking interaction with contract transactions** (Challenge-II):
//!   a pending contract transaction escrows its payers' funds immediately, so
//!   later payments by the same payer are evaluated as if the contract's
//!   debit had already happened and never wait for global ordering.
//!
//! An escrow reservation deducts the amount from the payer's spendable
//! balance and records `(object, tx) → amount` in the escrow log (`elog`).
//! Committing drops the reservation (the funds are gone for good); aborting
//! refunds it.

use crate::store::ObjectStore;
use orthrus_types::{Amount, ObjectKey, ObjectOp, Operation, Transaction, TxId};
use std::collections::BTreeMap;

/// The escrow log (`elog`): outstanding reservations.
#[derive(Debug, Clone, Default)]
pub struct EscrowLog {
    entries: BTreeMap<(ObjectKey, TxId), Amount>,
}

impl EscrowLog {
    /// An empty escrow log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of outstanding reservations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Is `(object, tx)` currently escrowed?
    pub fn contains(&self, object: ObjectKey, tx: TxId) -> bool {
        self.entries.contains_key(&(object, tx))
    }

    /// Total amount currently reserved across all transactions (used by
    /// supply-conservation checks).
    pub fn total_reserved(&self) -> u128 {
        self.entries.values().map(|a| u128::from(*a)).sum()
    }

    /// Total amount currently reserved against a specific account.
    pub fn reserved_for(&self, object: ObjectKey) -> Amount {
        self.entries
            .iter()
            .filter(|((key, _), _)| *key == object)
            .map(|(_, amount)| *amount)
            .sum()
    }

    /// Attempt to escrow the owned-decrement leg `leg` of transaction `tx`
    /// (Algorithm 2, `escrow`): apply the debit speculatively; if the
    /// object's condition holds, keep the deduction and record the
    /// reservation. Returns whether the escrow succeeded. Escrowing the same
    /// `(object, tx)` pair twice is idempotent.
    pub fn escrow(&mut self, store: &mut ObjectStore, leg: &ObjectOp, tx: TxId) -> bool {
        if !leg.is_owned_decrement() {
            return false;
        }
        if self.contains(leg.key, tx) {
            return true;
        }
        let amount = match leg.op {
            Operation::Debit(a) => a,
            _ => return false,
        };
        let balance_after = i128::from(store.balance(leg.key)) - i128::from(amount);
        if !leg.condition.allows_balance(balance_after) {
            return false;
        }
        if store.debit(leg.key, amount).is_err() {
            return false;
        }
        self.entries.insert((leg.key, tx), amount);
        true
    }

    /// Algorithm 2, `allEscrowed`: have all owned-decrement legs of `tx` been
    /// escrowed?
    pub fn all_escrowed(&self, tx: &Transaction) -> bool {
        tx.ops
            .iter()
            .filter(|leg| leg.is_owned_decrement())
            .all(|leg| self.contains(leg.key, tx.id))
    }

    /// Algorithm 2, `commitEscrow`: drop every reservation of `tx`. The
    /// deducted funds become permanently spent.
    pub fn commit(&mut self, tx: &Transaction) {
        self.entries.retain(|(_, id), _| *id != tx.id);
    }

    /// Algorithm 2, `abortEscrow`: refund and drop every reservation of `tx`.
    pub fn abort(&mut self, store: &mut ObjectStore, tx: &Transaction) {
        let refunds: Vec<(ObjectKey, Amount)> = self
            .entries
            .iter()
            .filter(|((_, id), _)| *id == tx.id)
            .map(|((key, _), amount)| (*key, *amount))
            .collect();
        for (key, amount) in refunds {
            // Refunding cannot fail: the account existed when the escrow was
            // taken and credits never fail on owned objects.
            let _ = store.credit(key, amount);
            self.entries.remove(&(key, tx.id));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_types::{ClientId, Transaction, TxId};

    fn key(k: u64) -> ObjectKey {
        ObjectKey::new(k)
    }
    fn txid(i: u64) -> TxId {
        TxId::new(ClientId::new(1), i)
    }

    fn setup() -> (ObjectStore, EscrowLog) {
        let mut store = ObjectStore::new();
        store.create_account(key(1), 100);
        store.create_account(key(2), 50);
        (store, EscrowLog::new())
    }

    #[test]
    fn successful_escrow_reserves_funds() {
        let (mut store, mut elog) = setup();
        let leg = ObjectOp::debit(key(1), 30);
        assert!(elog.escrow(&mut store, &leg, txid(0)));
        assert_eq!(store.balance(key(1)), 70);
        assert!(elog.contains(key(1), txid(0)));
        assert_eq!(elog.reserved_for(key(1)), 30);
        assert_eq!(elog.total_reserved(), 30);
    }

    #[test]
    fn escrow_is_idempotent_per_object_and_tx() {
        let (mut store, mut elog) = setup();
        let leg = ObjectOp::debit(key(1), 30);
        assert!(elog.escrow(&mut store, &leg, txid(0)));
        assert!(elog.escrow(&mut store, &leg, txid(0)));
        assert_eq!(store.balance(key(1)), 70);
        assert_eq!(elog.len(), 1);
    }

    #[test]
    fn insufficient_balance_fails_and_leaves_state_untouched() {
        let (mut store, mut elog) = setup();
        let leg = ObjectOp::debit(key(2), 51);
        assert!(!elog.escrow(&mut store, &leg, txid(0)));
        assert_eq!(store.balance(key(2)), 50);
        assert!(elog.is_empty());
    }

    #[test]
    fn non_decrement_legs_cannot_be_escrowed() {
        let (mut store, mut elog) = setup();
        assert!(!elog.escrow(&mut store, &ObjectOp::credit(key(1), 5), txid(0)));
        assert!(!elog.escrow(&mut store, &ObjectOp::set_shared(key(9), 1), txid(0)));
        assert!(elog.is_empty());
    }

    #[test]
    fn commit_consumes_the_reservation() {
        let (mut store, mut elog) = setup();
        let tx = Transaction::payment(txid(0), ClientId::new(1), ClientId::new(2), 30);
        let leg = ObjectOp::debit(key(1), 30);
        elog.escrow(&mut store, &leg, tx.id);
        assert!(elog.all_escrowed(&tx));
        elog.commit(&tx);
        assert!(elog.is_empty());
        // Funds stay deducted after a commit.
        assert_eq!(store.balance(key(1)), 70);
    }

    #[test]
    fn abort_refunds_every_leg() {
        let (mut store, mut elog) = setup();
        let tx = Transaction::multi_payment(
            txid(0),
            &[(ClientId::new(1), 10), (ClientId::new(2), 20)],
            &[(ClientId::new(3), 30)],
        );
        for leg in tx.ops.iter().filter(|l| l.is_owned_decrement()) {
            assert!(elog.escrow(&mut store, leg, tx.id));
        }
        assert!(elog.all_escrowed(&tx));
        elog.abort(&mut store, &tx);
        assert!(elog.is_empty());
        assert_eq!(store.balance(key(1)), 100);
        assert_eq!(store.balance(key(2)), 50);
    }

    #[test]
    fn all_escrowed_detects_missing_legs() {
        let (mut store, mut elog) = setup();
        let tx = Transaction::multi_payment(
            txid(0),
            &[(ClientId::new(1), 10), (ClientId::new(2), 20)],
            &[(ClientId::new(3), 30)],
        );
        let first_leg = tx.ops.iter().find(|l| l.is_owned_decrement()).unwrap();
        elog.escrow(&mut store, first_leg, tx.id);
        assert!(!elog.all_escrowed(&tx));
    }

    /// Conservation of supply: spendable balances plus escrow reservations
    /// stay constant under any sequence of escrow / abort operations, and
    /// only decrease by committed amounts after commits. (Seeded-loop
    /// replacement for the former property-based test.)
    #[test]
    fn supply_is_conserved_under_random_escrow_sequences() {
        use orthrus_types::rng::{Rng, StdRng};
        for seed in 0u64..100 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut store = ObjectStore::new();
            store.create_account(key(1), 500);
            store.create_account(key(2), 500);
            let mut elog = EscrowLog::new();
            let initial: u128 = 1_000;
            let mut committed: u128 = 0;
            let mut live_txs: Vec<Transaction> = Vec::new();

            let steps = rng.gen_range(1usize..60);
            for i in 0..steps {
                let action: u64 = rng.gen_range(0..3);
                let account: u64 = rng.gen_range(1..3);
                let amount: u64 = rng.gen_range(1..60);
                match action {
                    0 => {
                        // Escrow a fresh single-payer payment.
                        let payer = ClientId::new(account);
                        let tx =
                            Transaction::payment(txid(i as u64), payer, ClientId::new(3), amount);
                        let leg = ObjectOp::debit(ObjectKey::account_of(payer), amount);
                        if elog.escrow(&mut store, &leg, tx.id) {
                            live_txs.push(tx);
                        }
                    }
                    1 => {
                        // Abort the oldest live transaction.
                        if !live_txs.is_empty() {
                            let tx = live_txs.remove(0);
                            elog.abort(&mut store, &tx);
                        }
                    }
                    _ => {
                        // Commit the oldest live transaction (without applying
                        // payee credits, to isolate the escrow accounting).
                        if !live_txs.is_empty() {
                            let tx = live_txs.remove(0);
                            committed += u128::from(tx.total_debit());
                            elog.commit(&tx);
                        }
                    }
                }
                let held = store.total_balance() + elog.total_reserved();
                assert_eq!(held + committed, initial, "seed {seed} step {i}");
            }
        }
    }
}
