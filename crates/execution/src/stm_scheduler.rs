//! The Block-STM optimistic scheduler (`ProtocolConfig::execution_mode =
//! OptimisticStm`).
//!
//! [`Executor::process_plog_schedule_stm`] replaces the demotion scheduler's
//! conflict analysis with optimistic concurrency in three deterministic
//! phases:
//!
//! 1. **Speculative wave** — every transaction occurrence of the schedule
//!    executes once against the *frozen* committed state (incarnation 0), in
//!    parallel on the worker pool. No occurrence is demoted to a serial
//!    lane: hot keys cost nothing here because nobody writes shared state.
//! 2. **Validation** — a serial pass walks the schedule in order,
//!    recomputing each occurrence's [`ReadTrace`] against the exact overlay
//!    state (committed base + every validated write-set so far). A matching
//!    trace proves the speculative write-set is the one the serial reference
//!    walk would have produced (trace equality ⇒ write-set equality, see
//!    `mvmemory`); a mismatch triggers an inline re-execution with a bumped
//!    incarnation, whose result is exact by construction. The re-execution
//!    count is the engine's *abort rate*.
//! 3. **Commit** — the validated write-sets are folded into the real shards
//!    per shard, in parallel: each written account receives *one*
//!    [`StoreShard::apply_owned_run`] at its final overlay balance (the
//!    accumulator updates telescope, so a hot account's k writes cost one
//!    tree touch instead of k), and escrow reservations taken and dropped
//!    within the same schedule cancel before ever touching a shard.
//!    Outcomes are recorded in schedule order, exactly like the serial walk.
//!
//! Determinism: phases 2 and 3 depend only on the schedule order and the
//! committed state — never on thread interleaving — so the final store,
//! escrow log, outcome map, per-shard op counts and digests are bit-identical
//! to the serial reference walk at any thread count. Only the abort rate is
//! a property of the speculation (still deterministic: the wave always reads
//! the same frozen state).

use crate::escrow::EscrowShard;
use crate::executor::{Executor, TxOutcome};
use crate::mvmemory::{
    CommittedView, EscrowWrite, MVMemory, OverlayView, ReadTrace, StateView, StoreWrite, WriteSet,
};
use crate::store::StoreShard;
use orthrus_types::pool::{parallel_for_mut, parallel_map};
use orthrus_types::{
    Amount, FxHashMap, InstanceId, ObjectKey, ObjectOp, Operation, ProfTimer, SharedBlock,
    SharedTx, Transaction, TxId,
};

/// Counters the optimistic engine reports per schedule (aggregated by the
/// bench harness into an abort rate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StmStats {
    /// Transaction occurrences executed speculatively.
    pub occurrences: u64,
    /// Occurrences whose speculative trace failed validation and were
    /// re-executed with a bumped incarnation.
    pub reexecutions: u64,
    /// Wall-clock nanoseconds of the speculative wave — embarrassingly
    /// parallel work (the pool divides it by its effective width).
    pub wave_ns: u64,
    /// Wall-clock nanoseconds of the serial validation pass (which also
    /// groups the validated writes per shard) — the engine's inherently
    /// sequential span.
    pub validate_ns: u64,
    /// Wall-clock nanoseconds of the per-shard commit jobs — parallel
    /// across shards.
    pub commit_ns: u64,
}

impl StmStats {
    /// Fraction of occurrences that needed re-execution.
    pub fn abort_rate(&self) -> f64 {
        if self.occurrences == 0 {
            0.0
        } else {
            self.reexecutions as f64 / self.occurrences as f64
        }
    }

    /// Accumulate another schedule's counters.
    pub fn merge(&mut self, other: StmStats) {
        self.occurrences += other.occurrences;
        self.reexecutions += other.reexecutions;
        self.wave_ns += other.wave_ns;
        self.validate_ns += other.validate_ns;
        self.commit_ns += other.commit_ns;
    }
}

/// Trace byte: escrow of a leg failed (aborting the transaction).
const ESCROW_FAIL: u8 = 0;
/// Trace byte: escrow of a leg succeeded.
const ESCROW_OK: u8 = 1;
/// Trace byte: the leg's reservation already existed (idempotent success).
const ESCROW_HELD: u8 = 2;

/// Where an execution's writes go: the speculative wave and re-executions
/// record them into a [`WriteSet`]; trace-only validation drops them.
trait WriteSink {
    /// Whether this sink keeps writes. Write-only work whose inputs are
    /// schedule-invariant (the payee credit loop, the escrow-drop loop of a
    /// committing payment) is skipped entirely when `false` — a validation
    /// probe cannot observe it through the trace.
    const NEEDS_WRITES: bool;
    fn store(&mut self, write: StoreWrite);
    fn escrow(&mut self, write: EscrowWrite);
}

impl WriteSink for WriteSet {
    const NEEDS_WRITES: bool = true;
    fn store(&mut self, write: StoreWrite) {
        self.store.push(write);
    }
    fn escrow(&mut self, write: EscrowWrite) {
        self.escrow.push(write);
    }
}

/// Sink for validation runs: only the trace matters.
struct NullSink;

impl WriteSink for NullSink {
    const NEEDS_WRITES: bool = false;
    fn store(&mut self, _: StoreWrite) {}
    fn escrow(&mut self, _: EscrowWrite) {}
}

/// The escrow verdict of one owned-decrement leg, replicating
/// `EscrowLog::escrow` exactly: the condition check against the
/// post-debit balance, then `ObjectStore::debit`'s failure cases (cross-type
/// mismatch, missing account, insufficient balance). Returns the amount to
/// debit-and-reserve on success. A missing account fails regardless of the
/// condition (the serial walk evaluates the condition against balance zero
/// and then fails the existence check), so one `account` read decides.
fn escrow_verdict<V: StateView>(view: &V, leg: &ObjectOp) -> Option<Amount> {
    let amount = match leg.op {
        Operation::Debit(a) => a,
        _ => return None,
    };
    let balance = view.account(leg.key)?;
    if !leg
        .condition
        .allows_balance(i128::from(balance) - i128::from(amount))
    {
        return None;
    }
    if balance < amount {
        return None;
    }
    Some(amount)
}

/// Execute one occurrence of `tx` at `instance` against `view`, mirroring
/// [`Executor::process_plog_tx`] decision-for-decision. Writes go to `sink`;
/// the returned trace records every verdict taken (and nothing else — see
/// the `mvmemory` module docs for why that is a sufficient read-set).
fn run_occurrence<V: StateView, S: WriteSink>(
    view: &V,
    tx: &Transaction,
    instance: InstanceId,
    assign: &(dyn Fn(ObjectKey) -> InstanceId + Sync),
    sink: &mut S,
) -> (ReadTrace, Option<TxOutcome>) {
    let mut trace = ReadTrace::default();
    if let Some(existing) = view.known_outcome(tx.id) {
        trace.push(match existing {
            TxOutcome::Committed => 1,
            TxOutcome::Aborted => 2,
        });
        return (trace, Some(existing));
    }
    trace.push(0);

    // Escrow every owned-decrement leg assigned to this instance. `local`
    // tracks reservations taken by this very execution so that in-transaction
    // reads (idempotency, all-escrowed, refunds) see them.
    let mut local: Vec<(ObjectKey, Amount)> = Vec::new();
    let mut failed = false;
    for leg in tx
        .ops
        .iter()
        .filter(|leg| leg.is_owned_decrement() && assign(leg.key) == instance)
    {
        let key = leg.key;
        if local.iter().any(|(k, _)| *k == key) || view.escrow_contains(key, tx.id) {
            trace.push(ESCROW_HELD);
            continue;
        }
        match escrow_verdict(view, leg) {
            Some(amount) => {
                trace.push(ESCROW_OK);
                sink.store(StoreWrite::Debit { key, amount });
                sink.escrow(EscrowWrite::Insert {
                    key,
                    tx: tx.id,
                    amount,
                });
                local.push((key, amount));
            }
            None => {
                trace.push(ESCROW_FAIL);
                failed = true;
                break;
            }
        }
    }

    if failed {
        // `EscrowLog::abort`: walk every owned-decrement leg of the whole
        // transaction (other instances' legs included) and refund each
        // reservation present. Refund credits cannot fail — the account
        // existed when the escrow was taken.
        let mut refunded: Vec<ObjectKey> = Vec::new();
        for leg in tx.ops.iter().filter(|leg| leg.is_owned_decrement()) {
            let key = leg.key;
            let held = if refunded.contains(&key) {
                None
            } else {
                local
                    .iter()
                    .find(|(k, _)| *k == key)
                    .map(|(_, amount)| *amount)
                    .or_else(|| view.escrow_amount(key, tx.id))
            };
            trace.push(u8::from(held.is_some()));
            if let Some(amount) = held {
                sink.escrow(EscrowWrite::Remove { key, tx: tx.id });
                sink.store(StoreWrite::Credit { key, amount });
                refunded.push(key);
            }
        }
        return (trace, Some(TxOutcome::Aborted));
    }

    // Payments commit as soon as every payer leg across all instances is
    // escrowed (`all_escrowed` → `commit` → `apply_credits`); contracts wait
    // for global ordering.
    if tx.is_payment() {
        let all = tx
            .ops
            .iter()
            .filter(|leg| leg.is_owned_decrement())
            .all(|leg| {
                local.iter().any(|(k, _)| *k == leg.key) || view.escrow_contains(leg.key, tx.id)
            });
        trace.push(u8::from(all));
        if all {
            // Write-only from here on: dropping the reservations reads
            // nothing, and the payee credit's `applies` verdict is invariant
            // across the schedule (see the `mvmemory` module docs), so a
            // trace-only probe skips both loops — on hot workloads that is
            // most of the probe's cost.
            if S::NEEDS_WRITES {
                let mut dropped: Vec<ObjectKey> = Vec::new();
                for leg in tx.ops.iter().filter(|leg| leg.is_owned_decrement()) {
                    if !dropped.contains(&leg.key) {
                        sink.escrow(EscrowWrite::Remove {
                            key: leg.key,
                            tx: tx.id,
                        });
                        dropped.push(leg.key);
                    }
                }
                for leg in tx.ops.iter().filter(|leg| leg.is_owned_increment()) {
                    // `ObjectStore::credit`'s cross-type check: a credit whose
                    // key names an existing shared object is silently skipped.
                    let applies = view.account(leg.key).is_some() || !view.shared_contains(leg.key);
                    if applies {
                        sink.store(StoreWrite::Credit {
                            key: leg.key,
                            amount: leg.op.amount(),
                        });
                    }
                }
            }
            return (trace, Some(TxOutcome::Committed));
        }
    }
    (trace, None)
}

/// Full execution: trace plus write-set (wave and re-executions).
fn execute_occurrence<V: StateView>(
    view: &V,
    tx: &Transaction,
    instance: InstanceId,
    assign: &(dyn Fn(ObjectKey) -> InstanceId + Sync),
) -> (ReadTrace, WriteSet) {
    let mut set = WriteSet::default();
    let (trace, result) = run_occurrence(view, tx, instance, assign, &mut set);
    set.result = result;
    (trace, set)
}

/// Trace-only execution: the validation probe (no write-set allocation).
fn trace_occurrence<V: StateView>(
    view: &V,
    tx: &Transaction,
    instance: InstanceId,
    assign: &(dyn Fn(ObjectKey) -> InstanceId + Sync),
) -> ReadTrace {
    run_occurrence(view, tx, instance, assign, &mut NullSink).0
}

/// One shard's slice of the commit pass: coalesced account runs plus netted
/// escrow mutations, applied with exclusive shard access.
struct CommitJob<'a> {
    objects: &'a mut StoreShard,
    escrow: &'a mut EscrowShard,
    /// Written accounts of this shard → number of successful ops coalesced.
    /// Application order across keys is irrelevant: `apply_owned_run` puts
    /// commute (the digest accumulator folds with wrapping adds and the op
    /// counters are sums), so a hash map's arbitrary order stays
    /// bit-identical.
    runs: FxHashMap<ObjectKey, u64>,
    /// Surviving escrow mutations: `Some(amount)` inserts, `None` removes.
    /// Distinct `(key, tx)` entries commute the same way.
    nets: FxHashMap<(ObjectKey, TxId), Option<Amount>>,
    /// Final overlay balance of every written account (all shards).
    balances: &'a FxHashMap<ObjectKey, Amount>,
}

impl CommitJob<'_> {
    fn run(&mut self) {
        // orthrus: allow(nondet-iter): apply_owned_run commutes across keys — wrapping-add digest accumulator plus summed op counters (see the field doc).
        for (&key, &count) in &self.runs {
            self.objects
                .apply_owned_run(key, self.balances[&key], count);
        }
        // orthrus: allow(nondet-iter): distinct (key, tx) escrow entries touch disjoint slots, so application order is immaterial.
        for (&(key, tx), &net) in &self.nets {
            match net {
                Some(amount) => self.escrow.insert(key, tx, amount),
                None => {
                    self.escrow.remove(key, tx);
                }
            }
        }
    }
}

/// Run one plog schedule through the three-phase optimistic engine. Returns
/// the per-occurrence confirmations in schedule order (exactly what the
/// serial reference walk returns) plus the speculation counters.
pub(crate) fn run_schedule(
    executor: &mut Executor,
    schedule: &[(InstanceId, SharedBlock)],
    assign: &(dyn Fn(ObjectKey) -> InstanceId + Sync),
    threads: usize,
) -> (Vec<(TxId, Option<TxOutcome>)>, StmStats) {
    let occurrences: Vec<(InstanceId, &SharedTx)> = schedule
        .iter()
        .flat_map(|(instance, block)| block.txs.iter().map(move |tx| (*instance, tx)))
        .collect();
    let mut stats = StmStats {
        occurrences: occurrences.len() as u64,
        ..StmStats::default()
    };
    if occurrences.is_empty() {
        return (Vec::new(), stats);
    }

    let (mv, final_balances, shard_runs, shard_nets) = {
        let (store, elog, outcomes) = executor.stm_parts();

        // Phase 1 — speculative wave against the frozen committed state.
        let t_wave = ProfTimer::started();
        let view = CommittedView::new(store, elog, outcomes);
        let wave = parallel_map(&occurrences, threads, |(instance, tx)| {
            execute_occurrence(&view, tx, *instance, assign)
        });
        let mut mv = MVMemory::from_wave(wave);
        stats.wave_ns = t_wave.elapsed_ns();
        let t_validate = ProfTimer::started();

        // Phase 2 — serial validation in schedule order against the exact
        // overlay; mismatched traces re-execute inline (incarnation += 1).
        //
        // Most occurrences do not even need the trace probe. A speculative
        // trace can only diverge from the serial order if the overlay differs
        // from the frozen base on something the occurrence *reads*: the
        // balance of an owned-decrement leg (escrow verdicts), an escrow
        // entry of its own transaction id, or its own recorded outcome. Payee
        // reads are immune by construction — the `applies` verdict is
        // `exists || !shared`, payments never write shared objects and a
        // credit-created account only turns `exists` on when `applies` was
        // already true. So for an occurrence whose transaction wrote nothing
        // yet this schedule, it suffices to recompute each dirty
        // decrement-leg's escrow verdict under the overlay and under the
        // frozen base: pairwise-equal verdicts force the execution down the
        // identical path the wave took (every other read is untouched), so
        // trace and write-set are already exact — no probe, no re-execution.
        // A hot account's balance changes constantly, but "balance covers
        // the debit" rarely flips, which is what makes this cheap.
        let frozen_view = CommittedView::new(store, elog, outcomes);
        let mut overlay = OverlayView::new(CommittedView::new(store, elog, outcomes));
        // The commit pass's per-shard work lists are folded right here, in
        // the same sweep that applies each validated write-set to the
        // overlay — a separate grouping pass over all write-sets would
        // re-read every one of them from cold cache on the serial span.
        // Account writes coalesce to one entry per key; escrow insert/remove
        // pairs taken and dropped within this schedule cancel entirely.
        let shards = store.num_account_shards();
        let mut shard_runs: Vec<FxHashMap<ObjectKey, u64>> =
            vec![FxHashMap::default(); shards as usize];
        let mut shard_nets: Vec<FxHashMap<(ObjectKey, TxId), Option<Amount>>> =
            vec![FxHashMap::default(); shards as usize];
        for (index, (instance, tx)) in occurrences.iter().enumerate() {
            let mut conflicted = overlay.tx_touched(tx.id);
            if !conflicted {
                for leg in tx.ops.iter().filter(|leg| leg.is_owned_decrement()) {
                    if overlay.balance_written(leg.key)
                        && escrow_verdict(&overlay, leg) != escrow_verdict(&frozen_view, leg)
                    {
                        conflicted = true;
                        break;
                    }
                }
            }
            if conflicted {
                let probe = trace_occurrence(&overlay, tx, *instance, assign);
                if probe != mv.entry(index).trace {
                    let (trace, set) = execute_occurrence(&overlay, tx, *instance, assign);
                    mv.reexecute(index, trace, set);
                    stats.reexecutions += 1;
                }
            }
            let set = &mv.entry(index).set;
            overlay.apply(tx.id, set);
            for write in &set.store {
                let key = write.key();
                *shard_runs[key.shard(shards) as usize]
                    .entry(key)
                    .or_insert(0) += 1;
            }
            for write in &set.escrow {
                let net = &mut shard_nets[write.key().shard(shards) as usize];
                match *write {
                    EscrowWrite::Insert { key, tx, amount } => {
                        net.insert((key, tx), Some(amount));
                    }
                    EscrowWrite::Remove { key, tx } => match net.remove(&(key, tx)) {
                        // Reservation taken earlier in this same schedule:
                        // the pair nets to nothing.
                        Some(Some(_)) => {}
                        // Pre-schedule reservation: the removal must land.
                        _ => {
                            net.insert((key, tx), None);
                        }
                    },
                }
            }
        }
        stats.validate_ns = t_validate.elapsed_ns();
        (mv, overlay.into_balances(), shard_runs, shard_nets)
    };

    // Phase 3 — commit: apply each shard's coalesced work list with
    // exclusive shard access (parallel across shards).
    let t_commit = ProfTimer::started();
    {
        let (store, elog) = executor.stm_commit_parts();
        let (account_shards, _shared) = store.split_shards_mut();
        let escrow_shards = elog.shards_mut();
        let mut jobs: Vec<CommitJob<'_>> = account_shards
            .into_iter()
            .zip(escrow_shards)
            .zip(shard_runs.into_iter().zip(shard_nets))
            .filter(|(_, (runs, nets))| !runs.is_empty() || !nets.is_empty())
            .map(|((objects, escrow), (runs, nets))| CommitJob {
                objects,
                escrow,
                runs,
                nets,
                balances: &final_balances,
            })
            .collect();
        parallel_for_mut(&mut jobs, threads, |job| job.run());
    }
    stats.commit_ns = t_commit.elapsed_ns();
    if std::env::var_os("ORTHRUS_STM_PROFILE").is_some() {
        eprintln!(
            "stm wave: {:.3}ms validate: {:.3}ms commit: {:.3}ms",
            stats.wave_ns as f64 / 1e6,
            stats.validate_ns as f64 / 1e6,
            stats.commit_ns as f64 / 1e6,
        );
    }

    // Phase 4 — record outcomes in schedule order (idempotent, so repeated
    // occurrences of one transaction bump the counters exactly once).
    let mut out = Vec::with_capacity(occurrences.len());
    for (index, (_, tx)) in occurrences.iter().enumerate() {
        let result = mv.entry(index).set.result;
        if let Some(outcome) = result {
            executor.record(tx.id, outcome);
        }
        out.push((tx.id, result));
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObjectStore;
    use orthrus_types::{
        Block, BlockParams, ClientId, Epoch, Rank, ReplicaId, SeqNum, SystemState, View,
    };
    use std::sync::Arc;

    fn txid(i: u64) -> TxId {
        TxId::new(ClientId::new(7), i)
    }

    fn assign_mod(m: u32) -> impl Fn(ObjectKey) -> InstanceId + Sync {
        move |key: ObjectKey| InstanceId::new((key.value() % u64::from(m)) as u32)
    }

    fn executor_with_accounts(shards: u32, accounts: &[(u64, u64)]) -> Executor {
        let mut store = ObjectStore::with_shards(shards);
        for (key, balance) in accounts {
            store.create_account(ObjectKey::new(*key), *balance);
        }
        Executor::with_store(store)
    }

    fn block_of(instance: InstanceId, txs: Vec<SharedTx>, m: u32) -> SharedBlock {
        let params = BlockParams {
            instance,
            sn: SeqNum::new(0),
            epoch: Epoch::new(0),
            view: View::new(0),
            proposer: ReplicaId::new(instance.value()),
            rank: Rank::new(0),
            state: SystemState::new(m as usize),
        };
        Arc::new(Block::from_shared(params, txs))
    }

    /// One block per instance, txs routed to the payer's instance.
    fn schedule_of(m: u32, txs: &[Transaction]) -> Vec<(InstanceId, SharedBlock)> {
        let assign = assign_mod(m);
        let mut per: Vec<Vec<SharedTx>> = vec![Vec::new(); m as usize];
        for tx in txs {
            let instance = tx
                .ops
                .iter()
                .find(|leg| leg.is_owned_decrement())
                .map(|leg| assign(leg.key))
                .unwrap_or(InstanceId::new(0));
            per[instance.as_usize()].push(Arc::new(tx.clone()));
        }
        per.into_iter()
            .enumerate()
            .filter(|(_, txs)| !txs.is_empty())
            .map(|(i, txs)| {
                let instance = InstanceId::new(i as u32);
                (instance, block_of(instance, txs, m))
            })
            .collect()
    }

    /// The STM engine must land on the exact state, outcomes and counters of
    /// the serial reference walk — including a hot-account chain where every
    /// balance changes but no verdict does (zero re-executions).
    #[test]
    fn hot_account_chain_commits_without_reexecution() {
        let m = 4;
        let txs: Vec<Transaction> = (0..32)
            .map(|i| Transaction::payment(txid(i), ClientId::new(1), ClientId::new(2 + i), 2))
            .collect();

        let mut serial = executor_with_accounts(m, &[(1, 1000)]);
        let mut stm = executor_with_accounts(m, &[(1, 1000)]);
        let schedule = schedule_of(m, &txs);
        let assign = assign_mod(m);

        let mut expected = Vec::new();
        for (instance, block) in &schedule {
            for tx in &block.txs {
                expected.push((tx.id, serial.process_plog_tx(tx, *instance, &assign)));
            }
        }
        let (got, stats) = run_schedule(&mut stm, &schedule, &assign, 4);

        assert_eq!(got, expected);
        assert_eq!(stats.occurrences, 32);
        assert_eq!(
            stats.reexecutions, 0,
            "verdict traces are balance-free; a hot chain must validate clean"
        );
        assert_eq!(stm.state_digest(), serial.state_digest());
        assert_eq!(
            stm.store().shard_op_counts(),
            serial.store().shard_op_counts()
        );
        assert_eq!(stm.committed_count(), serial.committed_count());
        assert_eq!(stm.total_supply(), serial.total_supply());
    }

    /// A speculative commit that the serial order turns into an abort (the
    /// hot payer runs dry mid-schedule) must be caught by validation and
    /// re-executed, landing on the serial result.
    #[test]
    fn draining_payer_forces_reexecution_and_matches_serial() {
        let m = 4;
        // Payer 1 holds 10; five payments of 4 — speculatively each sees
        // balance 10 and commits, but serially only the first two succeed.
        let txs: Vec<Transaction> = (0..5)
            .map(|i| Transaction::payment(txid(i), ClientId::new(1), ClientId::new(2 + i), 4))
            .collect();

        let mut serial = executor_with_accounts(m, &[(1, 10)]);
        let mut stm = executor_with_accounts(m, &[(1, 10)]);
        let schedule = schedule_of(m, &txs);
        let assign = assign_mod(m);

        let mut expected = Vec::new();
        for (instance, block) in &schedule {
            for tx in &block.txs {
                expected.push((tx.id, serial.process_plog_tx(tx, *instance, &assign)));
            }
        }
        let (got, stats) = run_schedule(&mut stm, &schedule, &assign, 2);

        assert_eq!(got, expected);
        assert!(stats.reexecutions > 0, "the drained payer must mispredict");
        assert_eq!(stm.state_digest(), serial.state_digest());
        assert_eq!(stm.aborted_count(), serial.aborted_count());
        assert_eq!(stm.committed_count(), serial.committed_count());
        assert_eq!(
            stm.store().shard_op_counts(),
            serial.store().shard_op_counts()
        );
        assert_eq!(stm.escrow_log().len(), serial.escrow_log().len());
    }

    /// Multi-payer payments and contracts leave escrows pending across the
    /// schedule boundary; the netted commit must materialize exactly the
    /// reservations the serial walk leaves behind.
    #[test]
    fn pending_escrows_survive_the_netted_commit() {
        let m = 4;
        let multi = Transaction::multi_payment(
            txid(0),
            &[(ClientId::new(1), 4), (ClientId::new(2), 6)],
            &[(ClientId::new(3), 10)],
        );
        let lone = Transaction::payment(txid(1), ClientId::new(5), ClientId::new(6), 1);
        // Only instance 1's block arrives this schedule: payer 1's leg is
        // escrowed, payer 2's is not, so the multi-payment stays pending.
        let schedule = vec![(
            InstanceId::new(1),
            block_of(
                InstanceId::new(1),
                vec![Arc::new(multi.clone()), Arc::new(lone.clone())],
                m,
            ),
        )];
        let assign = assign_mod(m);

        let mut serial = executor_with_accounts(m, &[(1, 10), (2, 10), (5, 10)]);
        let mut stm = executor_with_accounts(m, &[(1, 10), (2, 10), (5, 10)]);

        let mut expected = Vec::new();
        for (instance, block) in &schedule {
            for tx in &block.txs {
                expected.push((tx.id, serial.process_plog_tx(tx, *instance, &assign)));
            }
        }
        let (got, stats) = run_schedule(&mut stm, &schedule, &assign, 2);

        assert_eq!(got, expected);
        assert_eq!(got[0].1, None, "multi-payment must stay pending");
        assert_eq!(stats.occurrences, 2);
        assert_eq!(stm.state_digest(), serial.state_digest());
        assert_eq!(stm.escrow_log().len(), 1);
        assert_eq!(
            stm.escrow_log().total_reserved(),
            serial.escrow_log().total_reserved()
        );
        assert_eq!(stm.total_supply(), serial.total_supply());
    }

    #[test]
    fn abort_rate_is_reexecutions_over_occurrences() {
        let stats = StmStats {
            occurrences: 8,
            reexecutions: 2,
            ..StmStats::default()
        };
        assert!((stats.abort_rate() - 0.25).abs() < 1e-12);
        assert_eq!(StmStats::default().abort_rate(), 0.0);
        let mut acc = StmStats::default();
        acc.merge(stats);
        acc.merge(stats);
        assert_eq!(acc.occurrences, 16);
        assert_eq!(acc.reexecutions, 4);
    }
}
