//! The execution module (paper §V-C, Algorithm 1 lines 20–41).
//!
//! The executor consumes transactions from two sources:
//!
//! * **Partial logs** — [`Executor::process_plog_tx`] implements the
//!   "execute transactions in plog" rule: escrow every owned-decrement leg
//!   assigned to the current instance; abort the transaction if any escrow
//!   fails; and, for *payment* transactions whose legs are all escrowed,
//!   commit the escrows and apply the payee credits immediately (the fast
//!   path that never waits for global ordering).
//! * **The global log** — [`Executor::process_glog_tx`] implements the
//!   "execute transactions in glog" rule: contract transactions are executed
//!   at their *last* occurrence in the global log (a multi-payer contract
//!   appears once per involved instance); execution succeeds iff every payer
//!   leg is escrowed, in which case the shared-object operations are applied
//!   and the escrows committed, otherwise every escrow is refunded.

use crate::escrow::{EscrowLog, EscrowShard};
use crate::store::{ObjectStore, StoreShard};
use orthrus_types::FxHashMap;
use orthrus_types::{InstanceId, ObjectKey, Operation, SharedBlock, SharedTx, Transaction, TxId};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Final outcome of a transaction at this replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxOutcome {
    /// The transaction executed successfully.
    Committed,
    /// The transaction was aborted (an escrow failed / contract execution
    /// failed). Aborted transactions still count as confirmed towards the
    /// client (the paper confirms both successful and unsuccessful
    /// executions).
    Aborted,
}

/// The execution engine of one replica.
///
/// `Clone` exists for checkpoint snapshots and crash-recovery state
/// transfer, and is O(shards): the store and escrow shards plus the outcome
/// maps all sit behind [`Arc`]s with copy-on-write mutation, so a snapshot
/// is a consistent copy of exactly what this replica has executed, taken by
/// bumping reference counts — the live executor only duplicates a shard or
/// map when it next writes to one while a snapshot still holds the other
/// reference.
#[derive(Debug, Default, Clone)]
pub struct Executor {
    store: ObjectStore,
    elog: EscrowLog,
    outcomes: Arc<FxHashMap<TxId, TxOutcome>>,
    /// Number of glog occurrences of a transaction seen so far (a
    /// transaction assigned to k instances appears k times in the glog and is
    /// executed only at its last occurrence).
    glog_occurrences: Arc<HashMap<TxId, usize>>,
    committed_count: u64,
    aborted_count: u64,
}

impl Executor {
    /// Create an executor over an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an executor over a pre-populated store (genesis balances). The
    /// escrow log adopts the store's shard layout so reservation `i` always
    /// sits next to account shard `i`.
    pub fn with_store(store: ObjectStore) -> Self {
        let elog = EscrowLog::with_shards(store.num_account_shards());
        Self {
            store,
            elog,
            ..Self::default()
        }
    }

    /// Read access to the object store.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// Mutable access to the store (genesis setup).
    pub fn store_mut(&mut self) -> &mut ObjectStore {
        &mut self.store
    }

    /// Read access to the escrow log.
    pub fn escrow_log(&self) -> &EscrowLog {
        &self.elog
    }

    /// Outcome recorded for `tx`, if it was confirmed at this replica.
    pub fn outcome(&self, tx: TxId) -> Option<TxOutcome> {
        self.outcomes.get(&tx).copied()
    }

    /// Number of committed transactions.
    pub fn committed_count(&self) -> u64 {
        self.committed_count
    }

    /// Number of aborted transactions.
    pub fn aborted_count(&self) -> u64 {
        self.aborted_count
    }

    /// Can the leader include `tx` in a block right now? True when every
    /// owned-decrement leg could be escrowed against the current spendable
    /// balances. Leaders use this to only propose transactions that are valid
    /// under the state `S` they reference, which is what makes escrow at the
    /// backups deterministic (§V-B "Broadcast transactions").
    pub fn speculative_valid(&self, tx: &Transaction) -> bool {
        // Aggregate per-payer so a transaction debiting the same account
        // twice is checked against the sum.
        let mut needed: HashMap<ObjectKey, u128> = HashMap::new();
        for leg in tx.ops.iter().filter(|l| l.is_owned_decrement()) {
            *needed.entry(leg.key).or_default() += u128::from(leg.op.amount());
        }
        needed
            .into_iter()
            .all(|(key, amount)| u128::from(self.store.balance(key)) >= amount)
    }

    pub(crate) fn record(&mut self, tx: TxId, outcome: TxOutcome) -> TxOutcome {
        if Arc::make_mut(&mut self.outcomes)
            .insert(tx, outcome)
            .is_none()
        {
            match outcome {
                TxOutcome::Committed => self.committed_count += 1,
                TxOutcome::Aborted => self.aborted_count += 1,
            }
        }
        outcome
    }

    /// Apply the payee credits of a payment transaction.
    fn apply_credits(&mut self, tx: &Transaction) {
        for leg in tx.ops.iter().filter(|l| l.is_owned_increment()) {
            let _ = self.store.credit(leg.key, leg.op.amount());
        }
    }

    /// Apply the shared-object operations of a contract transaction.
    fn apply_contract_ops(&mut self, tx: &Transaction) {
        for leg in tx.ops.iter().filter(|l| l.is_shared()) {
            let result = match leg.op {
                Operation::Set(v) => self.store.set_shared(leg.key, v),
                Operation::Add(v) => self.store.add_shared(leg.key, v),
                Operation::Read => Ok(()),
                // Payment operations never target shared objects; transaction
                // validation rejects such legs before they reach execution.
                Operation::Credit(_) | Operation::Debit(_) => Ok(()),
            };
            debug_assert!(result.is_ok(), "contract op failed: {result:?}");
        }
    }

    /// Process transaction `tx` as it becomes first-pending in the partial
    /// log of `instance`. `assign` maps a payer key to the instance
    /// responsible for it (the partition function of §V-A).
    ///
    /// Returns the outcome if the transaction was confirmed (committed or
    /// aborted) by this call, or `None` if it is still waiting (for escrows
    /// in other instances, or for global ordering in the case of contract
    /// transactions).
    pub fn process_plog_tx(
        &mut self,
        tx: &Transaction,
        instance: InstanceId,
        assign: &dyn Fn(ObjectKey) -> InstanceId,
    ) -> Option<TxOutcome> {
        if let Some(existing) = self.outcomes.get(&tx.id) {
            return Some(*existing);
        }
        // Escrow every owned-decrement leg that belongs to this instance
        // (Algorithm 1 lines 22–23).
        let legs: Vec<_> = tx
            .ops
            .iter()
            .filter(|leg| leg.is_owned_decrement() && assign(leg.key) == instance)
            .copied()
            .collect();
        for leg in &legs {
            if !self.elog.escrow(&mut self.store, leg, tx.id) {
                // Lines 24–26: abort the whole transaction, refunding every
                // escrow already taken (possibly in other instances).
                self.elog.abort(&mut self.store, tx);
                return Some(self.record(tx.id, TxOutcome::Aborted));
            }
        }
        // Lines 27–30: payment transactions commit as soon as every payer leg
        // (across all instances) has been escrowed.
        if tx.is_payment() && self.elog.all_escrowed(tx) {
            self.elog.commit(tx);
            self.apply_credits(tx);
            return Some(self.record(tx.id, TxOutcome::Committed));
        }
        None
    }

    /// Execute a whole batch of partial-log blocks — the "schedule" produced
    /// by `PartialLogs::drain_ready` — with per-instance shard workers, and
    /// return `(tx, outcome)` for every transaction occurrence in schedule
    /// order, exactly as a serial walk calling
    /// [`Executor::process_plog_tx`] per transaction would have.
    ///
    /// The method classifies every occurrence:
    ///
    /// * **shard-local** — a payment whose every leg (payers *and* payees)
    ///   routes to the occurrence's own shard, and whose keys are not touched
    ///   by any cross-shard occurrence in this schedule. Such transactions
    ///   read and write only shard `i`'s objects and reservations, so
    ///   distinct instances' streams commute (the paper's Lemma 2) and run
    ///   concurrently on disjoint `&mut` shards.
    /// * **cross-shard** — everything else (contracts, multi-instance
    ///   payments, payments crediting a foreign shard, and any payment whose
    ///   accounts a cross-shard occurrence also touches). These run serially,
    ///   in schedule order, after the workers finish.
    ///
    /// The conflict analysis is what makes the split *bit-identical* to the
    /// serial walk rather than merely equivalent-in-distribution: a
    /// shard-local transaction's accounts are, by construction, only written
    /// by its own instance's stream during this schedule, so executing the
    /// streams concurrently and then merging outcomes in schedule order
    /// reproduces the serial result exactly — independent of the worker
    /// thread count.
    ///
    /// `pool` receives one [`PlogShardJob`] per instance with shard-local
    /// work and must call [`PlogShardJob::run`] on each (in any order, on any
    /// threads); `orthrus_core::parallel_for_mut` is the intended driver.
    /// `assign` must agree with the store's own routing
    /// (`ObjectKey::shard`), which holds whenever the executor is sharded to
    /// the partition module's instance count.
    pub fn process_plog_schedule<F>(
        &mut self,
        schedule: &[(InstanceId, SharedBlock)],
        assign: &(dyn Fn(ObjectKey) -> InstanceId + Sync),
        pool: F,
    ) -> Vec<(TxId, Option<TxOutcome>)>
    where
        F: FnOnce(&mut [PlogShardJob<'_>]),
    {
        let shards = self.store.num_account_shards();
        debug_assert_eq!(shards, self.elog.num_shards(), "store/elog shard mismatch");

        // Flatten the schedule into transaction occurrences and classify.
        struct Occurrence<'a> {
            instance: InstanceId,
            tx: &'a SharedTx,
            local: bool,
        }
        let mut occurrences: Vec<Occurrence<'_>> = schedule
            .iter()
            .flat_map(|(instance, block)| {
                block.txs.iter().map(move |tx| Occurrence {
                    instance: *instance,
                    tx,
                    local: false,
                })
            })
            .collect();

        // Keys any cross-shard occurrence touches. A candidate overlapping
        // this set must stay on the serial path: in the serial walk its
        // accounts could be credited/refunded by an earlier cross-shard
        // transaction, and the workers would not see that write in time.
        let mut hot: HashSet<ObjectKey> = HashSet::new();
        for occ in &mut occurrences {
            let tx = occ.tx;
            occ.local = occ.instance.value() < shards
                && tx.is_payment()
                && tx.ops.iter().all(|leg| {
                    !leg.is_shared()
                        && leg.key.shard(shards) == occ.instance.value()
                        && (!leg.is_owned_decrement() || assign(leg.key) == occ.instance)
                });
            if !occ.local {
                hot.extend(tx.ops.iter().map(|leg| leg.key));
            }
        }
        // Demotions cascade forward: once a candidate is forced serial its
        // accounts become hot for every later candidate, preserving
        // within-account ordering across the two phases.
        for occ in &mut occurrences {
            if occ.local && occ.tx.ops.iter().any(|leg| hot.contains(&leg.key)) {
                occ.local = false;
                hot.extend(occ.tx.ops.iter().map(|leg| leg.key));
            }
        }

        // Build one job per instance with shard-local work.
        let mut tasks: Vec<Vec<SharedTx>> = vec![Vec::new(); shards as usize];
        for occ in &occurrences {
            if occ.local {
                tasks[occ.instance.as_usize()].push(Arc::clone(occ.tx));
            }
        }
        let mut results: Vec<VecDeque<(TxId, TxOutcome)>> =
            (0..shards as usize).map(|_| VecDeque::new()).collect();
        {
            let (account_shards, shared_shard) = self.store.split_shards_mut();
            let escrow_shards = self.elog.shards_mut();
            let known: &FxHashMap<TxId, TxOutcome> = &self.outcomes;
            let mut jobs: Vec<PlogShardJob<'_>> = account_shards
                .into_iter()
                .zip(escrow_shards)
                .zip(tasks.iter_mut().enumerate())
                .filter(|(_, (_, tasks))| !tasks.is_empty())
                .map(|((objects, escrow), (shard, tasks))| PlogShardJob {
                    shard,
                    objects,
                    escrow,
                    shared: shared_shard,
                    known,
                    tasks: std::mem::take(tasks),
                    results: Vec::new(),
                })
                .collect();
            pool(&mut jobs);
            for job in jobs {
                debug_assert_eq!(
                    job.results.len(),
                    job.tasks.len(),
                    "worker must produce one result per task"
                );
                results[job.shard] = job.results.into();
            }
        }

        // Merge: walk the schedule in order, splicing worker outcomes in and
        // running cross-shard occurrences serially at their exact positions.
        let mut out = Vec::with_capacity(occurrences.len());
        for occ in &occurrences {
            if occ.local {
                let (id, outcome) = results[occ.instance.as_usize()]
                    .pop_front()
                    .expect("one worker result per shard-local occurrence");
                debug_assert_eq!(id, occ.tx.id);
                self.record(id, outcome);
                out.push((id, Some(outcome)));
            } else {
                let outcome = self.process_plog_tx(occ.tx, occ.instance, &|key| assign(key));
                out.push((occ.tx.id, outcome));
            }
        }
        out
    }

    /// Execute a plog schedule with the Block-STM optimistic engine
    /// (`ProtocolConfig::execution_mode = OptimisticStm`): every occurrence
    /// runs speculatively against the frozen committed state on up to
    /// `threads` workers, a serial pass validates the verdict traces in
    /// schedule order (re-executing mismatches with a bumped incarnation),
    /// and the surviving write-sets are folded into the shards with one
    /// coalesced write per account. Returns exactly what the serial
    /// reference walk returns, with bit-identical final state — see the
    /// `stm_scheduler` module docs for the determinism argument.
    pub fn process_plog_schedule_stm(
        &mut self,
        schedule: &[(InstanceId, SharedBlock)],
        assign: &(dyn Fn(ObjectKey) -> InstanceId + Sync),
        threads: usize,
    ) -> Vec<(TxId, Option<TxOutcome>)> {
        self.process_plog_schedule_stm_with_stats(schedule, assign, threads)
            .0
    }

    /// [`Executor::process_plog_schedule_stm`], additionally reporting the
    /// speculation counters (occurrences and validation-triggered
    /// re-executions) the bench harness aggregates into an abort rate.
    pub fn process_plog_schedule_stm_with_stats(
        &mut self,
        schedule: &[(InstanceId, SharedBlock)],
        assign: &(dyn Fn(ObjectKey) -> InstanceId + Sync),
        threads: usize,
    ) -> (
        Vec<(TxId, Option<TxOutcome>)>,
        crate::stm_scheduler::StmStats,
    ) {
        crate::stm_scheduler::run_schedule(self, schedule, assign, threads)
    }

    /// Read-only parts the STM engine's speculative and validation phases
    /// run against (the frozen committed state).
    pub(crate) fn stm_parts(&self) -> (&ObjectStore, &EscrowLog, &FxHashMap<TxId, TxOutcome>) {
        (&self.store, &self.elog, &self.outcomes)
    }

    /// Exclusive shard access for the STM engine's commit pass.
    pub(crate) fn stm_commit_parts(&mut self) -> (&mut ObjectStore, &mut EscrowLog) {
        (&mut self.store, &mut self.elog)
    }

    /// Process transaction `tx` as it becomes first-pending in the global
    /// log. `assign` is the partition function (used to count how many
    /// occurrences of the transaction the global log will contain).
    ///
    /// Returns the outcome if this was the transaction's last occurrence and
    /// it was executed (committed or aborted); `None` if this occurrence was
    /// skipped (not the last one, or the transaction is a payment already
    /// confirmed on the fast path).
    pub fn process_glog_tx(
        &mut self,
        tx: &Transaction,
        assign: &dyn Fn(ObjectKey) -> InstanceId,
    ) -> Option<TxOutcome> {
        if let Some(existing) = self.outcomes.get(&tx.id) {
            // Already confirmed (payments on the fast path, or an earlier
            // abort). Nothing to do at this position.
            return Some(*existing);
        }
        if tx.is_payment() {
            // Payments never require global ordering; they are handled
            // entirely by the plog path.
            return None;
        }
        // Count occurrences: a contract transaction appears once per distinct
        // instance among its payers (Algorithm 1 lines 34, 40–41).
        let mut instances: Vec<InstanceId> = tx.payers().map(assign).collect();
        instances.sort_unstable();
        instances.dedup();
        let expected = instances.len().max(1);
        let seen = Arc::make_mut(&mut self.glog_occurrences)
            .entry(tx.id)
            .or_insert(0);
        *seen += 1;
        if *seen < expected {
            return None;
        }
        Arc::make_mut(&mut self.glog_occurrences).remove(&tx.id);

        // Last occurrence: execute (lines 35–39).
        if self.elog.all_escrowed(tx) {
            self.apply_contract_ops(tx);
            self.apply_credits(tx);
            self.elog.commit(tx);
            Some(self.record(tx.id, TxOutcome::Committed))
        } else {
            self.elog.abort(&mut self.store, tx);
            Some(self.record(tx.id, TxOutcome::Aborted))
        }
    }

    /// Execute `tx` in one shot, as the baseline protocols (ISS, Mir-BFT,
    /// RCC, DQBFT, Ladon) do once the transaction's block reaches its
    /// position in the global log: escrow every payer leg, and either commit
    /// (applying credits and contract operations) or abort and refund.
    /// Re-processing a confirmed transaction (e.g. a multi-payer transaction
    /// appearing in several globally ordered blocks) is idempotent.
    pub fn process_sequential_tx(&mut self, tx: &Transaction) -> TxOutcome {
        if let Some(existing) = self.outcomes.get(&tx.id) {
            return *existing;
        }
        let legs: Vec<_> = tx
            .ops
            .iter()
            .filter(|leg| leg.is_owned_decrement())
            .copied()
            .collect();
        for leg in &legs {
            if !self.elog.escrow(&mut self.store, leg, tx.id) {
                self.elog.abort(&mut self.store, tx);
                return self.record(tx.id, TxOutcome::Aborted);
            }
        }
        self.elog.commit(tx);
        self.apply_credits(tx);
        if tx.is_contract() {
            self.apply_contract_ops(tx);
        }
        self.record(tx.id, TxOutcome::Committed)
    }

    /// Deterministic digest of the executed state (object store only; the
    /// escrow log is transient). Two honest replicas that confirmed the same
    /// transactions must produce equal digests (Theorem 1).
    pub fn state_digest(&self) -> orthrus_types::Digest {
        self.store.digest()
    }

    /// Total supply held in spendable balances plus escrow reservations.
    pub fn total_supply(&self) -> u128 {
        self.store.total_balance() + self.elog.total_reserved()
    }
}

/// The unit of work [`Executor::process_plog_schedule`] hands to the shard
/// pool: one instance's stream of shard-local payments, together with
/// exclusive access to that instance's object and escrow shards. Jobs of
/// distinct instances touch disjoint state, so a pool may run them on any
/// threads in any order; [`PlogShardJob::run`] itself replays the stream in
/// order.
pub struct PlogShardJob<'a> {
    /// Shard / instance index this job executes for.
    shard: usize,
    /// The instance's account shard.
    objects: &'a mut StoreShard,
    /// The instance's escrow shard.
    escrow: &'a mut EscrowShard,
    /// Read-only view of the shared-object shard, for the owned/shared type
    /// check on account creation (shard-local work never mutates it).
    shared: &'a StoreShard,
    /// Outcomes recorded before this schedule started (fast-path idempotency
    /// for re-delivered transactions).
    known: &'a FxHashMap<TxId, TxOutcome>,
    /// The shard-local transactions, in stream order.
    tasks: Vec<SharedTx>,
    /// One `(tx, outcome)` per task, in stream order.
    results: Vec<(TxId, TxOutcome)>,
}

impl PlogShardJob<'_> {
    /// Number of transactions this job executes.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Is the job empty? (Never true for jobs built by the executor.)
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Escrow one payer leg against the local shards, replicating
    /// `EscrowLog::escrow` exactly (idempotency, condition check, debit).
    fn escrow_leg(&mut self, key: ObjectKey, tx: TxId, leg: &orthrus_types::ObjectOp) -> bool {
        if self.escrow.contains(key, tx) {
            return true;
        }
        let amount = match leg.op {
            Operation::Debit(a) => a,
            _ => return false,
        };
        let balance_after = i128::from(self.objects.balance(key)) - i128::from(amount);
        if !leg.condition.allows_balance(balance_after) {
            return false;
        }
        if self.objects.debit(key, amount).is_err() {
            return false;
        }
        self.escrow.insert(key, tx, amount);
        true
    }

    /// Credit a payee leg, replicating `ObjectStore::credit`'s cross-type
    /// check: a credit whose key names an existing shared object is a type
    /// mismatch the payment path ignores.
    fn credit_leg(&mut self, key: ObjectKey, amount: orthrus_types::Amount) {
        if !self.objects.contains(key) && self.shared.contains(key) {
            return;
        }
        self.objects.credit(key, amount);
    }

    /// Execute the job's stream, mirroring what
    /// [`Executor::process_plog_tx`] does for a payment whose legs all live
    /// in this shard: escrow every payer leg, abort-and-refund on the first
    /// failure, otherwise commit and apply the payee credits.
    pub fn run(&mut self) {
        let mut seen: HashMap<TxId, TxOutcome> = HashMap::new();
        for idx in 0..self.tasks.len() {
            let task = Arc::clone(&self.tasks[idx]);
            let tx: &Transaction = &task;
            let known = seen
                .get(&tx.id)
                .copied()
                .or_else(|| self.known.get(&tx.id).copied());
            let outcome = match known {
                Some(outcome) => outcome,
                None => {
                    let mut failed = false;
                    for leg in tx.ops.iter().filter(|l| l.is_owned_decrement()) {
                        if !self.escrow_leg(leg.key, tx.id, leg) {
                            failed = true;
                            break;
                        }
                    }
                    if failed {
                        // Abort: refund every reservation this transaction
                        // holds (all local by construction).
                        for leg in tx.ops.iter().filter(|l| l.is_owned_decrement()) {
                            if let Some(amount) = self.escrow.remove(leg.key, tx.id) {
                                self.objects.credit(leg.key, amount);
                            }
                        }
                        TxOutcome::Aborted
                    } else {
                        // Commit: consume the reservations, apply the payee
                        // credits.
                        for leg in tx.ops.iter().filter(|l| l.is_owned_decrement()) {
                            self.escrow.remove(leg.key, tx.id);
                        }
                        for leg in tx.ops.iter().filter(|l| l.is_owned_increment()) {
                            self.credit_leg(leg.key, leg.op.amount());
                        }
                        TxOutcome::Committed
                    }
                }
            };
            seen.insert(tx.id, outcome);
            self.results.push((tx.id, outcome));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_types::{ClientId, ObjectOp};

    fn txid(i: u64) -> TxId {
        TxId::new(ClientId::new(99), i)
    }

    /// Partition function used by tests: account key modulo `m`.
    fn assign_mod(m: u32) -> impl Fn(ObjectKey) -> InstanceId {
        move |key: ObjectKey| InstanceId::new((key.value() % u64::from(m)) as u32)
    }

    fn executor_with_accounts(accounts: &[(u64, u64)]) -> Executor {
        let mut store = ObjectStore::new();
        for (key, balance) in accounts {
            store.create_account(ObjectKey::new(*key), *balance);
        }
        Executor::with_store(store)
    }

    #[test]
    fn single_payer_payment_commits_on_fast_path() {
        let mut exec = executor_with_accounts(&[(1, 100), (2, 0)]);
        let assign = assign_mod(4);
        let tx = Transaction::payment(txid(0), ClientId::new(1), ClientId::new(2), 40);
        let outcome = exec.process_plog_tx(&tx, InstanceId::new(1), &assign);
        assert_eq!(outcome, Some(TxOutcome::Committed));
        assert_eq!(exec.store().balance(ObjectKey::new(1)), 60);
        assert_eq!(exec.store().balance(ObjectKey::new(2)), 40);
        assert!(exec.escrow_log().is_empty());
        assert_eq!(exec.committed_count(), 1);
    }

    #[test]
    fn insufficient_funds_aborts() {
        let mut exec = executor_with_accounts(&[(1, 10), (2, 0)]);
        let assign = assign_mod(4);
        let tx = Transaction::payment(txid(0), ClientId::new(1), ClientId::new(2), 40);
        let outcome = exec.process_plog_tx(&tx, InstanceId::new(1), &assign);
        assert_eq!(outcome, Some(TxOutcome::Aborted));
        assert_eq!(exec.store().balance(ObjectKey::new(1)), 10);
        assert_eq!(exec.store().balance(ObjectKey::new(2)), 0);
        assert_eq!(exec.aborted_count(), 1);
    }

    #[test]
    fn multi_payer_payment_waits_for_both_instances_then_commits() {
        // Payers 1 and 2 live in different instances (mod 4); payee is 3.
        let mut exec = executor_with_accounts(&[(1, 10), (2, 10), (3, 0)]);
        let assign = assign_mod(4);
        let tx = Transaction::multi_payment(
            txid(0),
            &[(ClientId::new(1), 4), (ClientId::new(2), 6)],
            &[(ClientId::new(3), 10)],
        );
        // Instance 1 processes its leg first: escrow taken, no commit yet.
        assert_eq!(exec.process_plog_tx(&tx, InstanceId::new(1), &assign), None);
        assert_eq!(exec.store().balance(ObjectKey::new(1)), 6);
        assert_eq!(exec.escrow_log().len(), 1);
        assert_eq!(exec.store().balance(ObjectKey::new(3)), 0);
        // Instance 2 processes its leg: everything escrowed, commit.
        assert_eq!(
            exec.process_plog_tx(&tx, InstanceId::new(2), &assign),
            Some(TxOutcome::Committed)
        );
        assert_eq!(exec.store().balance(ObjectKey::new(2)), 4);
        assert_eq!(exec.store().balance(ObjectKey::new(3)), 10);
        assert!(exec.escrow_log().is_empty());
    }

    #[test]
    fn multi_payer_abort_refunds_the_other_payer() {
        let mut exec = executor_with_accounts(&[(1, 10), (2, 3), (3, 0)]);
        let assign = assign_mod(4);
        let tx = Transaction::multi_payment(
            txid(0),
            &[(ClientId::new(1), 4), (ClientId::new(2), 6)],
            &[(ClientId::new(3), 10)],
        );
        assert_eq!(exec.process_plog_tx(&tx, InstanceId::new(1), &assign), None);
        assert_eq!(exec.store().balance(ObjectKey::new(1)), 6);
        // Payer 2 cannot cover its leg: the whole transaction aborts and
        // payer 1 gets its escrow back.
        assert_eq!(
            exec.process_plog_tx(&tx, InstanceId::new(2), &assign),
            Some(TxOutcome::Aborted)
        );
        assert_eq!(exec.store().balance(ObjectKey::new(1)), 10);
        assert_eq!(exec.store().balance(ObjectKey::new(2)), 3);
        assert_eq!(exec.store().balance(ObjectKey::new(3)), 0);
        assert!(exec.escrow_log().is_empty());
    }

    #[test]
    fn contract_transaction_escrows_in_plog_and_executes_in_glog() {
        let mut exec = executor_with_accounts(&[(1, 10), (2, 10)]);
        let assign = assign_mod(4);
        let tx = Transaction::contract(
            txid(0),
            &[(ClientId::new(1), 1), (ClientId::new(2), 1)],
            vec![ObjectOp::set_shared(ObjectKey::new(100), 7)],
        );
        // plog processing escrows but does not confirm contract transactions.
        assert_eq!(exec.process_plog_tx(&tx, InstanceId::new(1), &assign), None);
        assert_eq!(exec.process_plog_tx(&tx, InstanceId::new(2), &assign), None);
        assert_eq!(exec.escrow_log().len(), 2);
        assert_eq!(exec.store().balance(ObjectKey::new(1)), 9);

        // glog: first occurrence skipped, second (last) executes.
        assert_eq!(exec.process_glog_tx(&tx, &assign), None);
        assert_eq!(
            exec.process_glog_tx(&tx, &assign),
            Some(TxOutcome::Committed)
        );
        assert_eq!(exec.store().shared_value(ObjectKey::new(100)), 7);
        assert!(exec.escrow_log().is_empty());
    }

    #[test]
    fn contract_with_failed_escrow_aborts_in_glog_and_refunds() {
        let mut exec = executor_with_accounts(&[(1, 10), (2, 0)]);
        let assign = assign_mod(4);
        let tx = Transaction::contract(
            txid(0),
            &[(ClientId::new(1), 1), (ClientId::new(2), 1)],
            vec![ObjectOp::set_shared(ObjectKey::new(100), 7)],
        );
        // Payer 1's escrow succeeds; payer 2's fails, aborting the whole
        // transaction already at plog time.
        assert_eq!(exec.process_plog_tx(&tx, InstanceId::new(1), &assign), None);
        assert_eq!(
            exec.process_plog_tx(&tx, InstanceId::new(2), &assign),
            Some(TxOutcome::Aborted)
        );
        assert_eq!(exec.store().balance(ObjectKey::new(1)), 10);
        // Later glog occurrences observe the existing outcome and change
        // nothing.
        assert_eq!(exec.process_glog_tx(&tx, &assign), Some(TxOutcome::Aborted));
        assert_eq!(exec.store().shared_value(ObjectKey::new(100)), 0);
        assert_eq!(exec.aborted_count(), 1);
    }

    #[test]
    fn pending_contract_does_not_block_later_payment_by_same_payer() {
        // Challenge-II: a contract escrow on payer 1 must not delay a later
        // payment by payer 1 (it is evaluated as if the contract's debit had
        // already executed).
        let mut exec = executor_with_accounts(&[(1, 10), (2, 0)]);
        let assign = assign_mod(4);
        let contract = Transaction::contract(
            txid(0),
            &[(ClientId::new(1), 4)],
            vec![ObjectOp::set_shared(ObjectKey::new(100), 1)],
        );
        assert_eq!(
            exec.process_plog_tx(&contract, InstanceId::new(1), &assign),
            None
        );
        // The payment is processed immediately, against the post-escrow
        // balance of 6.
        let payment = Transaction::payment(txid(1), ClientId::new(1), ClientId::new(2), 6);
        assert_eq!(
            exec.process_plog_tx(&payment, InstanceId::new(1), &assign),
            Some(TxOutcome::Committed)
        );
        assert_eq!(exec.store().balance(ObjectKey::new(1)), 0);
        assert_eq!(exec.store().balance(ObjectKey::new(2)), 6);
        // The contract still commits later from the glog.
        assert_eq!(
            exec.process_glog_tx(&contract, &assign),
            Some(TxOutcome::Committed)
        );
        assert_eq!(exec.store().shared_value(ObjectKey::new(100)), 1);
    }

    #[test]
    fn sequential_execution_matches_baseline_semantics() {
        let mut exec = executor_with_accounts(&[(1, 10), (2, 10), (3, 0)]);
        // A committed payment.
        let pay = Transaction::payment(txid(0), ClientId::new(1), ClientId::new(3), 4);
        assert_eq!(exec.process_sequential_tx(&pay), TxOutcome::Committed);
        assert_eq!(exec.store().balance(ObjectKey::new(1)), 6);
        assert_eq!(exec.store().balance(ObjectKey::new(3)), 4);
        // An aborted payment (insufficient funds) leaves state untouched.
        let broke = Transaction::payment(txid(1), ClientId::new(2), ClientId::new(3), 11);
        assert_eq!(exec.process_sequential_tx(&broke), TxOutcome::Aborted);
        assert_eq!(exec.store().balance(ObjectKey::new(2)), 10);
        // A contract applies its shared-object operations.
        let contract = Transaction::contract(
            txid(2),
            &[(ClientId::new(2), 1)],
            vec![ObjectOp::add_shared(ObjectKey::new(200), 5)],
        );
        assert_eq!(exec.process_sequential_tx(&contract), TxOutcome::Committed);
        assert_eq!(exec.store().shared_value(ObjectKey::new(200)), 5);
        // Re-processing is idempotent.
        assert_eq!(exec.process_sequential_tx(&pay), TxOutcome::Committed);
        assert_eq!(exec.store().balance(ObjectKey::new(3)), 4);
        assert!(exec.escrow_log().is_empty());
    }

    #[test]
    fn speculative_validity_aggregates_per_payer() {
        let exec = executor_with_accounts(&[(1, 10)]);
        let ok = Transaction::payment(txid(0), ClientId::new(1), ClientId::new(2), 10);
        assert!(exec.speculative_valid(&ok));
        let too_much = Transaction::payment(txid(1), ClientId::new(1), ClientId::new(2), 11);
        assert!(!exec.speculative_valid(&too_much));
        // Two legs of 6 from the same payer exceed the balance of 10 even
        // though each individually fits.
        let double = Transaction::multi_payment(
            txid(2),
            &[(ClientId::new(1), 6), (ClientId::new(1), 6)],
            &[(ClientId::new(2), 12)],
        );
        assert!(!exec.speculative_valid(&double));
    }

    #[test]
    fn speculative_validity_ignores_escrowed_funds() {
        // An escrow reduces the spendable balance immediately, so the
        // leader's validity check naturally reflects pending contracts
        // (Challenge-II: later payments see the post-escrow balance).
        let mut exec = executor_with_accounts(&[(1, 10)]);
        let assign = assign_mod(4);
        let contract = Transaction::contract(
            txid(0),
            &[(ClientId::new(1), 7)],
            vec![ObjectOp::set_shared(ObjectKey::new(100), 1)],
        );
        assert_eq!(
            exec.process_plog_tx(&contract, InstanceId::new(1), &assign),
            None
        );
        // 3 tokens remain spendable: a 3-token payment is valid, 4 is not.
        let fits = Transaction::payment(txid(1), ClientId::new(1), ClientId::new(2), 3);
        let too_much = Transaction::payment(txid(2), ClientId::new(1), ClientId::new(2), 4);
        assert!(exec.speculative_valid(&fits));
        assert!(!exec.speculative_valid(&too_much));
    }

    #[test]
    fn speculative_validity_of_unknown_account_is_false_unless_free() {
        let exec = executor_with_accounts(&[(1, 10)]);
        // Account 99 does not exist: any debit is invalid…
        let ghost = Transaction::payment(txid(0), ClientId::new(99), ClientId::new(1), 1);
        assert!(!exec.speculative_valid(&ghost));
        // …but a transaction debiting nothing passes trivially.
        let free = Transaction::multi_payment(txid(1), &[], &[(ClientId::new(1), 0)]);
        assert!(exec.speculative_valid(&free));
    }

    #[test]
    fn double_debit_of_same_account_escrows_the_sum_once() {
        // `multi_payment` aggregates duplicate payer entries into one debit
        // leg, so the escrow log holds one reservation for the sum and a
        // commit/refund cycle moves the full aggregated amount.
        let mut exec = executor_with_accounts(&[(1, 10), (2, 0)]);
        let assign = assign_mod(4);
        let tx = Transaction::multi_payment(
            txid(0),
            &[(ClientId::new(1), 4), (ClientId::new(1), 4)],
            &[(ClientId::new(2), 8)],
        );
        assert_eq!(tx.payer_count(), 1);
        assert_eq!(
            exec.process_plog_tx(&tx, InstanceId::new(1), &assign),
            Some(TxOutcome::Committed)
        );
        assert_eq!(exec.store().balance(ObjectKey::new(1)), 2);
        assert_eq!(exec.store().balance(ObjectKey::new(2)), 8);
        assert!(exec.escrow_log().is_empty());
    }

    #[test]
    fn double_debit_exceeding_balance_aborts_cleanly() {
        let mut exec = executor_with_accounts(&[(1, 7), (2, 0)]);
        let assign = assign_mod(4);
        // Aggregated debit of 8 exceeds the balance of 7.
        let tx = Transaction::multi_payment(
            txid(0),
            &[(ClientId::new(1), 4), (ClientId::new(1), 4)],
            &[(ClientId::new(2), 8)],
        );
        assert!(!exec.speculative_valid(&tx));
        assert_eq!(
            exec.process_plog_tx(&tx, InstanceId::new(1), &assign),
            Some(TxOutcome::Aborted)
        );
        assert_eq!(exec.store().balance(ObjectKey::new(1)), 7);
        assert!(exec.escrow_log().is_empty());
    }

    #[test]
    fn multi_payer_contract_abort_refunds_every_escrowed_leg() {
        // Three payers, the third cannot cover its fee: the abort at plog
        // time must refund the two escrows already taken in other instances.
        let mut exec = executor_with_accounts(&[(1, 10), (2, 10), (3, 0)]);
        let assign = assign_mod(4);
        let tx = Transaction::contract(
            txid(0),
            &[
                (ClientId::new(1), 5),
                (ClientId::new(2), 5),
                (ClientId::new(3), 5),
            ],
            vec![ObjectOp::set_shared(ObjectKey::new(100), 9)],
        );
        assert_eq!(exec.process_plog_tx(&tx, InstanceId::new(1), &assign), None);
        assert_eq!(exec.process_plog_tx(&tx, InstanceId::new(2), &assign), None);
        assert_eq!(exec.escrow_log().len(), 2);
        assert_eq!(exec.store().balance(ObjectKey::new(1)), 5);
        assert_eq!(
            exec.process_plog_tx(&tx, InstanceId::new(3), &assign),
            Some(TxOutcome::Aborted)
        );
        // Every leg refunded, nothing executed, abort is sticky in the glog.
        assert!(exec.escrow_log().is_empty());
        assert_eq!(exec.store().balance(ObjectKey::new(1)), 10);
        assert_eq!(exec.store().balance(ObjectKey::new(2)), 10);
        assert_eq!(exec.process_glog_tx(&tx, &assign), Some(TxOutcome::Aborted));
        assert_eq!(exec.store().shared_value(ObjectKey::new(100)), 0);
        assert_eq!(exec.aborted_count(), 1);
    }

    #[test]
    fn contract_missing_escrow_at_last_glog_occurrence_refunds() {
        // The contract's legs never went through the plog (e.g. the replica
        // saw the glog entries first); at the last occurrence `allEscrowed`
        // fails and any partial escrow is refunded.
        let mut exec = executor_with_accounts(&[(1, 10), (2, 10)]);
        let assign = assign_mod(4);
        let tx = Transaction::contract(
            txid(0),
            &[(ClientId::new(1), 1), (ClientId::new(2), 1)],
            vec![ObjectOp::set_shared(ObjectKey::new(100), 7)],
        );
        // Only payer 1's leg is escrowed before global ordering completes.
        assert_eq!(exec.process_plog_tx(&tx, InstanceId::new(1), &assign), None);
        assert_eq!(exec.process_glog_tx(&tx, &assign), None);
        assert_eq!(exec.process_glog_tx(&tx, &assign), Some(TxOutcome::Aborted));
        assert_eq!(exec.store().balance(ObjectKey::new(1)), 10);
        assert_eq!(exec.store().shared_value(ObjectKey::new(100)), 0);
        assert!(exec.escrow_log().is_empty());
    }

    #[test]
    fn reprocessing_a_confirmed_tx_is_idempotent() {
        let mut exec = executor_with_accounts(&[(1, 100), (2, 0)]);
        let assign = assign_mod(4);
        let tx = Transaction::payment(txid(0), ClientId::new(1), ClientId::new(2), 40);
        assert_eq!(
            exec.process_plog_tx(&tx, InstanceId::new(1), &assign),
            Some(TxOutcome::Committed)
        );
        assert_eq!(
            exec.process_plog_tx(&tx, InstanceId::new(1), &assign),
            Some(TxOutcome::Committed)
        );
        assert_eq!(exec.store().balance(ObjectKey::new(1)), 60);
        assert_eq!(exec.store().balance(ObjectKey::new(2)), 40);
        assert_eq!(exec.committed_count(), 1);
    }

    /// Commutativity of conflict-free payments (Lemma 2): executing the same
    /// set of single-payer payments in any two orders yields the same final
    /// balances, provided every payment succeeds in both orders (here
    /// guaranteed by generous initial balances). (Seeded-loop replacement for
    /// the former property-based test.)
    #[test]
    fn payment_batches_commute() {
        use orthrus_types::rng::{Rng, SliceRandom, StdRng};
        let assign = assign_mod(4);
        let accounts: Vec<(u64, u64)> = (1..=8).map(|k| (k, 10_000)).collect();
        for seed in 0u64..60 {
            let mut rng = StdRng::seed_from_u64(seed);
            let count = rng.gen_range(1usize..40);
            let txs: Vec<Transaction> = (0..count)
                .map(|i| {
                    let payer: u64 = rng.gen_range(1..8);
                    let payee: u64 = rng.gen_range(1..8);
                    let amount: u64 = rng.gen_range(1..20);
                    Transaction::payment(
                        txid(i as u64),
                        ClientId::new(payer),
                        ClientId::new(payee),
                        amount,
                    )
                })
                .collect();

            let run = |order: &[Transaction]| {
                let mut exec = executor_with_accounts(&accounts);
                for tx in order {
                    let payer = tx.payers().next().unwrap();
                    let outcome = exec.process_plog_tx(tx, assign(payer), &assign);
                    assert_eq!(outcome, Some(TxOutcome::Committed));
                }
                exec.state_digest()
            };

            let forward = run(&txs);
            let mut shuffled = txs.clone();
            shuffled.shuffle(&mut rng);
            let reordered = run(&shuffled);
            assert_eq!(forward, reordered, "seed {seed}");
        }
    }

    /// Atomicity (Lemma 5) and conservation: for any mix of multi-payer
    /// payments processed leg by leg, the total supply (balances + escrow)
    /// never changes, and after all legs are processed the escrow log is
    /// empty (every transaction either fully committed or fully aborted).
    #[test]
    fn multi_payer_atomicity_conserves_supply() {
        use orthrus_types::rng::{Rng, StdRng};
        for seed in 0u64..60 {
            let mut rng = StdRng::seed_from_u64(seed);
            let assign = assign_mod(3);
            let mut exec = executor_with_accounts(&[
                (1, 50),
                (2, 50),
                (3, 50),
                (4, 50),
                (5, 0),
                (6, 0),
                (7, 0),
            ]);
            let initial_supply = exec.total_supply();
            let count = rng.gen_range(1usize..25);
            let txs: Vec<Transaction> = (0..count)
                .map(|i| {
                    let p1: u64 = rng.gen_range(1..5);
                    let p2: u64 = rng.gen_range(1..5);
                    let payee: u64 = rng.gen_range(5..8);
                    let amount: u64 = rng.gen_range(1..40);
                    Transaction::multi_payment(
                        txid(i as u64),
                        &[
                            (ClientId::new(p1), amount),
                            (ClientId::new(p2), amount / 2 + 1),
                        ],
                        &[(ClientId::new(payee), amount + amount / 2 + 1)],
                    )
                })
                .collect();
            for tx in &txs {
                let mut instances: Vec<InstanceId> = tx.payers().map(&assign).collect();
                instances.sort_unstable();
                instances.dedup();
                for inst in instances {
                    exec.process_plog_tx(tx, inst, &assign);
                    assert_eq!(exec.total_supply(), initial_supply, "seed {seed}");
                }
            }
            assert!(exec.escrow_log().is_empty(), "seed {seed}");
            for tx in &txs {
                assert!(exec.outcome(tx.id).is_some(), "seed {seed}");
            }
        }
    }
}
