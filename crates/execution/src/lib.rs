//! # orthrus-execution
//!
//! The execution module of Orthrus (paper §V-C): the replicated object
//! store, the escrow mechanism and the executor that consumes transactions
//! from the partial logs (payment fast path) and the global log (contract
//! transactions).
//!
//! * [`store`] — owned accounts and shared contract records;
//! * [`escrow`] — the escrow log and the `escrow` / `allEscrowed` /
//!   `commitEscrow` / `abortEscrow` operations of Algorithm 2;
//! * [`executor`] — Algorithm 1's execution rules for plog and glog entries,
//!   plus the leader-side speculative validity check;
//! * [`mvmemory`] — the multi-version memory of the Block-STM engine:
//!   per-occurrence versioned write-sets, verdict-based read traces and the
//!   frozen/overlay state views;
//! * [`stm_scheduler`] — the optimistic execute/validate/commit scheduler
//!   behind [`executor::Executor::process_plog_schedule_stm`].
//!
//! The same executor serves every protocol in the workspace: baselines that
//! confirm all transactions through the global log simply route payments
//! through [`executor::Executor::process_glog_tx`]'s calling layer instead of
//! using the fast path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod escrow;
pub mod executor;
pub mod mvmemory;
pub mod stm_scheduler;
pub mod store;

pub use escrow::{EscrowLog, EscrowShard};
pub use executor::{Executor, PlogShardJob, TxOutcome};
pub use mvmemory::{MVMemory, ReadTrace, WriteSet};
pub use stm_scheduler::StmStats;
pub use store::{ObjectState, ObjectStore, StoreShard};
