//! Output actions of a sequenced-broadcast instance.
//!
//! The PBFT state machine is IO-free: every handler returns a list of
//! [`SbAction`]s describing what the hosting replica should do — send
//! messages, deliver blocks, or take note of control events. Keeping IO out
//! of the state machine makes it directly unit-testable and lets the same
//! code run under the discrete-event simulation or any other transport.

use crate::messages::SbMessage;
use orthrus_types::{ReplicaId, SharedBlock, StableCheckpoint, View};

/// An instruction from an SB instance to its hosting replica.
#[derive(Debug, Clone, PartialEq)]
pub enum SbAction {
    /// Send `msg` to a single replica.
    Send {
        /// Destination replica.
        to: ReplicaId,
        /// Message to send.
        msg: SbMessage,
    },
    /// Send `msg` to every *other* replica (the instance has already applied
    /// the message's effect on itself where relevant).
    Broadcast {
        /// Message to broadcast.
        msg: SbMessage,
    },
    /// The instance delivered `block`: it is now (partially) ordered at its
    /// sequence number and may enter the partial/global logs.
    Deliver {
        /// Delivered block (shared handle — the same allocation the
        /// pre-prepare carried; the partial and global logs keep referencing
        /// it without copying).
        block: SharedBlock,
    },
    /// The instance moved to a new view with a new leader (used by the host
    /// for bookkeeping and by the statistics collector).
    ViewChanged {
        /// The view now in force.
        view: View,
        /// Leader of the new view.
        leader: ReplicaId,
    },
    /// The instance established a stable checkpoint: the quorum certificate
    /// covers all sequence numbers up to and including `checkpoint.seq`, and
    /// the instance's own protocol state below the low-water mark has been
    /// garbage-collected. The hosting replica uses the certificate to
    /// truncate its partial/global logs and to anchor state snapshots.
    StableCheckpoint {
        /// The quorum-certified checkpoint.
        checkpoint: StableCheckpoint,
    },
}

impl SbAction {
    /// Convenience accessor: the delivered block, if this is a delivery.
    pub fn as_delivery(&self) -> Option<&SharedBlock> {
        match self {
            SbAction::Deliver { block } => Some(block),
            _ => None,
        }
    }

    /// Is this an outgoing-network action (send or broadcast)?
    pub fn is_network(&self) -> bool {
        matches!(self, SbAction::Send { .. } | SbAction::Broadcast { .. })
    }
}

/// Helper for accumulating actions inside the instance implementation.
#[derive(Debug, Default)]
pub(crate) struct ActionSink {
    actions: Vec<SbAction>,
}

impl ActionSink {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    #[allow(dead_code)] // kept for targeted messages (e.g. state transfer)
    pub(crate) fn send(&mut self, to: ReplicaId, msg: SbMessage) {
        self.actions.push(SbAction::Send { to, msg });
    }

    pub(crate) fn broadcast(&mut self, msg: SbMessage) {
        self.actions.push(SbAction::Broadcast { msg });
    }

    pub(crate) fn deliver(&mut self, block: SharedBlock) {
        self.actions.push(SbAction::Deliver { block });
    }

    pub(crate) fn view_changed(&mut self, view: View, leader: ReplicaId) {
        self.actions.push(SbAction::ViewChanged { view, leader });
    }

    pub(crate) fn stable_checkpoint(&mut self, checkpoint: StableCheckpoint) {
        self.actions.push(SbAction::StableCheckpoint { checkpoint });
    }

    pub(crate) fn into_vec(self) -> Vec<SbAction> {
        self.actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_types::{Block, BlockParams, Epoch, InstanceId, Rank, SeqNum, SystemState};
    use std::sync::Arc;

    fn block() -> SharedBlock {
        Arc::new(Block::no_op(BlockParams {
            instance: InstanceId::new(0),
            sn: SeqNum::new(0),
            epoch: Epoch::new(0),
            view: View::new(0),
            proposer: ReplicaId::new(0),
            rank: Rank::new(0),
            state: SystemState::new(1),
        }))
    }

    #[test]
    fn sink_collects_in_order() {
        let checkpoint = StableCheckpoint {
            instance: InstanceId::new(0),
            seq: SeqNum::new(3),
            state_digest: orthrus_types::Digest::EMPTY,
            proof: orthrus_types::CheckpointProof {
                voters: vec![ReplicaId::new(0), ReplicaId::new(1), ReplicaId::new(2)],
            },
        };
        let mut sink = ActionSink::new();
        sink.broadcast(SbMessage::PrePrepare { block: block() });
        sink.deliver(block());
        sink.view_changed(View::new(1), ReplicaId::new(1));
        sink.stable_checkpoint(checkpoint.clone());
        let actions = sink.into_vec();
        assert_eq!(actions.len(), 4);
        assert!(actions[0].is_network());
        assert!(actions[1].as_delivery().is_some());
        assert!(!actions[2].is_network());
        assert_eq!(actions[3], SbAction::StableCheckpoint { checkpoint });
    }

    #[test]
    fn delivery_accessor() {
        let d = SbAction::Deliver { block: block() };
        assert!(d.as_delivery().is_some());
        let v = SbAction::ViewChanged {
            view: View::new(1),
            leader: ReplicaId::new(0),
        };
        assert!(v.as_delivery().is_none());
    }
}
