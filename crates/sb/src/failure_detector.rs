//! Failure detection policy for sequenced-broadcast instances.
//!
//! The paper integrates a failure-detection module (view-change mechanism)
//! into the SB protocol (§V-B): replicas suspect a leader that stops making
//! progress, that censors transactions, or that proposes blocks referencing
//! an invalid state, and then vote to replace it.
//!
//! [`ProgressTracker`] implements the *timing* half of that policy on the
//! hosting replica: it remembers, per instance, when progress was last
//! observed and when a suspicion timer should next fire. The protocol half
//! (what counts as progress, censorship detection) lives with the hosting
//! replica, which calls [`ProgressTracker::record_progress`] whenever an
//! instance delivers a block or completes a view change, and
//! [`ProgressTracker::record_expectation`] whenever it knows the instance
//! *should* make progress (e.g. its bucket is non-empty).

use orthrus_types::{Duration, InstanceId, SimTime};
use std::collections::HashMap;

/// Per-instance progress bookkeeping used to drive view-change timeouts.
#[derive(Debug, Clone)]
pub struct ProgressTracker {
    timeout: Duration,
    entries: HashMap<InstanceId, Entry>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    /// Last time the instance delivered a block or finished a view change.
    last_progress: SimTime,
    /// Whether the hosting replica currently expects the instance to make
    /// progress (it has pending transactions or in-flight proposals).
    expecting: bool,
    /// Time at which the expectation started (suspicion is measured from the
    /// later of this and `last_progress`).
    expecting_since: SimTime,
}

impl ProgressTracker {
    /// Create a tracker with the given suspicion timeout (the paper's
    /// evaluation uses a 10 s PBFT view-change timeout).
    pub fn new(timeout: Duration) -> Self {
        Self {
            timeout,
            entries: HashMap::new(),
        }
    }

    /// The configured suspicion timeout.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Record that `instance` made progress at `now` (delivered a block or
    /// completed a view change). Clears any running suspicion.
    pub fn record_progress(&mut self, instance: InstanceId, now: SimTime) {
        let entry = self.entries.entry(instance).or_default();
        entry.last_progress = now;
        entry.expecting_since = now;
    }

    /// Record that the hosting replica expects `instance` to make progress
    /// (its bucket holds transactions, or a proposal is in flight).
    pub fn record_expectation(&mut self, instance: InstanceId, now: SimTime) {
        let entry = self.entries.entry(instance).or_default();
        if !entry.expecting {
            entry.expecting = true;
            entry.expecting_since = now;
        }
    }

    /// Clear the expectation for `instance` (its bucket drained).
    pub fn clear_expectation(&mut self, instance: InstanceId) {
        if let Some(entry) = self.entries.get_mut(&instance) {
            entry.expecting = false;
        }
    }

    /// Should the hosting replica suspect the leader of `instance` at `now`?
    ///
    /// True when progress has been expected for longer than the timeout with
    /// nothing delivered in the meantime.
    pub fn should_suspect(&self, instance: InstanceId, now: SimTime) -> bool {
        let Some(entry) = self.entries.get(&instance) else {
            return false;
        };
        if !entry.expecting {
            return false;
        }
        let reference = entry.last_progress.max(entry.expecting_since);
        now.saturating_since(reference) >= self.timeout
    }

    /// Earliest future time at which [`Self::should_suspect`] could become
    /// true for `instance`, or `None` when no suspicion is pending. The host
    /// uses this to arm its timer.
    pub fn next_deadline(&self, instance: InstanceId) -> Option<SimTime> {
        let entry = self.entries.get(&instance)?;
        if !entry.expecting {
            return None;
        }
        let reference = entry.last_progress.max(entry.expecting_since);
        Some(reference + self.timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn no_expectation_means_no_suspicion() {
        let tracker = ProgressTracker::new(Duration::from_secs(10));
        assert!(!tracker.should_suspect(InstanceId::new(0), at(100)));
        assert_eq!(tracker.next_deadline(InstanceId::new(0)), None);
    }

    #[test]
    fn suspicion_fires_after_timeout() {
        let mut tracker = ProgressTracker::new(Duration::from_secs(10));
        let i = InstanceId::new(0);
        tracker.record_expectation(i, at(5));
        assert!(!tracker.should_suspect(i, at(14)));
        assert!(tracker.should_suspect(i, at(15)));
        assert_eq!(tracker.next_deadline(i), Some(at(15)));
    }

    #[test]
    fn progress_resets_the_clock() {
        let mut tracker = ProgressTracker::new(Duration::from_secs(10));
        let i = InstanceId::new(0);
        tracker.record_expectation(i, at(0));
        tracker.record_progress(i, at(9));
        assert!(!tracker.should_suspect(i, at(15)));
        assert!(tracker.should_suspect(i, at(19)));
    }

    #[test]
    fn clearing_the_expectation_stops_suspicion() {
        let mut tracker = ProgressTracker::new(Duration::from_secs(10));
        let i = InstanceId::new(0);
        tracker.record_expectation(i, at(0));
        tracker.clear_expectation(i);
        assert!(!tracker.should_suspect(i, at(100)));
        assert_eq!(tracker.next_deadline(i), None);
    }

    #[test]
    fn repeated_expectations_do_not_extend_the_deadline() {
        let mut tracker = ProgressTracker::new(Duration::from_secs(10));
        let i = InstanceId::new(0);
        tracker.record_expectation(i, at(0));
        tracker.record_expectation(i, at(8));
        // The deadline is still measured from the first expectation.
        assert!(tracker.should_suspect(i, at(10)));
    }

    #[test]
    fn instances_are_independent() {
        let mut tracker = ProgressTracker::new(Duration::from_secs(10));
        tracker.record_expectation(InstanceId::new(0), at(0));
        tracker.record_expectation(InstanceId::new(1), at(9));
        assert!(tracker.should_suspect(InstanceId::new(0), at(12)));
        assert!(!tracker.should_suspect(InstanceId::new(1), at(12)));
    }
}
