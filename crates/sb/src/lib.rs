//! # orthrus-sb
//!
//! Sequenced broadcast (SB): the consensus primitive underneath every
//! Multi-BFT instance (paper §III-C).
//!
//! An SB instance takes blocks from its leader and *delivers* them to every
//! honest replica with two guarantees the rest of the system builds on:
//!
//! * **Agreement** — all honest replicas deliver the same block for a given
//!   sequence number;
//! * **Termination** — every sequence number is eventually delivered (a
//!   failure detector replaces leaders that stop making progress).
//!
//! The crate provides:
//!
//! * [`messages`] — the PBFT wire vocabulary (pre-prepare / prepare / commit,
//!   checkpoints, view-change / new-view);
//! * [`actions`] — the IO-free action list returned by the state machine;
//! * [`pbft`] — the [`pbft::PbftInstance`] state machine itself (normal case,
//!   checkpointing, view change), used as the SB implementation exactly as
//!   the paper's evaluation does;
//! * [`failure_detector`] — the timing policy deciding when the hosting
//!   replica should suspect an instance's leader;
//! * [`cluster`] — an in-memory cluster harness for protocol-level tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actions;
pub mod cluster;
pub mod failure_detector;
pub mod messages;
pub mod pbft;

pub use actions::SbAction;
pub use cluster::LocalCluster;
pub use failure_detector::ProgressTracker;
pub use messages::{PreparedProof, SbMessage};
pub use pbft::{PbftConfig, PbftInstance};
