//! PBFT-based sequenced broadcast (SB) instance.
//!
//! One [`PbftInstance`] realises the paper's SB abstraction (§III-C) for a
//! single instance index: the instance's leader broadcasts blocks with
//! increasing sequence numbers and all replicas cooperate to *deliver* every
//! sequence number, with the agreement and termination properties the paper
//! relies on. Internally this is textbook PBFT:
//!
//! * normal case: pre-prepare → prepare (quorum `2f+1` attestations,
//!   counting the leader's pre-prepare) → commit (quorum `2f+1`) → in-order
//!   delivery;
//! * checkpoints every `checkpoint_interval` deliveries, garbage-collecting
//!   older slots once `2f+1` matching checkpoint votes arrive;
//! * view change: on a timeout (raised by the hosting replica's failure
//!   detector) replicas vote to move to the next view; the new leader
//!   collects `2f+1` votes, re-proposes any prepared-but-undelivered blocks
//!   and announces the new view.
//!
//! The state machine is IO-free: every entry point returns [`SbAction`]s that
//! the hosting replica turns into network sends, deliveries into the
//! partial/global logs, or bookkeeping.

use crate::actions::{ActionSink, SbAction};
use crate::messages::{PreparedProof, SbMessage};
use orthrus_types::{
    CheckpointProof, Digest, InstanceId, ReplicaId, SeqNum, SharedBlock, SimTime, StableCheckpoint,
    View,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Static configuration of one PBFT instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PbftConfig {
    /// Which SB instance this is.
    pub instance: InstanceId,
    /// The replica hosting this state machine.
    pub me: ReplicaId,
    /// Total number of replicas `n`.
    pub num_replicas: u32,
    /// Deliveries between checkpoints.
    pub checkpoint_interval: u64,
}

impl PbftConfig {
    /// Maximum number of faulty replicas tolerated.
    pub fn f(&self) -> u32 {
        (self.num_replicas - 1) / 3
    }

    /// Quorum size `2f + 1`.
    pub fn quorum(&self) -> usize {
        (2 * self.f() + 1) as usize
    }

    /// Leader of `view` for this instance: rotates round-robin starting from
    /// the replica whose id equals the instance index.
    pub fn leader_of(&self, view: View) -> ReplicaId {
        let base = u64::from(self.instance.value());
        ReplicaId::new(((base + view.value()) % u64::from(self.num_replicas)) as u32)
    }
}

/// Per-sequence-number voting state.
#[derive(Debug, Default, Clone)]
struct Slot {
    proposal: Option<SharedBlock>,
    digest: Option<Digest>,
    /// Replicas attesting to the proposal (leader via pre-prepare, others via
    /// prepare votes).
    prepares: BTreeSet<ReplicaId>,
    commits: BTreeSet<ReplicaId>,
    sent_commit: bool,
    delivered: bool,
}

impl Slot {
    fn accepts_digest(&self, digest: Digest) -> bool {
        self.digest.is_none_or(|d| d == digest)
    }
}

/// A PBFT sequenced-broadcast instance.
///
/// `Clone` exists for the state-transfer path: a recovering replica adopts a
/// peer's observed protocol state wholesale (proposals and votes are
/// observations of the same broadcast stream, so an honest peer's clone is a
/// valid local state) and then [`PbftInstance::rebind`]s it to its own id.
#[derive(Debug, Clone)]
pub struct PbftInstance {
    cfg: PbftConfig,
    view: View,
    in_view_change: bool,
    slots: BTreeMap<SeqNum, Slot>,
    next_delivery: SeqNum,
    next_propose: SeqNum,
    delivered_digest: Digest,
    delivered_count: u64,
    checkpoint_votes: BTreeMap<SeqNum, BTreeMap<ReplicaId, Digest>>,
    stable_checkpoint: Option<StableCheckpoint>,
    view_change_votes: BTreeMap<View, BTreeMap<ReplicaId, Vec<PreparedProof>>>,
    last_progress: SimTime,
}

impl PbftInstance {
    /// Create a fresh instance in view 0.
    pub fn new(cfg: PbftConfig) -> Self {
        Self {
            cfg,
            view: View::new(0),
            in_view_change: false,
            slots: BTreeMap::new(),
            next_delivery: SeqNum::new(0),
            next_propose: SeqNum::new(0),
            delivered_digest: Digest::EMPTY,
            delivered_count: 0,
            checkpoint_votes: BTreeMap::new(),
            stable_checkpoint: None,
            view_change_votes: BTreeMap::new(),
            last_progress: SimTime::ZERO,
        }
    }

    /// The instance's configuration.
    pub fn config(&self) -> &PbftConfig {
        &self.cfg
    }

    /// The view currently in force.
    pub fn current_view(&self) -> View {
        self.view
    }

    /// The leader of the current view.
    pub fn current_leader(&self) -> ReplicaId {
        self.cfg.leader_of(self.view)
    }

    /// Is the hosting replica the leader of the current view (and not in the
    /// middle of a view change)?
    pub fn is_leader(&self) -> bool {
        !self.in_view_change && self.current_leader() == self.cfg.me
    }

    /// Is a view change in progress?
    pub fn in_view_change(&self) -> bool {
        self.in_view_change
    }

    /// Sequence number the leader should use for its next proposal.
    pub fn next_propose_sn(&self) -> SeqNum {
        self.next_propose
    }

    /// Highest sequence number delivered so far (None if nothing yet).
    pub fn last_delivered(&self) -> Option<SeqNum> {
        if self.next_delivery.value() == 0 {
            None
        } else {
            Some(SeqNum::new(self.next_delivery.value() - 1))
        }
    }

    /// Number of blocks delivered by this instance.
    pub fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    /// Sequence number of the latest stable checkpoint, if any.
    pub fn stable_checkpoint(&self) -> Option<SeqNum> {
        self.stable_checkpoint.as_ref().map(|c| c.seq)
    }

    /// The latest stable-checkpoint certificate, if one has formed: the
    /// quorum of matching votes is retained as a [`StableCheckpoint`] proof
    /// instead of being counted and dropped.
    pub fn latest_stable_checkpoint(&self) -> Option<&StableCheckpoint> {
        self.stable_checkpoint.as_ref()
    }

    /// Number of per-sequence-number slots currently retained (delivered
    /// slots above the low-water mark plus in-flight proposals). Feeds the
    /// replica's retained-entry accounting.
    pub fn retained_slots(&self) -> usize {
        self.slots.len()
    }

    /// Rebind the instance's host identity after adopting a peer's cloned
    /// state during state transfer. Only the identity changes — the observed
    /// proposals, votes and checkpoints carry over verbatim.
    pub fn rebind(&mut self, me: ReplicaId) {
        self.cfg.me = me;
    }

    /// Virtual time of the last delivery or view change, used by the hosting
    /// replica's failure detector.
    pub fn last_progress(&self) -> SimTime {
        self.last_progress
    }

    /// Rolling digest over the delivered prefix (checkpoint material).
    pub fn delivery_digest(&self) -> Digest {
        self.delivered_digest
    }

    // ------------------------------------------------------------------
    // Leader path
    // ------------------------------------------------------------------

    /// Propose `block` as the leader of the current view. The block must
    /// carry this instance's id, the current view and the sequence number
    /// returned by [`Self::next_propose_sn`]. The handle is shared: the slot
    /// buffer keeps one reference and the broadcast moves the other, so no
    /// transaction payload is copied on the leader's hot path.
    pub fn propose(&mut self, block: SharedBlock, now: SimTime) -> Vec<SbAction> {
        let mut sink = ActionSink::new();
        if !self.is_leader() {
            return sink.into_vec();
        }
        if block.header.instance != self.cfg.instance
            || block.header.view != self.view
            || block.header.sn != self.next_propose
        {
            return sink.into_vec();
        }
        let sn = block.header.sn;
        let digest = block.digest();
        self.next_propose = sn.next();
        {
            let slot = self.slots.entry(sn).or_default();
            slot.proposal = Some(Arc::clone(&block));
            slot.digest = Some(digest);
            // The pre-prepare counts as the leader's attestation.
            slot.prepares.insert(self.cfg.me);
        }
        sink.broadcast(SbMessage::PrePrepare { block });
        self.check_prepared(sn, &mut sink);
        self.try_deliver(now, &mut sink);
        sink.into_vec()
    }

    // ------------------------------------------------------------------
    // Message handling
    // ------------------------------------------------------------------

    /// Handle a PBFT message addressed to this instance.
    pub fn handle_message(
        &mut self,
        from: ReplicaId,
        msg: SbMessage,
        now: SimTime,
    ) -> Vec<SbAction> {
        let mut sink = ActionSink::new();
        if msg.instance() != self.cfg.instance {
            return sink.into_vec();
        }
        match msg {
            SbMessage::PrePrepare { block } => self.on_pre_prepare(from, block, now, &mut sink),
            SbMessage::Prepare {
                view,
                sn,
                digest,
                voter,
                ..
            } => self.on_prepare(voter, view, sn, digest, now, &mut sink),
            SbMessage::Commit {
                view,
                sn,
                digest,
                voter,
                ..
            } => self.on_commit(voter, view, sn, digest, now, &mut sink),
            SbMessage::Checkpoint {
                sn, digest, voter, ..
            } => self.on_checkpoint(voter, sn, digest, &mut sink),
            SbMessage::ViewChange {
                new_view,
                prepared,
                voter,
                ..
            } => self.on_view_change(voter, new_view, prepared, now, &mut sink),
            SbMessage::NewView {
                new_view,
                reproposals,
                ..
            } => self.on_new_view(from, new_view, reproposals, now, &mut sink),
        }
        sink.into_vec()
    }

    /// The hosting replica's failure detector suspects the current leader:
    /// vote to move to the next view.
    pub fn on_timeout(&mut self, now: SimTime) -> Vec<SbAction> {
        let mut sink = ActionSink::new();
        let target = self.view.next();
        self.start_view_change(target, now, &mut sink);
        sink.into_vec()
    }

    // ------------------------------------------------------------------
    // Normal case
    // ------------------------------------------------------------------

    fn on_pre_prepare(
        &mut self,
        from: ReplicaId,
        block: SharedBlock,
        now: SimTime,
        sink: &mut ActionSink,
    ) {
        if self.in_view_change {
            return;
        }
        if block.header.view != self.view || from != self.current_leader() {
            return;
        }
        if block.header.proposer != from || block.verify().is_err() {
            return;
        }
        let sn = block.header.sn;
        if sn < self.next_delivery {
            return; // already delivered
        }
        let digest = block.digest();
        let me = self.cfg.me;
        let leader = self.current_leader();
        let view = self.view;
        let instance = self.cfg.instance;
        let mut broadcast_prepare = false;
        {
            let slot = self.slots.entry(sn).or_default();
            if let Some(existing) = slot.digest {
                if existing != digest {
                    // Equivocation or conflict with an already-voted digest:
                    // ignore the later proposal.
                    return;
                }
            }
            if slot.proposal.is_none() {
                slot.proposal = Some(block);
                slot.digest = Some(digest);
            }
            // Leader's pre-prepare and our own prepare both attest.
            slot.prepares.insert(leader);
            if slot.prepares.insert(me) {
                broadcast_prepare = true;
            }
        }
        if broadcast_prepare && me != leader {
            sink.broadcast(SbMessage::Prepare {
                instance,
                view,
                sn,
                digest,
                voter: me,
            });
        }
        self.check_prepared(sn, sink);
        self.try_deliver(now, sink);
    }

    fn on_prepare(
        &mut self,
        voter: ReplicaId,
        view: View,
        sn: SeqNum,
        digest: Digest,
        now: SimTime,
        sink: &mut ActionSink,
    ) {
        if view != self.view || self.in_view_change || sn < self.next_delivery {
            return;
        }
        {
            let slot = self.slots.entry(sn).or_default();
            if !slot.accepts_digest(digest) {
                return;
            }
            if slot.digest.is_none() {
                slot.digest = Some(digest);
            }
            slot.prepares.insert(voter);
        }
        self.check_prepared(sn, sink);
        self.try_deliver(now, sink);
    }

    fn on_commit(
        &mut self,
        voter: ReplicaId,
        view: View,
        sn: SeqNum,
        digest: Digest,
        now: SimTime,
        sink: &mut ActionSink,
    ) {
        if view != self.view || self.in_view_change || sn < self.next_delivery {
            return;
        }
        {
            let slot = self.slots.entry(sn).or_default();
            if !slot.accepts_digest(digest) {
                return;
            }
            slot.commits.insert(voter);
        }
        self.check_prepared(sn, sink);
        self.try_deliver(now, sink);
    }

    /// If the slot has a proposal and a prepare quorum, move to the commit
    /// phase (once).
    fn check_prepared(&mut self, sn: SeqNum, sink: &mut ActionSink) {
        let quorum = self.cfg.quorum();
        let me = self.cfg.me;
        let view = self.view;
        let instance = self.cfg.instance;
        let Some(slot) = self.slots.get_mut(&sn) else {
            return;
        };
        if slot.proposal.is_none() || slot.sent_commit {
            return;
        }
        if slot.prepares.len() >= quorum {
            slot.sent_commit = true;
            slot.commits.insert(me);
            let digest = slot.digest.expect("proposal implies digest");
            sink.broadcast(SbMessage::Commit {
                instance,
                view,
                sn,
                digest,
                voter: me,
            });
        }
    }

    /// Deliver committed slots in sequence-number order.
    fn try_deliver(&mut self, now: SimTime, sink: &mut ActionSink) {
        let quorum = self.cfg.quorum();
        loop {
            let sn = self.next_delivery;
            let ready = match self.slots.get(&sn) {
                Some(slot) => {
                    slot.proposal.is_some()
                        && slot.sent_commit
                        && slot.commits.len() >= quorum
                        && !slot.delivered
                }
                None => false,
            };
            if !ready {
                break;
            }
            let slot = self.slots.get_mut(&sn).expect("checked above");
            slot.delivered = true;
            let block = slot
                .proposal
                .as_ref()
                .map(Arc::clone)
                .expect("checked above");
            self.delivered_digest = self.delivered_digest.combine(block.digest());
            self.delivered_count += 1;
            self.next_delivery = sn.next();
            if self.next_propose < self.next_delivery {
                self.next_propose = self.next_delivery;
            }
            self.last_progress = now;
            sink.deliver(block);
            self.maybe_checkpoint(sink);
        }
    }

    // ------------------------------------------------------------------
    // Checkpoints
    // ------------------------------------------------------------------

    fn maybe_checkpoint(&mut self, sink: &mut ActionSink) {
        let interval = self.cfg.checkpoint_interval.max(1);
        if self.next_delivery.value() == 0 || !self.next_delivery.value().is_multiple_of(interval) {
            return;
        }
        let sn = SeqNum::new(self.next_delivery.value() - 1);
        let digest = self.delivered_digest;
        let me = self.cfg.me;
        sink.broadcast(SbMessage::Checkpoint {
            instance: self.cfg.instance,
            sn,
            digest,
            voter: me,
        });
        self.record_checkpoint_vote(me, sn, digest, sink);
    }

    fn on_checkpoint(
        &mut self,
        voter: ReplicaId,
        sn: SeqNum,
        digest: Digest,
        sink: &mut ActionSink,
    ) {
        self.record_checkpoint_vote(voter, sn, digest, sink);
    }

    fn record_checkpoint_vote(
        &mut self,
        voter: ReplicaId,
        sn: SeqNum,
        digest: Digest,
        sink: &mut ActionSink,
    ) {
        if let Some(stable) = &self.stable_checkpoint {
            if sn <= stable.seq {
                return;
            }
        }
        let votes = self.checkpoint_votes.entry(sn).or_default();
        votes.insert(voter, digest);
        let voters: Vec<ReplicaId> = votes
            .iter()
            .filter(|(_, d)| **d == digest)
            .map(|(r, _)| *r)
            .collect();
        if voters.len() >= self.cfg.quorum() {
            // The quorum of matching votes *is* the certificate: surface it
            // instead of counting and dropping it, so the ordering and
            // execution layers above can truncate on, snapshot at, and
            // state-transfer from this checkpoint.
            let checkpoint = StableCheckpoint {
                instance: self.cfg.instance,
                seq: sn,
                state_digest: digest,
                proof: CheckpointProof { voters },
            };
            self.stable_checkpoint = Some(checkpoint.clone());
            // Garbage-collect below the low-water mark: delivered slots
            // covered by the checkpoint and stale checkpoint tallies.
            self.slots
                .retain(|slot_sn, slot| *slot_sn > sn || !slot.delivered);
            self.checkpoint_votes.retain(|vote_sn, _| *vote_sn > sn);
            sink.stable_checkpoint(checkpoint);
        }
    }

    // ------------------------------------------------------------------
    // View change
    // ------------------------------------------------------------------

    fn prepared_proofs(&self) -> Vec<PreparedProof> {
        self.slots
            .iter()
            .filter(|(sn, slot)| {
                **sn >= self.next_delivery && slot.sent_commit && slot.proposal.is_some()
            })
            .map(|(sn, slot)| PreparedProof {
                sn: *sn,
                block: slot
                    .proposal
                    .as_ref()
                    .map(Arc::clone)
                    .expect("filtered on proposal"),
            })
            .collect()
    }

    fn start_view_change(&mut self, target: View, now: SimTime, sink: &mut ActionSink) {
        if target <= self.view && self.in_view_change {
            return;
        }
        let target = if target > self.view {
            target
        } else {
            self.view.next()
        };
        self.view = target;
        self.in_view_change = true;
        self.last_progress = now;
        let prepared = self.prepared_proofs();
        let me = self.cfg.me;
        sink.broadcast(SbMessage::ViewChange {
            instance: self.cfg.instance,
            new_view: target,
            last_delivered: self.last_delivered(),
            prepared: prepared.clone(),
            voter: me,
        });
        self.record_view_change_vote(me, target, prepared, now, sink);
    }

    fn on_view_change(
        &mut self,
        voter: ReplicaId,
        new_view: View,
        prepared: Vec<PreparedProof>,
        now: SimTime,
        sink: &mut ActionSink,
    ) {
        if new_view < self.view || (new_view == self.view && !self.in_view_change) {
            // Stale: we are already past that view.
            return;
        }
        self.record_view_change_vote(voter, new_view, prepared, now, sink);

        // Join the view change once f + 1 replicas vouch for it, even if our
        // own timer has not fired (standard PBFT liveness amplification).
        let votes = self
            .view_change_votes
            .get(&new_view)
            .map(|v| v.len())
            .unwrap_or(0);
        let joined = self
            .view_change_votes
            .get(&new_view)
            .map(|v| v.contains_key(&self.cfg.me))
            .unwrap_or(false);
        if !joined && votes > self.cfg.f() as usize && new_view > self.view {
            self.view = new_view;
            self.in_view_change = true;
            let prepared = self.prepared_proofs();
            let me = self.cfg.me;
            sink.broadcast(SbMessage::ViewChange {
                instance: self.cfg.instance,
                new_view,
                last_delivered: self.last_delivered(),
                prepared: prepared.clone(),
                voter: me,
            });
            self.record_view_change_vote(me, new_view, prepared, now, sink);
        }
    }

    fn record_view_change_vote(
        &mut self,
        voter: ReplicaId,
        new_view: View,
        prepared: Vec<PreparedProof>,
        now: SimTime,
        sink: &mut ActionSink,
    ) {
        let votes = self.view_change_votes.entry(new_view).or_default();
        votes.insert(voter, prepared);
        let have = votes.len();
        let i_am_new_leader = self.cfg.leader_of(new_view) == self.cfg.me;
        if i_am_new_leader
            && have >= self.cfg.quorum()
            && (self.in_view_change || new_view > self.view)
        {
            // Collect the highest prepared block per sequence number from the
            // quorum of view-change votes.
            let mut reproposals: BTreeMap<SeqNum, SharedBlock> = BTreeMap::new();
            if let Some(votes) = self.view_change_votes.get(&new_view) {
                for proofs in votes.values() {
                    for proof in proofs {
                        reproposals
                            .entry(proof.sn)
                            .or_insert_with(|| Arc::clone(&proof.block));
                    }
                }
            }
            let supporters: Vec<ReplicaId> = self
                .view_change_votes
                .get(&new_view)
                .map(|v| v.keys().copied().collect())
                .unwrap_or_default();
            let reproposals: Vec<SharedBlock> = reproposals.into_values().collect();
            sink.broadcast(SbMessage::NewView {
                instance: self.cfg.instance,
                new_view,
                supporters,
                reproposals: reproposals.clone(),
            });
            self.enter_new_view(new_view, reproposals, now, sink);
        }
    }

    fn on_new_view(
        &mut self,
        from: ReplicaId,
        new_view: View,
        reproposals: Vec<SharedBlock>,
        now: SimTime,
        sink: &mut ActionSink,
    ) {
        if new_view < self.view || (new_view == self.view && !self.in_view_change) {
            return;
        }
        if from != self.cfg.leader_of(new_view) {
            return;
        }
        self.enter_new_view(new_view, reproposals, now, sink);
    }

    fn enter_new_view(
        &mut self,
        new_view: View,
        reproposals: Vec<SharedBlock>,
        now: SimTime,
        sink: &mut ActionSink,
    ) {
        self.view = new_view;
        self.in_view_change = false;
        self.last_progress = now;
        // Vote bookkeeping for views at or below the one now entered is below
        // the low-water mark of the view-change protocol: stale votes are
        // ignored on arrival, so retaining the tallies only leaks memory.
        self.view_change_votes.retain(|view, _| *view > new_view);
        let me = self.cfg.me;
        let leader = self.cfg.leader_of(new_view);

        // Drop voting state of undelivered, uncommitted slots: they will be
        // re-proposed (either from the carried reproposals or from the new
        // leader's bucket).
        self.slots.retain(|sn, slot| {
            *sn < self.next_delivery
                || slot.delivered
                || (slot.sent_commit && slot.commits.len() >= self.cfg.quorum())
        });

        let mut highest = self.next_delivery;
        for block in reproposals {
            let sn = block.header.sn;
            if sn < self.next_delivery {
                continue;
            }
            if sn >= highest {
                highest = sn.next();
            }
            let digest = block.digest();
            let slot = self.slots.entry(sn).or_default();
            if slot.delivered {
                continue;
            }
            if slot.digest.is_some() && slot.digest != Some(digest) {
                // Keep whatever we already committed; ignore the reproposal.
                if slot.sent_commit {
                    continue;
                }
                slot.prepares.clear();
                slot.commits.clear();
                slot.sent_commit = false;
            }
            slot.proposal = Some(block);
            slot.digest = Some(digest);
            slot.prepares.insert(leader);
            if slot.prepares.insert(me) && me != leader {
                sink.broadcast(SbMessage::Prepare {
                    instance: self.cfg.instance,
                    view: new_view,
                    sn,
                    digest,
                    voter: me,
                });
            }
        }
        if self.next_propose < highest {
            self.next_propose = highest;
        }
        sink.view_changed(new_view, leader);
        // A prepare quorum may already exist for re-proposed slots.
        let sns: Vec<SeqNum> = self.slots.keys().copied().collect();
        for sn in sns {
            self.check_prepared(sn, sink);
        }
        self.try_deliver(now, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::LocalCluster;
    use orthrus_types::{
        Block, BlockParams, ClientId, Epoch, Rank, SystemState, Transaction, TxId,
    };

    fn cfg(me: u32, n: u32) -> PbftConfig {
        PbftConfig {
            instance: InstanceId::new(0),
            me: ReplicaId::new(me),
            num_replicas: n,
            checkpoint_interval: 4,
        }
    }

    fn make_block(instance: u32, sn: u64, view: u64, proposer: u32, ntx: u64) -> SharedBlock {
        let txs: Vec<Transaction> = (0..ntx)
            .map(|i| {
                Transaction::payment(
                    TxId::new(ClientId::new(sn * 1000 + i), 0),
                    ClientId::new(sn * 1000 + i),
                    ClientId::new(sn * 1000 + i + 1),
                    1,
                )
            })
            .collect();
        Arc::new(Block::new(
            BlockParams {
                instance: InstanceId::new(instance),
                sn: SeqNum::new(sn),
                epoch: Epoch::new(0),
                view: View::new(view),
                proposer: ReplicaId::new(proposer),
                rank: Rank::new(sn),
                state: SystemState::new(4),
            },
            txs,
        ))
    }

    #[test]
    fn config_quorums() {
        let c = cfg(0, 4);
        assert_eq!(c.f(), 1);
        assert_eq!(c.quorum(), 3);
        assert_eq!(c.leader_of(View::new(0)), ReplicaId::new(0));
        assert_eq!(c.leader_of(View::new(1)), ReplicaId::new(1));
        let c7 = PbftConfig {
            instance: InstanceId::new(3),
            ..cfg(0, 7)
        };
        assert_eq!(c7.leader_of(View::new(0)), ReplicaId::new(3));
        assert_eq!(c7.leader_of(View::new(5)), ReplicaId::new(1));
    }

    #[test]
    fn leader_cannot_propose_wrong_sequence() {
        let mut leader = PbftInstance::new(cfg(0, 4));
        let wrong_sn = make_block(0, 5, 0, 0, 1);
        assert!(leader.propose(wrong_sn, SimTime::ZERO).is_empty());
        let wrong_instance = make_block(1, 0, 0, 0, 1);
        assert!(leader.propose(wrong_instance, SimTime::ZERO).is_empty());
    }

    #[test]
    fn backup_cannot_propose() {
        let mut backup = PbftInstance::new(cfg(1, 4));
        let block = make_block(0, 0, 0, 1, 1);
        assert!(backup.propose(block, SimTime::ZERO).is_empty());
        assert!(!backup.is_leader());
    }

    #[test]
    fn four_replicas_deliver_a_block() {
        let mut cluster = LocalCluster::new(InstanceId::new(0), 4, 4);
        let block = make_block(0, 0, 0, 0, 3);
        cluster.propose(ReplicaId::new(0), Arc::clone(&block));
        cluster.run();
        for r in 0..4 {
            let delivered = cluster.delivered(ReplicaId::new(r));
            assert_eq!(delivered.len(), 1, "replica {r} delivered {delivered:?}");
            assert_eq!(delivered[0].digest(), block.digest());
        }
    }

    #[test]
    fn deliveries_are_in_order_even_with_reordered_messages() {
        // Propose three blocks; the cluster's router delivers messages in
        // round-robin order which interleaves the instances' phases.
        let mut cluster = LocalCluster::new(InstanceId::new(0), 4, 4);
        for sn in 0..3 {
            let block = make_block(0, sn, 0, 0, 1);
            cluster.propose(ReplicaId::new(0), block);
        }
        cluster.run();
        for r in 0..4 {
            let delivered = cluster.delivered(ReplicaId::new(r));
            let sns: Vec<u64> = delivered.iter().map(|b| b.header.sn.value()).collect();
            assert_eq!(sns, vec![0, 1, 2]);
        }
    }

    #[test]
    fn checkpoint_becomes_stable_and_garbage_collects() {
        let mut cluster = LocalCluster::new(InstanceId::new(0), 4, 2);
        for sn in 0..4 {
            cluster.propose(ReplicaId::new(0), make_block(0, sn, 0, 0, 1));
        }
        cluster.run();
        for r in 0..4 {
            let inst = cluster.instance(ReplicaId::new(r));
            assert_eq!(inst.delivered_count(), 4);
            assert_eq!(inst.stable_checkpoint(), Some(SeqNum::new(3)));
            // Delivered slots up to the checkpoint were garbage collected.
            assert!(inst.slots.keys().all(|sn| sn.value() > 3));
            assert!(inst.retained_slots() <= 1);
        }
    }

    #[test]
    fn stable_checkpoints_carry_quorum_certificates() {
        let mut cluster = LocalCluster::new(InstanceId::new(0), 4, 2);
        for sn in 0..4 {
            cluster.propose(ReplicaId::new(0), make_block(0, sn, 0, 0, 1));
        }
        cluster.run();
        for r in 0..4 {
            let replica = ReplicaId::new(r);
            let certs = cluster.stable_checkpoints(replica);
            // Checkpoint interval 2 over 4 deliveries: sn 1 and sn 3.
            let seqs: Vec<u64> = certs.iter().map(|c| c.seq.value()).collect();
            assert_eq!(seqs, vec![1, 3], "replica {r}");
            let quorum = cluster.instance(replica).config().quorum();
            for cert in certs {
                assert_eq!(cert.instance, InstanceId::new(0));
                assert!(cert.verify(quorum), "replica {r}: thin proof {cert:?}");
            }
            // The latest certificate is retained on the instance and matches
            // the delivered-prefix digest every honest replica computed.
            let latest = cluster
                .instance(replica)
                .latest_stable_checkpoint()
                .expect("checkpoint formed");
            assert_eq!(latest.seq, SeqNum::new(3));
            assert_eq!(
                latest.state_digest,
                cluster.instance(replica).delivery_digest()
            );
            assert_eq!(latest.low_water_mark(), SeqNum::new(4));
        }
    }

    #[test]
    fn cloned_instance_rebinds_to_a_new_host() {
        let mut cluster = LocalCluster::new(InstanceId::new(0), 4, 4);
        cluster.propose(ReplicaId::new(0), make_block(0, 0, 0, 0, 1));
        cluster.run();
        let peer = cluster.instance(ReplicaId::new(1));
        let mut adopted = peer.clone();
        adopted.rebind(ReplicaId::new(3));
        assert_eq!(adopted.config().me, ReplicaId::new(3));
        assert_eq!(adopted.delivered_count(), peer.delivered_count());
        assert_eq!(adopted.delivery_digest(), peer.delivery_digest());
        assert_eq!(adopted.last_delivered(), peer.last_delivered());
    }

    #[test]
    fn view_change_vote_bookkeeping_is_pruned_on_entry() {
        let mut cluster = LocalCluster::new(InstanceId::new(0), 4, 4);
        for r in 1..4 {
            cluster.timeout(ReplicaId::new(r));
        }
        cluster.run();
        for r in 1..4 {
            let inst = cluster.instance(ReplicaId::new(r));
            assert!(!inst.in_view_change(), "replica {r}");
            assert!(
                inst.view_change_votes.keys().all(|v| *v > inst.view),
                "replica {r} retains votes at or below its view"
            );
        }
    }

    #[test]
    fn equivocating_leader_cannot_get_two_blocks_delivered_at_same_sn() {
        // Leader sends block A to replicas 1,2 and block B to replica 3.
        let mut cluster = LocalCluster::new(InstanceId::new(0), 4, 4);
        let block_a = make_block(0, 0, 0, 0, 1);
        let block_b = make_block(0, 0, 0, 0, 2);
        cluster.inject(
            ReplicaId::new(0),
            vec![ReplicaId::new(1), ReplicaId::new(2)],
            SbMessage::PrePrepare {
                block: Arc::clone(&block_a),
            },
        );
        cluster.inject(
            ReplicaId::new(0),
            vec![ReplicaId::new(3)],
            SbMessage::PrePrepare {
                block: Arc::clone(&block_b),
            },
        );
        cluster.run();
        // At most one of the two digests may be delivered, and every replica
        // that delivered anything delivered the same digest.
        let mut delivered_digests = std::collections::BTreeSet::new();
        for r in 1..4 {
            for b in cluster.delivered(ReplicaId::new(r)) {
                delivered_digests.insert(b.digest());
            }
        }
        assert!(delivered_digests.len() <= 1);
    }

    #[test]
    fn view_change_replaces_a_silent_leader() {
        let mut cluster = LocalCluster::new(InstanceId::new(0), 4, 4);
        // Leader (replica 0) is silent. The other replicas time out.
        for r in 1..4 {
            cluster.timeout(ReplicaId::new(r));
        }
        cluster.run();
        for r in 1..4 {
            let inst = cluster.instance(ReplicaId::new(r));
            assert_eq!(inst.current_view(), View::new(1), "replica {r}");
            assert!(!inst.in_view_change(), "replica {r} should have finished");
            assert_eq!(inst.current_leader(), ReplicaId::new(1));
        }
        // The new leader can now propose and deliver.
        let block = make_block(0, 0, 1, 1, 1);
        cluster.propose(ReplicaId::new(1), block);
        cluster.run();
        for r in 1..4 {
            assert_eq!(cluster.delivered(ReplicaId::new(r)).len(), 1);
        }
    }

    #[test]
    fn prepared_block_survives_view_change() {
        let mut cluster = LocalCluster::new(InstanceId::new(0), 4, 4);
        let block = make_block(0, 0, 0, 0, 1);
        // Run the normal case only up to the prepare phase at replicas 1..3:
        // deliver the pre-prepare and prepares but drop all commit messages.
        cluster.propose(ReplicaId::new(0), Arc::clone(&block));
        cluster.run_dropping(|msg| matches!(msg, SbMessage::Commit { .. }));
        // Nothing delivered yet.
        for r in 0..4 {
            assert!(cluster.delivered(ReplicaId::new(r)).is_empty());
        }
        // Now the leader goes silent and the backups change views. The block
        // was prepared, so the new leader must re-propose it.
        for r in 1..4 {
            cluster.timeout(ReplicaId::new(r));
        }
        cluster.run();
        for r in 1..4 {
            let delivered = cluster.delivered(ReplicaId::new(r));
            assert_eq!(delivered.len(), 1, "replica {r}");
            assert_eq!(delivered[0].digest(), block.digest());
        }
    }

    #[test]
    fn sixteen_replicas_deliver_under_quorum_loss_of_f() {
        // With n = 16, f = 5: even if 5 replicas never vote, blocks deliver.
        let mut cluster = LocalCluster::new(InstanceId::new(0), 16, 8);
        cluster.silence(ReplicaId::new(11));
        cluster.silence(ReplicaId::new(12));
        cluster.silence(ReplicaId::new(13));
        cluster.silence(ReplicaId::new(14));
        cluster.silence(ReplicaId::new(15));
        for sn in 0..3 {
            cluster.propose(ReplicaId::new(0), make_block(0, sn, 0, 0, 2));
        }
        cluster.run();
        for r in 0..11 {
            assert_eq!(cluster.delivered(ReplicaId::new(r)).len(), 3, "replica {r}");
        }
    }

    #[test]
    fn progress_timestamp_advances_on_delivery() {
        let mut leader = PbftInstance::new(cfg(0, 4));
        let mut backups: Vec<PbftInstance> = (1..4).map(|i| PbftInstance::new(cfg(i, 4))).collect();
        let block = make_block(0, 0, 0, 0, 1);
        let t1 = SimTime::from_millis(500);
        let mut all_msgs: Vec<(ReplicaId, SbMessage)> = Vec::new();
        for a in leader.propose(block, t1) {
            if let SbAction::Broadcast { msg } = a {
                all_msgs.push((ReplicaId::new(0), msg));
            }
        }
        // Flood messages until quiescent.
        while let Some((from, msg)) = all_msgs.pop() {
            for inst in std::iter::once(&mut leader).chain(backups.iter_mut()) {
                if inst.config().me == from {
                    continue;
                }
                for a in inst.handle_message(from, msg.clone(), t1) {
                    if let SbAction::Broadcast { msg } = a {
                        all_msgs.push((inst.config().me, msg));
                    }
                }
            }
        }
        assert_eq!(leader.last_progress(), t1);
        assert_eq!(leader.delivered_count(), 1);
    }
}
