//! In-memory PBFT cluster for deterministic protocol-level testing.
//!
//! [`LocalCluster`] wires `n` [`PbftInstance`]s for the *same* SB instance
//! index together with a synchronous message router (no virtual time, no
//! network model). It is used by the unit and integration tests to exercise
//! agreement, ordering, checkpointing and view changes without the
//! discrete-event engine, and by examples that want to demonstrate the SB
//! layer in isolation.

use crate::actions::SbAction;
use crate::messages::SbMessage;
use crate::pbft::{PbftConfig, PbftInstance};
use orthrus_types::{InstanceId, ReplicaId, SharedBlock, SimTime, StableCheckpoint};
use std::collections::{BTreeSet, VecDeque};

/// A queued message: sender, explicit recipients, payload.
struct Envelope {
    from: ReplicaId,
    to: Vec<ReplicaId>,
    msg: SbMessage,
}

/// An in-memory cluster of PBFT instances sharing one instance index.
pub struct LocalCluster {
    instances: Vec<PbftInstance>,
    delivered: Vec<Vec<SharedBlock>>,
    checkpoints: Vec<Vec<StableCheckpoint>>,
    queue: VecDeque<Envelope>,
    silenced: BTreeSet<ReplicaId>,
    num_replicas: u32,
}

impl LocalCluster {
    /// Build a cluster of `n` replicas all hosting SB instance `instance`,
    /// with the given checkpoint interval.
    pub fn new(instance: InstanceId, n: u32, checkpoint_interval: u64) -> Self {
        let instances = (0..n)
            .map(|r| {
                PbftInstance::new(PbftConfig {
                    instance,
                    me: ReplicaId::new(r),
                    num_replicas: n,
                    checkpoint_interval,
                })
            })
            .collect();
        Self {
            instances,
            delivered: (0..n).map(|_| Vec::new()).collect(),
            checkpoints: (0..n).map(|_| Vec::new()).collect(),
            queue: VecDeque::new(),
            silenced: BTreeSet::new(),
            num_replicas: n,
        }
    }

    /// Access the PBFT state machine of `replica`.
    pub fn instance(&self, replica: ReplicaId) -> &PbftInstance {
        &self.instances[replica.as_usize()]
    }

    /// Blocks delivered by `replica`, in delivery order.
    pub fn delivered(&self, replica: ReplicaId) -> &[SharedBlock] {
        &self.delivered[replica.as_usize()]
    }

    /// Stable-checkpoint certificates `replica` produced, in order of
    /// stabilisation.
    pub fn stable_checkpoints(&self, replica: ReplicaId) -> &[StableCheckpoint] {
        &self.checkpoints[replica.as_usize()]
    }

    /// Stop routing messages from (and to) `replica`: it behaves like a
    /// crashed node from now on.
    pub fn silence(&mut self, replica: ReplicaId) {
        self.silenced.insert(replica);
    }

    /// Have `replica` propose `block` as leader.
    pub fn propose(&mut self, replica: ReplicaId, block: SharedBlock) {
        let actions = self.instances[replica.as_usize()].propose(block, SimTime::ZERO);
        self.enqueue_actions(replica, actions);
    }

    /// Have `replica`'s failure detector fire (vote for a view change).
    pub fn timeout(&mut self, replica: ReplicaId) {
        let actions = self.instances[replica.as_usize()].on_timeout(SimTime::ZERO);
        self.enqueue_actions(replica, actions);
    }

    /// Inject a message from `from` to an explicit set of recipients (used to
    /// simulate Byzantine equivocation).
    pub fn inject(&mut self, from: ReplicaId, to: Vec<ReplicaId>, msg: SbMessage) {
        self.queue.push_back(Envelope { from, to, msg });
    }

    /// Route messages until the cluster is quiescent.
    pub fn run(&mut self) {
        self.run_dropping(|_| false);
    }

    /// Route messages until quiescent, dropping every message for which
    /// `drop` returns true (used to test partial progress, e.g. losing all
    /// commit messages).
    pub fn run_dropping<F: Fn(&SbMessage) -> bool>(&mut self, drop: F) {
        let mut budget: u64 = 1_000_000;
        while let Some(env) = self.queue.pop_front() {
            budget -= 1;
            if budget == 0 {
                panic!("LocalCluster did not quiesce");
            }
            if drop(&env.msg) || self.silenced.contains(&env.from) {
                continue;
            }
            for to in env.to {
                if to == env.from || self.silenced.contains(&to) {
                    continue;
                }
                let actions = self.instances[to.as_usize()].handle_message(
                    env.from,
                    env.msg.clone(),
                    SimTime::ZERO,
                );
                self.enqueue_actions(to, actions);
            }
        }
    }

    fn all_replicas(&self) -> Vec<ReplicaId> {
        (0..self.num_replicas).map(ReplicaId::new).collect()
    }

    fn enqueue_actions(&mut self, from: ReplicaId, actions: Vec<SbAction>) {
        for action in actions {
            match action {
                SbAction::Send { to, msg } => self.queue.push_back(Envelope {
                    from,
                    to: vec![to],
                    msg,
                }),
                SbAction::Broadcast { msg } => self.queue.push_back(Envelope {
                    from,
                    to: self.all_replicas(),
                    msg,
                }),
                SbAction::Deliver { block } => {
                    self.delivered[from.as_usize()].push(block);
                }
                SbAction::StableCheckpoint { checkpoint } => {
                    self.checkpoints[from.as_usize()].push(checkpoint);
                }
                SbAction::ViewChanged { .. } => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_types::{Block, BlockParams, Epoch, Rank, SeqNum, SystemState, View};
    use std::sync::Arc;

    fn block(sn: u64) -> SharedBlock {
        Arc::new(Block::no_op(BlockParams {
            instance: InstanceId::new(0),
            sn: SeqNum::new(sn),
            epoch: Epoch::new(0),
            view: View::new(0),
            proposer: ReplicaId::new(0),
            rank: Rank::new(sn),
            state: SystemState::new(4),
        }))
    }

    #[test]
    fn quiescent_cluster_delivers_nothing() {
        let mut cluster = LocalCluster::new(InstanceId::new(0), 4, 4);
        cluster.run();
        for r in 0..4 {
            assert!(cluster.delivered(ReplicaId::new(r)).is_empty());
        }
    }

    #[test]
    fn silenced_replicas_do_not_participate() {
        let mut cluster = LocalCluster::new(InstanceId::new(0), 4, 4);
        cluster.silence(ReplicaId::new(3));
        cluster.propose(ReplicaId::new(0), block(0));
        cluster.run();
        assert!(cluster.delivered(ReplicaId::new(3)).is_empty());
        // With only one silenced replica out of four, the rest still deliver.
        assert_eq!(cluster.delivered(ReplicaId::new(1)).len(), 1);
    }

    #[test]
    fn drop_filter_blocks_progress() {
        let mut cluster = LocalCluster::new(InstanceId::new(0), 4, 4);
        cluster.propose(ReplicaId::new(0), block(0));
        // Dropping every prepare prevents any delivery.
        cluster.run_dropping(|m| matches!(m, SbMessage::Prepare { .. }));
        for r in 0..4 {
            assert!(cluster.delivered(ReplicaId::new(r)).is_empty());
        }
    }
}
