//! PBFT wire messages used by the sequenced-broadcast instances.
//!
//! The paper treats sequenced broadcast (SB) as a black box with `broadcast`
//! and `deliver` events and implements it with PBFT (§VII-A). This module
//! defines the PBFT message vocabulary: the three normal-case messages
//! (pre-prepare, prepare, commit), checkpoints, and the view-change /
//! new-view pair used by the failure detector to replace faulty leaders.

use orthrus_sim::Payload;
use orthrus_types::{Digest, InstanceId, ReplicaId, SeqNum, SharedBlock, View};

/// Size in bytes charged for a vote-style message (prepare/commit/checkpoint):
/// digest + ids + signature.
pub const VOTE_WIRE_BYTES: u64 = 128;

/// Fixed overhead charged for a view-change or new-view message on top of any
/// embedded blocks.
pub const VIEW_CHANGE_OVERHEAD_BYTES: u64 = 256;

/// A prepared certificate carried inside a view-change message: the block the
/// sender had prepared but not yet seen delivered, so the new leader can
/// re-propose it.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedProof {
    /// Sequence number of the prepared slot.
    pub sn: SeqNum,
    /// The prepared block (shared handle; carrying it in a vote bumps a
    /// reference count instead of copying the batch).
    pub block: SharedBlock,
}

/// PBFT messages exchanged inside one SB instance.
#[derive(Debug, Clone, PartialEq)]
pub enum SbMessage {
    /// Leader → backups: proposal of `block` for its sequence number.
    PrePrepare {
        /// Proposed block (carries instance, sequence number, view, rank).
        /// Shared: broadcasting the pre-prepare to `n - 1` backups clones the
        /// handle, never the transaction batch.
        block: SharedBlock,
    },
    /// Backup → all: the sender accepted the pre-prepare for `(view, sn)`.
    Prepare {
        /// Instance the vote belongs to.
        instance: InstanceId,
        /// View in which the block was proposed.
        view: View,
        /// Sequence number being voted on.
        sn: SeqNum,
        /// Digest of the block being voted on.
        digest: Digest,
        /// Voting replica.
        voter: ReplicaId,
    },
    /// Replica → all: the sender has a prepared certificate for `(view, sn)`.
    Commit {
        /// Instance the vote belongs to.
        instance: InstanceId,
        /// View in which the block was proposed.
        view: View,
        /// Sequence number being voted on.
        sn: SeqNum,
        /// Digest of the block being voted on.
        digest: Digest,
        /// Voting replica.
        voter: ReplicaId,
    },
    /// Periodic checkpoint vote: the sender has delivered every sequence
    /// number up to and including `sn` and its delivery log digests to
    /// `digest`.
    Checkpoint {
        /// Instance being checkpointed.
        instance: InstanceId,
        /// Highest delivered sequence number covered by the checkpoint.
        sn: SeqNum,
        /// Digest of the delivery log up to `sn`.
        digest: Digest,
        /// Voting replica.
        voter: ReplicaId,
    },
    /// The sender suspects the current leader and votes to move to
    /// `new_view`.
    ViewChange {
        /// Instance whose leader is suspected.
        instance: InstanceId,
        /// The view the sender wants to move to.
        new_view: View,
        /// Highest sequence number the sender has delivered.
        last_delivered: Option<SeqNum>,
        /// Blocks the sender had prepared beyond its delivered prefix.
        prepared: Vec<PreparedProof>,
        /// Voting replica.
        voter: ReplicaId,
    },
    /// The leader of `new_view` announces the view change, carrying the
    /// blocks it will re-propose for in-flight sequence numbers.
    NewView {
        /// Instance whose view changed.
        instance: InstanceId,
        /// The view now in force.
        new_view: View,
        /// Replicas whose view-change votes justified this new view.
        supporters: Vec<ReplicaId>,
        /// Blocks re-proposed by the new leader (in sequence-number order).
        reproposals: Vec<SharedBlock>,
    },
}

impl SbMessage {
    /// The instance this message belongs to.
    pub fn instance(&self) -> InstanceId {
        match self {
            SbMessage::PrePrepare { block } => block.header.instance,
            SbMessage::Prepare { instance, .. }
            | SbMessage::Commit { instance, .. }
            | SbMessage::Checkpoint { instance, .. }
            | SbMessage::ViewChange { instance, .. }
            | SbMessage::NewView { instance, .. } => *instance,
        }
    }

    /// Short tag used in logs and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            SbMessage::PrePrepare { .. } => "pre-prepare",
            SbMessage::Prepare { .. } => "prepare",
            SbMessage::Commit { .. } => "commit",
            SbMessage::Checkpoint { .. } => "checkpoint",
            SbMessage::ViewChange { .. } => "view-change",
            SbMessage::NewView { .. } => "new-view",
        }
    }
}

impl Payload for SbMessage {
    fn wire_bytes(&self) -> u64 {
        match self {
            SbMessage::PrePrepare { block } => block.wire_bytes(),
            SbMessage::Prepare { .. } | SbMessage::Commit { .. } | SbMessage::Checkpoint { .. } => {
                VOTE_WIRE_BYTES
            }
            SbMessage::ViewChange { prepared, .. } => {
                VIEW_CHANGE_OVERHEAD_BYTES
                    + prepared.iter().map(|p| p.block.wire_bytes()).sum::<u64>()
            }
            SbMessage::NewView { reproposals, .. } => {
                VIEW_CHANGE_OVERHEAD_BYTES + reproposals.iter().map(|b| b.wire_bytes()).sum::<u64>()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_types::{Block, BlockParams, Epoch, Rank, SystemState};
    use std::sync::Arc;

    fn block(instance: u32, sn: u64) -> SharedBlock {
        Arc::new(Block::no_op(BlockParams {
            instance: InstanceId::new(instance),
            sn: SeqNum::new(sn),
            epoch: Epoch::new(0),
            view: View::new(0),
            proposer: ReplicaId::new(instance),
            rank: Rank::new(sn),
            state: SystemState::new(4),
        }))
    }

    #[test]
    fn instance_extraction() {
        let msg = SbMessage::PrePrepare { block: block(3, 0) };
        assert_eq!(msg.instance(), InstanceId::new(3));
        let vote = SbMessage::Prepare {
            instance: InstanceId::new(2),
            view: View::new(0),
            sn: SeqNum::new(1),
            digest: Digest::EMPTY,
            voter: ReplicaId::new(0),
        };
        assert_eq!(vote.instance(), InstanceId::new(2));
    }

    #[test]
    fn wire_sizes_reflect_content() {
        let pre = SbMessage::PrePrepare { block: block(0, 0) };
        let vote = SbMessage::Commit {
            instance: InstanceId::new(0),
            view: View::new(0),
            sn: SeqNum::new(0),
            digest: Digest::EMPTY,
            voter: ReplicaId::new(1),
        };
        assert!(pre.wire_bytes() > vote.wire_bytes());
        assert_eq!(vote.wire_bytes(), VOTE_WIRE_BYTES);

        let vc = SbMessage::ViewChange {
            instance: InstanceId::new(0),
            new_view: View::new(1),
            last_delivered: None,
            prepared: vec![PreparedProof {
                sn: SeqNum::new(0),
                block: block(0, 0),
            }],
            voter: ReplicaId::new(2),
        };
        assert!(vc.wire_bytes() > VIEW_CHANGE_OVERHEAD_BYTES);
    }

    #[test]
    fn kinds_are_distinct() {
        let kinds = [
            SbMessage::PrePrepare { block: block(0, 0) }.kind(),
            SbMessage::Prepare {
                instance: InstanceId::new(0),
                view: View::new(0),
                sn: SeqNum::new(0),
                digest: Digest::EMPTY,
                voter: ReplicaId::new(0),
            }
            .kind(),
            SbMessage::NewView {
                instance: InstanceId::new(0),
                new_view: View::new(1),
                supporters: vec![],
                reproposals: vec![],
            }
            .kind(),
        ];
        assert_eq!(kinds.len(), 3);
        assert_ne!(kinds[0], kinds[1]);
        assert_ne!(kinds[1], kinds[2]);
    }
}
