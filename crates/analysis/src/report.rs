//! Diagnostic report: violations, suppressions, the unsafe inventory, and a
//! hand-rolled JSON encode/decode pair for the `--json` surface.
//!
//! The JSON shape is versioned and flat so CI validators (and future tooling)
//! can consume it without a schema registry:
//!
//! ```json
//! {
//!   "tool": "orthrus-analysis",
//!   "version": 1,
//!   "files_scanned": 42,
//!   "rules": [{"code": "ORT001", "name": "nondet-iter", "description": "…"}],
//!   "violations": [{"code": "ORT001", "rule": "nondet-iter",
//!                   "file": "crates/sim/src/engine.rs", "line": 17,
//!                   "snippet": "for (k, v) in &map {", "message": "…"}],
//!   "suppressions": [{"rule": "nondet-iter", "file": "…", "line": 3,
//!                     "reason": "commutative min-merge"}],
//!   "unsafe_inventory": [{"file": "…", "line": 9, "has_safety": true}],
//!   "clean": true
//! }
//! ```
//!
//! Everything is sorted by `(file, line)` before emission so the report is a
//! deterministic function of the source tree — the analyzer holds itself to
//! the same standard it enforces.

use std::fmt;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule code, e.g. `ORT001`.
    pub code: String,
    /// Rule name, e.g. `nondet-iter`.
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Trimmed source line the violation sits on.
    pub snippet: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}: {}\n    {}",
            self.file, self.line, self.code, self.rule, self.message, self.snippet
        )
    }
}

/// A matched `// orthrus: allow(<rule>): <reason>` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    pub rule: String,
    pub file: String,
    pub line: usize,
    pub reason: String,
}

/// One `unsafe` occurrence, whether or not it carries a `SAFETY:` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeSite {
    pub file: String,
    pub line: usize,
    pub has_safety: bool,
}

/// A rule's identity for the report header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleInfo {
    pub code: String,
    pub name: String,
    pub description: String,
}

/// The full analysis result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    pub files_scanned: usize,
    pub rules: Vec<RuleInfo>,
    pub violations: Vec<Diagnostic>,
    pub suppressions: Vec<Suppression>,
    pub unsafe_inventory: Vec<UnsafeSite>,
}

impl Report {
    /// No unsuppressed violations remain.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Sort every section by `(file, line, code)` so output is deterministic.
    pub fn sort(&mut self) {
        self.violations
            .sort_by(|a, b| (&a.file, a.line, &a.code).cmp(&(&b.file, b.line, &b.code)));
        self.suppressions
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
        self.unsafe_inventory
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    }

    /// Serialize to the versioned JSON shape.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str("  \"tool\": \"orthrus-analysis\",\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str("  \"rules\": [\n");
        for (i, r) in self.rules.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"code\": {}, \"name\": {}, \"description\": {}}}{}\n",
                json_str(&r.code),
                json_str(&r.name),
                json_str(&r.description),
                comma(i, self.rules.len())
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"code\": {}, \"rule\": {}, \"file\": {}, \"line\": {}, \"snippet\": {}, \"message\": {}}}{}\n",
                json_str(&v.code),
                json_str(&v.rule),
                json_str(&v.file),
                v.line,
                json_str(&v.snippet),
                json_str(&v.message),
                comma(i, self.violations.len())
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"suppressions\": [\n");
        for (i, s) in self.suppressions.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}{}\n",
                json_str(&s.rule),
                json_str(&s.file),
                s.line,
                json_str(&s.reason),
                comma(i, self.suppressions.len())
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"unsafe_inventory\": [\n");
        for (i, u) in self.unsafe_inventory.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"file\": {}, \"line\": {}, \"has_safety\": {}}}{}\n",
                json_str(&u.file),
                u.line,
                u.has_safety,
                comma(i, self.unsafe_inventory.len())
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"clean\": {}\n", self.is_clean()));
        out.push_str("}\n");
        out
    }

    /// Parse a report back from its JSON form. Accepts exactly the shape
    /// [`to_json`](Self::to_json) emits (any whitespace); used by the
    /// round-trip test and by external validators that want structured
    /// access without a JSON library.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = Json::parse(text)?;
        let obj = value.as_object()?;
        let mut report = Report {
            files_scanned: obj.get("files_scanned")?.as_usize()?,
            ..Report::default()
        };
        for r in obj.get("rules")?.as_array()? {
            let r = r.as_object()?;
            report.rules.push(RuleInfo {
                code: r.get("code")?.as_str()?,
                name: r.get("name")?.as_str()?,
                description: r.get("description")?.as_str()?,
            });
        }
        for v in obj.get("violations")?.as_array()? {
            let v = v.as_object()?;
            report.violations.push(Diagnostic {
                code: v.get("code")?.as_str()?,
                rule: v.get("rule")?.as_str()?,
                file: v.get("file")?.as_str()?,
                line: v.get("line")?.as_usize()?,
                snippet: v.get("snippet")?.as_str()?,
                message: v.get("message")?.as_str()?,
            });
        }
        for s in obj.get("suppressions")?.as_array()? {
            let s = s.as_object()?;
            report.suppressions.push(Suppression {
                rule: s.get("rule")?.as_str()?,
                file: s.get("file")?.as_str()?,
                line: s.get("line")?.as_usize()?,
                reason: s.get("reason")?.as_str()?,
            });
        }
        for u in obj.get("unsafe_inventory")?.as_array()? {
            let u = u.as_object()?;
            report.unsafe_inventory.push(UnsafeSite {
                file: u.get("file")?.as_str()?,
                line: u.get("line")?.as_usize()?,
                has_safety: u.get("has_safety")?.as_bool()?,
            });
        }
        let clean = obj.get("clean")?.as_bool()?;
        if clean != report.is_clean() {
            return Err("clean flag disagrees with violations list".into());
        }
        Ok(report)
    }
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

/// Escape a string for JSON output.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON value — just enough to parse what [`Report::to_json`] emits
/// (objects, arrays, strings, unsigned integers, booleans).
enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    Str(String),
    Num(u64),
    Bool(bool),
}

struct JsonObj<'a>(&'a [(String, Json)]);

impl<'a> JsonObj<'a> {
    fn get(&self, key: &str) -> Result<&'a Json, String> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing key {key:?}"))
    }
}

impl Json {
    fn as_object(&self) -> Result<JsonObj<'_>, String> {
        match self {
            Json::Object(fields) => Ok(JsonObj(fields)),
            _ => Err("expected object".into()),
        }
    }
    fn as_array(&self) -> Result<&[Json], String> {
        match self {
            Json::Array(items) => Ok(items),
            _ => Err("expected array".into()),
        }
    }
    fn as_str(&self) -> Result<String, String> {
        match self {
            Json::Str(s) => Ok(s.clone()),
            _ => Err("expected string".into()),
        }
    }
    fn as_usize(&self) -> Result<usize, String> {
        match self {
            Json::Num(n) => Ok(*n as usize),
            _ => Err("expected number".into()),
        }
    }
    fn as_bool(&self) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            _ => Err("expected bool".into()),
        }
    }

    fn parse(text: &str) -> Result<Json, String> {
        let chars: Vec<char> = text.chars().collect();
        let mut pos = 0usize;
        let value = Self::parse_value(&chars, &mut pos)?;
        Self::skip_ws(&chars, &mut pos);
        if pos != chars.len() {
            return Err(format!("trailing garbage at offset {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(chars: &[char], pos: &mut usize) {
        while chars
            .get(*pos)
            .is_some_and(|c| matches!(c, ' ' | '\t' | '\n' | '\r'))
        {
            *pos += 1;
        }
    }

    fn parse_value(chars: &[char], pos: &mut usize) -> Result<Json, String> {
        Self::skip_ws(chars, pos);
        match chars.get(*pos) {
            Some('{') => {
                *pos += 1;
                let mut fields = Vec::new();
                Self::skip_ws(chars, pos);
                if chars.get(*pos) == Some(&'}') {
                    *pos += 1;
                    return Ok(Json::Object(fields));
                }
                loop {
                    Self::skip_ws(chars, pos);
                    let key = Self::parse_string(chars, pos)?;
                    Self::skip_ws(chars, pos);
                    if chars.get(*pos) != Some(&':') {
                        return Err(format!("expected ':' at offset {pos}"));
                    }
                    *pos += 1;
                    let value = Self::parse_value(chars, pos)?;
                    fields.push((key, value));
                    Self::skip_ws(chars, pos);
                    match chars.get(*pos) {
                        Some(',') => *pos += 1,
                        Some('}') => {
                            *pos += 1;
                            return Ok(Json::Object(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                    }
                }
            }
            Some('[') => {
                *pos += 1;
                let mut items = Vec::new();
                Self::skip_ws(chars, pos);
                if chars.get(*pos) == Some(&']') {
                    *pos += 1;
                    return Ok(Json::Array(items));
                }
                loop {
                    items.push(Self::parse_value(chars, pos)?);
                    Self::skip_ws(chars, pos);
                    match chars.get(*pos) {
                        Some(',') => *pos += 1,
                        Some(']') => {
                            *pos += 1;
                            return Ok(Json::Array(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                    }
                }
            }
            Some('"') => Ok(Json::Str(Self::parse_string(chars, pos)?)),
            Some('t') => Self::parse_lit(chars, pos, "true", Json::Bool(true)),
            Some('f') => Self::parse_lit(chars, pos, "false", Json::Bool(false)),
            Some(c) if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some(d) = chars.get(*pos).and_then(|c| c.to_digit(10)) {
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add(u64::from(d)))
                        .ok_or("number overflow")?;
                    *pos += 1;
                }
                Ok(Json::Num(n))
            }
            other => Err(format!("unexpected {other:?} at offset {pos}")),
        }
    }

    fn parse_lit(chars: &[char], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
        for expected in lit.chars() {
            if chars.get(*pos) != Some(&expected) {
                return Err(format!("bad literal at offset {pos}"));
            }
            *pos += 1;
        }
        Ok(value)
    }

    fn parse_string(chars: &[char], pos: &mut usize) -> Result<String, String> {
        if chars.get(*pos) != Some(&'"') {
            return Err(format!("expected string at offset {pos}"));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match chars.get(*pos) {
                Some('"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    *pos += 1;
                    match chars.get(*pos) {
                        Some('"') => out.push('"'),
                        Some('\\') => out.push('\\'),
                        Some('/') => out.push('/'),
                        Some('n') => out.push('\n'),
                        Some('r') => out.push('\r'),
                        Some('t') => out.push('\t'),
                        Some('u') => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                *pos += 1;
                                let d = chars
                                    .get(*pos)
                                    .and_then(|c| c.to_digit(16))
                                    .ok_or("bad \\u escape")?;
                                code = code * 16 + d;
                            }
                            out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    *pos += 1;
                }
                Some(c) => {
                    out.push(*c);
                    *pos += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut report = Report {
            files_scanned: 3,
            rules: vec![RuleInfo {
                code: "ORT001".into(),
                name: "nondet-iter".into(),
                description: "order-dependent iteration".into(),
            }],
            violations: vec![Diagnostic {
                code: "ORT001".into(),
                rule: "nondet-iter".into(),
                file: "crates/sim/src/engine.rs".into(),
                line: 42,
                snippet: "for (k, v) in &map { \"quote\\path\" }".into(),
                message: "iteration over HashMap `map`".into(),
            }],
            suppressions: vec![Suppression {
                rule: "wall-clock".into(),
                file: "crates/types/src/profiling.rs".into(),
                line: 7,
                reason: "single sanctioned doorway".into(),
            }],
            unsafe_inventory: vec![UnsafeSite {
                file: "crates/bench/benches/msgfabric.rs".into(),
                line: 33,
                has_safety: true,
            }],
        };
        report.sort();
        report
    }

    #[test]
    fn json_round_trips() {
        let report = sample();
        let parsed = Report::from_json(&report.to_json()).expect("parse back");
        assert_eq!(parsed, report);
    }

    #[test]
    fn empty_report_round_trips_and_is_clean() {
        let report = Report::default();
        assert!(report.is_clean());
        let json = report.to_json();
        assert!(json.contains("\"clean\": true"));
        assert_eq!(Report::from_json(&json).unwrap(), report);
    }

    #[test]
    fn escapes_survive() {
        let s = "tab\t \"quoted\" back\\slash\nnewline \u{1}";
        let json = json_str(s);
        let parsed = Json::parse(&json).unwrap().as_str().unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn clean_flag_is_cross_checked() {
        let mut json = sample().to_json();
        json = json.replace("\"clean\": false", "\"clean\": true");
        assert!(Report::from_json(&json).is_err());
    }
}
