//! A comment- and string-literal-aware line scanner for Rust sources.
//!
//! The analyzer's rules are textual, so the one thing the scanner must get
//! right is *where code stops and prose begins*: a `HashMap` named in a doc
//! comment, a `".unwrap()"` inside a string literal, or an `unsafe` in a
//! `/* ... */` block must never trigger a rule. [`lex`] splits every source
//! line into its code text (string and char literal *contents* blanked,
//! comments removed) and its comment text (everything inside `//`, `///`,
//! `//!` and `/* ... */`, which is where suppression annotations and
//! `SAFETY:` justifications live).
//!
//! The scanner also marks `#[cfg(test)]` / `#[test]` regions by brace
//! counting, so rules can skip test code: tests routinely seed throwaway
//! RNGs and build scratch hash maps, and none of it ships in a run.
//!
//! This is a hand-rolled state machine, not a parser — the workspace is
//! dependency-free by invariant, so `syn` is off the table. The states cover
//! everything `rustfmt`-formatted code produces: line comments, nested block
//! comments, string literals with escapes, raw strings with hash fences,
//! byte strings, char literals, and the `'a`-lifetime-versus-`'a'`-char
//! ambiguity.

/// One source line, split into code and comment channels.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Code text: comments stripped, string/char literal contents blanked
    /// (the delimiting quotes remain so expression structure is preserved).
    pub code: String,
    /// Comment text on this line (line and block comments, markers removed).
    pub comment: String,
    /// Inside a `#[cfg(test)]` or `#[test]` region.
    pub is_test: bool,
}

/// Scanner state carried across characters (and lines, for multi-line
/// constructs).
enum State {
    Code,
    LineComment,
    /// Nesting depth (Rust block comments nest).
    BlockComment(u32),
    Str,
    /// Number of `#` in the fence of a raw string.
    RawStr(u32),
    CharLit,
}

/// Is `c` part of an identifier?
fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Split `source` into per-line code/comment channels and mark test regions.
pub fn lex(source: &str) -> Vec<Line> {
    let mut lines: Vec<Line> = Vec::new();
    let mut cur = Line::default();
    let mut state = State::Code;
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let n = chars.len();
    // Previous code character, for the raw-string-prefix / identifier-tail
    // distinction (`r"..."` versus an identifier ending in `r`).
    let mut prev_code: char = ' ';

    while i < n {
        let c = chars[i];
        if c == '\n' {
            lines.push(std::mem::take(&mut cur));
            if matches!(state, State::LineComment) {
                state = State::Code;
            }
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied().unwrap_or(' ');
                if c == '/' && next == '/' {
                    state = State::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && next == '*' {
                    state = State::BlockComment(1);
                    i += 2;
                    continue;
                }
                // Raw (byte) string prefixes: r", r#", br", br#" — only when
                // the `r` does not terminate a longer identifier.
                if (c == 'r' || c == 'b') && !is_ident(prev_code) {
                    let mut j = i;
                    if c == 'b' && chars.get(j + 1) == Some(&'r') {
                        j += 1;
                    }
                    if chars[j] == 'r' || c == 'b' {
                        let mut hashes = 0u32;
                        let mut k = j + 1;
                        while chars.get(k) == Some(&'#') {
                            hashes += 1;
                            k += 1;
                        }
                        if chars.get(k) == Some(&'"') && (chars[j] == 'r' || hashes == 0) {
                            if chars[j] == 'r' {
                                cur.code.push('"');
                                prev_code = '"';
                                state = State::RawStr(hashes);
                                i = k + 1;
                                continue;
                            } else if c == 'b' && j == i {
                                // b"..." plain byte string.
                                cur.code.push('"');
                                prev_code = '"';
                                state = State::Str;
                                i = k + 1;
                                continue;
                            }
                        }
                    }
                }
                if c == '"' {
                    cur.code.push('"');
                    prev_code = '"';
                    state = State::Str;
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // Lifetime (`'a`) or char literal (`'a'`, `'\n'`)?
                    let is_char = if next == '\\' {
                        true
                    } else {
                        // A char literal closes with a quote right after one
                        // character; a lifetime never has a closing quote.
                        chars.get(i + 2) == Some(&'\'') && next != '\''
                    };
                    if is_char {
                        cur.code.push('\'');
                        prev_code = '\'';
                        state = State::CharLit;
                        i += 1;
                        continue;
                    }
                    // Lifetime: keep the quote so `<'a>` stays readable code.
                    cur.code.push('\'');
                    prev_code = '\'';
                    i += 1;
                    continue;
                }
                cur.code.push(c);
                prev_code = c;
                i += 1;
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied().unwrap_or(' ');
                if c == '/' && next == '*' {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == '/' {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // A `\` line-continuation escape must not swallow the
                    // newline, or every later diagnostic drifts by a line.
                    if chars.get(i + 1) == Some(&'\n') {
                        lines.push(std::mem::take(&mut cur));
                    }
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    prev_code = '"';
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        cur.code.push('"');
                        prev_code = '"';
                        state = State::Code;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                i += 1;
            }
            State::CharLit => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    cur.code.push('\'');
                    prev_code = '\'';
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    mark_test_regions(&mut lines);
    lines
}

/// Mark the body of every `#[cfg(test)]` / `#[test]` item by brace counting
/// on the code channel. The attribute line arms a pending flag; the next
/// opening brace opens the region; the brace that returns to the opening
/// depth closes it. A `;` before any brace (e.g. `#[cfg(test)] mod tests;`)
/// disarms — an out-of-line test module is a separate file this scanner sees
/// on its own (and such files start with their own attribute in the parent,
/// so their rules run as production code; in this workspace every test
/// module is inline).
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut close_at: Option<i64> = None;
    let mut pending = false;
    for line in lines.iter_mut() {
        if close_at.is_none()
            && !pending
            && (line.code.contains("#[cfg(test)]") || line.code.contains("#[test]"))
        {
            pending = true;
        }
        let mut is_test = pending || close_at.is_some();
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending && close_at.is_none() {
                        close_at = Some(depth);
                        pending = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if close_at == Some(depth) {
                        close_at = None;
                        is_test = true;
                    }
                }
                ';' if pending && close_at.is_none() => {
                    pending = false;
                }
                _ => {}
            }
        }
        line.is_test = is_test || close_at.is_some();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_split_from_code() {
        let lines = lex("let x = 1; // trailing HashMap mention\n/* block */ let y;\n");
        assert_eq!(lines[0].code.trim(), "let x = 1;");
        assert!(lines[0].comment.contains("HashMap"));
        assert_eq!(lines[1].code.trim(), "let y;");
        assert!(lines[1].comment.contains("block"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let lines = lex("let s = \"Instant::now() .unwrap()\"; s.len();\n");
        assert!(!lines[0].code.contains("Instant"));
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].code.contains("s.len()"));
    }

    #[test]
    fn raw_strings_and_escapes_are_blanked() {
        let lines = lex(
            "let a = r#\"unsafe \"quoted\" HashMap\"#;\nlet b = \"esc \\\" HashSet\";\nlet c = b\"bytes HashMap\";\n",
        );
        for line in &lines {
            assert!(!line.code.contains("HashMap"), "{:?}", line.code);
            assert!(!line.code.contains("HashSet"), "{:?}", line.code);
            assert!(!line.code.contains("unsafe"), "{:?}", line.code);
        }
    }

    #[test]
    fn lifetimes_survive_char_literals_blank() {
        let lines = lex("fn f<'a>(x: &'a str) -> char { 'x' }\nlet y = '\\n';\n");
        assert!(lines[0].code.contains("<'a>"));
        assert!(!lines[1].code.contains('n') || !lines[1].code.contains("\\n"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let lines = lex("/* outer /* inner */ still comment */ let x;\n/* a\nb */ let y;\n");
        assert_eq!(lines[0].code.trim(), "let x;");
        assert!(lines[1].code.trim().is_empty());
        assert_eq!(lines[2].code.trim(), "let y;");
    }

    #[test]
    fn test_regions_are_marked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn prod2() {}\n";
        let lines = lex(src);
        assert!(!lines[0].is_test);
        assert!(lines[1].is_test, "attribute line");
        assert!(lines[2].is_test);
        assert!(lines[3].is_test);
        assert!(lines[4].is_test, "closing brace line");
        assert!(!lines[5].is_test);
    }

    #[test]
    fn string_line_continuation_keeps_line_numbers() {
        let src = "let s = \"first \\\n         second\";\nlet after = 1;\n";
        let lines = lex(src);
        assert_eq!(lines.len(), 3, "continuation must not swallow the newline");
        assert!(lines[2].code.contains("after"));
    }

    #[test]
    fn cfg_test_on_statement_does_not_poison_rest_of_file() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn prod() {}\n";
        let lines = lex(src);
        assert!(!lines[2].is_test);
    }
}
