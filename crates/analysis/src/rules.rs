//! The rule set: what each rule matches, where it applies, and the
//! suppression grammar that lets a justified site opt out *with a written
//! reason*.
//!
//! # Suppression grammar
//!
//! ```text
//! // orthrus: allow(<rule-name>): <reason text>
//! ```
//!
//! A suppression comment applies to the code on its own line, or — when it
//! sits on a comment-only line — to the next code line below it (doc-style
//! placement). The reason is mandatory: an empty reason, or an unknown rule
//! name, is itself a violation (`ORT007 bad-suppression`), so the workspace
//! can never accumulate silent waivers. Every matched suppression is
//! recorded in the report with its reason, giving reviewers a single list
//! of all sanctioned exceptions.
//!
//! # Scope policy
//!
//! Determinism rules apply to the *deterministic crates* — the ones whose
//! state feeds the digest: `sim`, `core`, `sb`, `ordering`, `execution`,
//! `workload`, `types`. Test regions (`#[cfg(test)]` / `#[test]`), tests/,
//! benches/ and examples/ trees are exempt from everything except
//! `unsafe-audit` (unsound is unsound even in a bench). Each rule with a
//! legitimate implementation site names it as a sanctioned file — the one
//! doorway the pattern may flow through:
//!
//! | rule         | sanctioned doorway                                  |
//! |--------------|-----------------------------------------------------|
//! | wall-clock   | `crates/bench/` (the measurement harness)           |
//! | ambient-rng  | `crates/types/src/rng.rs` (the RNG implementation)  |
//! | stray-thread | `crates/types/src/pool.rs` (the deterministic pool) |

use crate::lexer::Line;
use crate::report::{Diagnostic, Report, RuleInfo, Suppression, UnsafeSite};

/// All rules, in priority order. The discriminant order fixes the code
/// numbering (`ORT001`..), so new rules must be appended, never inserted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Order-dependent iteration over `HashMap`/`HashSet` in deterministic
    /// crates. Iteration order of a hash map is an implementation detail;
    /// anything derived from it (event order, message order, digests) is a
    /// replay hazard. Use `BTreeMap`, sort before iterating, or justify why
    /// the fold is commutative.
    NondetIter,
    /// `Instant::now()` / `SystemTime` outside the bench harness and the
    /// sanctioned profiling helper. Wall-clock reads inside the simulator are
    /// either dead (sim time is logical) or — worse — feeding decisions.
    WallClock,
    /// RNG construction outside `orthrus_types::rng` from anything but a
    /// scenario-derived seed. Ambient entropy breaks seed ⇒ digest identity.
    AmbientRng,
    /// `std::thread` use outside the deterministic sweep pool. All
    /// parallelism must flow through `parallel_for_mut`/`parallel_map` so
    /// thread count can never influence results.
    StrayThread,
    /// `unsafe` without an adjacent `// SAFETY:` justification. Also feeds
    /// the workspace-wide unsafe inventory in the report.
    UnsafeAudit,
    /// `unwrap`/`expect`/`panic!` on engine dispatch, actor handler, and STM
    /// speculative-wave paths, where a panic escalates a recoverable abort
    /// into a torn-down wave.
    PanicPath,
    /// A malformed suppression: unknown rule name or missing reason.
    BadSuppression,
}

impl Rule {
    pub const ALL: [Rule; 7] = [
        Rule::NondetIter,
        Rule::WallClock,
        Rule::AmbientRng,
        Rule::StrayThread,
        Rule::UnsafeAudit,
        Rule::PanicPath,
        Rule::BadSuppression,
    ];

    pub fn code(self) -> &'static str {
        match self {
            Rule::NondetIter => "ORT001",
            Rule::WallClock => "ORT002",
            Rule::AmbientRng => "ORT003",
            Rule::StrayThread => "ORT004",
            Rule::UnsafeAudit => "ORT005",
            Rule::PanicPath => "ORT006",
            Rule::BadSuppression => "ORT007",
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Rule::NondetIter => "nondet-iter",
            Rule::WallClock => "wall-clock",
            Rule::AmbientRng => "ambient-rng",
            Rule::StrayThread => "stray-thread",
            Rule::UnsafeAudit => "unsafe-audit",
            Rule::PanicPath => "panic-path",
            Rule::BadSuppression => "bad-suppression",
        }
    }

    pub fn description(self) -> &'static str {
        match self {
            Rule::NondetIter => {
                "order-dependent iteration over HashMap/HashSet in deterministic crates"
            }
            Rule::WallClock => "wall-clock read outside the bench harness / profiling doorway",
            Rule::AmbientRng => "RNG construction outside orthrus_types::rng seeded paths",
            Rule::StrayThread => "std::thread use outside the deterministic sweep pool",
            Rule::UnsafeAudit => "unsafe block/impl without a SAFETY: justification",
            Rule::PanicPath => "unwrap/expect/panic! on engine dispatch and STM wave paths",
            Rule::BadSuppression => "suppression with unknown rule name or missing reason",
        }
    }

    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.name() == name)
    }

    pub fn infos() -> Vec<RuleInfo> {
        Rule::ALL
            .iter()
            .map(|r| RuleInfo {
                code: r.code().into(),
                name: r.name().into(),
                description: r.description().into(),
            })
            .collect()
    }
}

/// Crates whose state feeds the determinism digest.
const DETERMINISTIC_CRATES: [&str; 7] = [
    "crates/sim/",
    "crates/core/",
    "crates/sb/",
    "crates/ordering/",
    "crates/execution/",
    "crates/workload/",
    "crates/types/",
];

/// Files on engine-dispatch / actor-handler / STM-wave paths where a panic
/// escalates a recoverable abort (the `panic-path` scope from the issue).
const PANIC_PATH_FILES: [&str; 5] = [
    "crates/sim/src/engine.rs",
    "crates/core/src/replica.rs",
    "crates/core/src/client.rs",
    "crates/execution/src/stm_scheduler.rs",
    "crates/execution/src/mvmemory.rs",
];

fn is_deterministic_crate(path: &str) -> bool {
    DETERMINISTIC_CRATES.iter().any(|c| path.starts_with(c)) && path.contains("/src/")
}

/// Integration tests, benches, and examples never run inside a simulation.
fn is_non_prod(path: &str) -> bool {
    path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
        || path.starts_with("tests/")
        || path.starts_with("examples/")
}

/// Hash container type names whose iteration order is arbitrary. `FxHashMap`
/// and `FxHashSet` (crates/types/src/hash.rs) hash *reproducibly*, but their
/// iteration order is still an artifact of insertion history and capacity —
/// the workspace invariant says nothing may depend on it.
const HASH_TYPES: [&str; 4] = ["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Methods on a hash container that expose iteration order.
const ORDER_METHODS: [&str; 10] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".retain(",
];

/// Per-file analysis context.
pub struct FileAnalysis<'a> {
    /// Workspace-relative path with `/` separators.
    pub path: &'a str,
    pub lines: &'a [Line],
}

/// A parsed suppression annotation attached to a line index.
struct ParsedAllow {
    rule: Option<Rule>,
    reason: String,
    raw_name: String,
}

/// Parse `orthrus: allow(<rule>): <reason>` out of a comment channel. The
/// annotation must open the comment (after whitespace), so documentation
/// that merely *mentions* the grammar — doc comments, code-fence examples —
/// never parses as a suppression attempt.
fn parse_allow(comment: &str) -> Option<ParsedAllow> {
    let rest = comment.trim_start().strip_prefix("orthrus: allow(")?;
    let close = rest.find(')')?;
    let raw_name = rest[..close].trim().to_string();
    let after = &rest[close + 1..];
    let reason = after.strip_prefix(':').unwrap_or("").trim().to_string();
    Some(ParsedAllow {
        rule: Rule::from_name(&raw_name),
        reason,
        raw_name,
    })
}

/// Suppressions in effect per source line. A suppression on a comment-only
/// line carries forward (through further comment-only/blank lines) to the
/// next code line.
struct Allows {
    /// `per_line[i]` = suppressions applying to line `i`.
    per_line: Vec<Vec<(Rule, String)>>,
    /// (line, rule, reason) of every *matched* suppression gets recorded by
    /// the checker; this tracks which were declared so unused ones could be
    /// surfaced later if we ever want to.
    declared: Vec<(usize, Rule, String)>,
    bad: Vec<(usize, String)>,
}

fn collect_allows(lines: &[Line]) -> Allows {
    let mut allows = Allows {
        per_line: vec![Vec::new(); lines.len()],
        declared: Vec::new(),
        bad: Vec::new(),
    };
    let mut pending: Vec<(Rule, String)> = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if let Some(parsed) = parse_allow(&line.comment) {
            match (parsed.rule, parsed.reason.is_empty()) {
                (Some(rule), false) => {
                    allows.declared.push((i, rule, parsed.reason.clone()));
                    if line.code.trim().is_empty() {
                        // Comment-only line: applies to the next code line.
                        pending.push((rule, parsed.reason));
                    } else {
                        allows.per_line[i].push((rule, parsed.reason));
                    }
                }
                (None, _) => allows
                    .bad
                    .push((i, format!("unknown rule name {:?}", parsed.raw_name))),
                (Some(_), true) => allows.bad.push((
                    i,
                    format!(
                        "suppression for `{}` has no reason — a waiver must say why",
                        parsed.raw_name
                    ),
                )),
            }
        }
        if !pending.is_empty() && !line.code.trim().is_empty() {
            allows.per_line[i].append(&mut pending);
        }
    }
    allows
}

/// Last identifier token ending at byte offset `end` in `code` (the receiver
/// of a method call when `end` points at the `.`). For `self.runs.iter()`
/// this yields `runs` — field accesses resolve to the final segment.
fn receiver_before(code: &str, end: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    let mut i = end;
    // Skip over a closing paren group: `map.get(k).iter()` — give up, too
    // complex for name matching (conservative: no finding).
    if i > 0 && (bytes[i - 1] == b')' || bytes[i - 1] == b']') {
        return None;
    }
    while i > 0 {
        let c = bytes[i - 1] as char;
        if c.is_alphanumeric() || c == '_' {
            i -= 1;
        } else {
            break;
        }
    }
    if i == end {
        return None;
    }
    Some(&code[i..end])
}

/// Does `text[pos..]` start a word-boundary match of `word`?
fn word_at(text: &str, pos: usize, word: &str) -> bool {
    if !text[pos..].starts_with(word) {
        return false;
    }
    let before_ok = pos == 0
        || !text[..pos]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let after = pos + word.len();
    let after_ok = !text[after..]
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    before_ok && after_ok
}

/// All word-boundary occurrences of `word` in `text`.
fn word_positions(text: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = text[from..].find(word) {
        let pos = from + rel;
        if word_at(text, pos, word) {
            out.push(pos);
        }
        from = pos + word.len();
    }
    out
}

/// Pass 1 of nondet-iter: names bound to hash-container types in non-test
/// code. Matches field/param declarations (`name: [&]['a][mut] [path::]Type`)
/// and let-constructions (`let [mut] name = [path::]Type::`).
fn hash_bound_names(lines: &[Line]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for line in lines {
        if line.is_test {
            continue;
        }
        let code = &line.code;
        for ty in HASH_TYPES {
            for pos in word_positions(code, ty) {
                // Strip a path prefix glued to the type (`std::collections::`).
                let mut rest = &code[..pos];
                while let Some(stripped) = rest.strip_suffix("::") {
                    rest = stripped.trim_end_matches(|c: char| c.is_alphanumeric() || c == '_');
                }
                let mut rest = rest.trim_end();
                // Strip type-position noise: `name: &'a mut Type`.
                loop {
                    let before = rest;
                    rest = rest.trim_end_matches('&').trim_end();
                    if let Some(s) = rest.strip_suffix("mut") {
                        rest = s.trim_end();
                    }
                    if let Some(apos) = rest.rfind('\'') {
                        // Lifetime like `'a` directly at the end.
                        let tail = &rest[apos + 1..];
                        if !tail.is_empty() && tail.chars().all(|c| c.is_alphanumeric() || c == '_')
                        {
                            rest = rest[..apos].trim_end();
                        }
                    }
                    if rest == before {
                        break;
                    }
                }
                let tail_ident = |s: &str| -> String {
                    let start = s
                        .rfind(|c: char| !c.is_alphanumeric() && c != '_')
                        .map_or(0, |p| p + 1);
                    s[start..].to_string()
                };
                if let Some(colonless) = rest.strip_suffix(':') {
                    // `name: Type` (field, param, or typed let).
                    let name = tail_ident(colonless.trim_end());
                    if !name.is_empty() && !names.contains(&name) {
                        names.push(name);
                    }
                } else if let Some(eqless) = rest.strip_suffix('=') {
                    // `let [mut] name = Type::new()` / `name = Type::default()`.
                    let lhs = eqless.trim_end();
                    let name = tail_ident(lhs);
                    if !name.is_empty() {
                        let before_name = lhs[..lhs.len() - name.len()].trim_end();
                        let is_binding = before_name.ends_with("let")
                            || before_name.ends_with("mut")
                            || before_name.ends_with('.')
                            || before_name.is_empty();
                        if is_binding && !names.contains(&name) {
                            names.push(name);
                        }
                    }
                }
            }
        }
    }
    names
}

/// A finding before suppression filtering.
struct Finding {
    rule: Rule,
    line: usize,
    message: String,
}

/// Run every rule over one file. `snippet_for` pulls the original (unlexed)
/// source line for diagnostics.
pub fn check_file(fa: &FileAnalysis<'_>, original: &str, report: &mut Report) {
    let path = fa.path;
    let lines = fa.lines;
    let originals: Vec<&str> = original.lines().collect();
    let allows = collect_allows(lines);
    let mut findings: Vec<Finding> = Vec::new();

    for (i, reason) in &allows.bad {
        findings.push(Finding {
            rule: Rule::BadSuppression,
            line: *i,
            message: reason.clone(),
        });
    }

    let non_prod = is_non_prod(path);
    let det = is_deterministic_crate(path) && !non_prod;

    // --- nondet-iter -----------------------------------------------------
    if det {
        let bound = hash_bound_names(lines);
        for (i, line) in lines.iter().enumerate() {
            if line.is_test {
                continue;
            }
            let code = &line.code;
            // Method-call sites: `recv.iter()` etc.
            for method in ORDER_METHODS {
                let mut from = 0;
                while let Some(rel) = code[from..].find(method) {
                    let pos = from + rel;
                    if let Some(recv) = receiver_before(code, pos) {
                        if bound.iter().any(|n| n == recv) {
                            findings.push(Finding {
                                rule: Rule::NondetIter,
                                line: i,
                                message: format!(
                                    "order-dependent `{method}` on hash container `{recv}` — \
                                     use BTreeMap, sort first, or justify commutativity",
                                    method = method.trim_end_matches('('),
                                ),
                            });
                        }
                    }
                    from = pos + method.len();
                }
            }
            // `for pat in [&[mut]] path.to.name [{]` — direct loop over the
            // container (no method call on the tail).
            if let Some(for_pos) = word_positions(code, "for").first().copied() {
                if let Some(in_rel) = code[for_pos..].find(" in ") {
                    let expr = &code[for_pos + in_rel + 4..];
                    let expr = expr.split('{').next().unwrap_or("").trim();
                    let expr = expr.trim_start_matches('&');
                    let expr = expr.strip_prefix("mut ").unwrap_or(expr).trim();
                    if !expr.is_empty()
                        && expr
                            .chars()
                            .all(|c| c.is_alphanumeric() || c == '_' || c == '.')
                    {
                        let tail = expr.rsplit('.').next().unwrap_or(expr);
                        if bound.iter().any(|n| n == tail) {
                            findings.push(Finding {
                                rule: Rule::NondetIter,
                                line: i,
                                message: format!(
                                    "order-dependent `for` loop over hash container `{tail}` — \
                                     use BTreeMap, sort first, or justify commutativity"
                                ),
                            });
                        }
                    }
                }
            }
        }
    }

    // --- wall-clock -------------------------------------------------------
    // The whole bench crate is the measurement harness; it is the sanctioned
    // home of wall-clock reads. Tests/benches/examples never run inside a
    // simulation, so timing them is equally fine.
    if !path.starts_with("crates/bench/") && !non_prod {
        for (i, line) in lines.iter().enumerate() {
            if line.is_test {
                continue;
            }
            for pat in ["Instant::now", "SystemTime"] {
                if line.code.contains(pat) {
                    findings.push(Finding {
                        rule: Rule::WallClock,
                        line: i,
                        message: format!(
                            "wall-clock read `{pat}` — route through orthrus_bench::timing or \
                             the ProfTimer doorway"
                        ),
                    });
                    break;
                }
            }
        }
    }

    // --- ambient-rng --------------------------------------------------------
    // rng.rs is the implementation; everywhere else a construction must be
    // seeded from scenario state (suppress with the provenance).
    if det && path != "crates/types/src/rng.rs" {
        for (i, line) in lines.iter().enumerate() {
            if line.is_test {
                continue;
            }
            if line.code.contains("seed_from_u64") || line.code.contains("StdRng::new") {
                findings.push(Finding {
                    rule: Rule::AmbientRng,
                    line: i,
                    message: "RNG construction — justify the seed's provenance \
                              (must derive from the scenario seed)"
                        .into(),
                });
            }
        }
    }

    // --- stray-thread -------------------------------------------------------
    // Scope-policy exemption for non-prod trees: a bench or test sizing
    // itself to the machine cannot leak thread count into a digest.
    if path != "crates/types/src/pool.rs" && !non_prod {
        for (i, line) in lines.iter().enumerate() {
            if line.is_test {
                continue;
            }
            let code = &line.code;
            let hit = code.contains("std::thread")
                || code.contains("thread::spawn(")
                || code.contains("thread::scope(")
                || code.contains("thread::Builder")
                || code.contains("thread::sleep")
                || code.contains("thread::park")
                || code.contains("thread::available_parallelism");
            if hit {
                findings.push(Finding {
                    rule: Rule::StrayThread,
                    line: i,
                    message: "direct std::thread use — all parallelism must flow through \
                              orthrus_types::pool"
                        .into(),
                });
            }
        }
    }

    // --- unsafe-audit (applies everywhere, tests included) ------------------
    for (i, line) in lines.iter().enumerate() {
        if word_positions(&line.code, "unsafe").is_empty() {
            continue;
        }
        // SAFETY: accepted on the same line's comment or within the three
        // preceding lines' comments (rustfmt may wrap a justification).
        let has_safety = (i.saturating_sub(3)..=i).any(|j| lines[j].comment.contains("SAFETY:"));
        report.unsafe_inventory.push(UnsafeSite {
            file: path.into(),
            line: i + 1,
            has_safety,
        });
        if !has_safety {
            findings.push(Finding {
                rule: Rule::UnsafeAudit,
                line: i,
                message: "unsafe without an adjacent `// SAFETY:` justification".into(),
            });
        }
    }

    // --- panic-path ----------------------------------------------------------
    if PANIC_PATH_FILES.contains(&path) {
        for (i, line) in lines.iter().enumerate() {
            if line.is_test {
                continue;
            }
            for pat in [
                ".unwrap()",
                ".expect(",
                "panic!(",
                "unreachable!(",
                "todo!(",
                "unimplemented!(",
            ] {
                if line.code.contains(pat) {
                    findings.push(Finding {
                        rule: Rule::PanicPath,
                        line: i,
                        message: format!(
                            "`{}` on an engine/actor/STM path — a panic here tears down the \
                             wave instead of producing an abort verdict; justify the invariant",
                            pat.trim_start_matches('.').trim_end_matches('(')
                        ),
                    });
                }
            }
        }
    }

    // --- apply suppressions ---------------------------------------------------
    for finding in findings {
        let suppressed = allows.per_line[finding.line]
            .iter()
            .find(|(rule, _)| *rule == finding.rule);
        if let Some((rule, reason)) = suppressed {
            report.suppressions.push(Suppression {
                rule: rule.name().into(),
                file: path.into(),
                line: finding.line + 1,
                reason: reason.clone(),
            });
        } else {
            let snippet = originals
                .get(finding.line)
                .map(|s| s.trim().to_string())
                .unwrap_or_default();
            report.violations.push(Diagnostic {
                code: finding.rule.code().into(),
                rule: finding.rule.name().into(),
                file: path.into(),
                line: finding.line + 1,
                snippet,
                message: finding.message,
            });
        }
    }
}
