//! In-tree determinism & safety static analyzer for the Orthrus workspace.
//!
//! The repo's headline invariant — same seed ⇒ bit-identical digests for all
//! six protocols, at any thread count — is enforced *dynamically* by the
//! determinism suite. This crate adds the static half: a source scanner that
//! catches the hazard classes which historically produce replay divergence
//! (hash-map iteration order, ambient wall-clock and RNG reads, stray
//! threads) before they ever reach a run, plus an unsafe-code audit and a
//! panic-path lint for the engine's dispatch surfaces.
//!
//! Run it as `orthrus analyze [--json out.json]`; it exits nonzero on any
//! unsuppressed violation. Suppressions are inline and carry a mandatory
//! reason:
//!
//! ```text
//! // orthrus: allow(nondet-iter): commutative min-merge, order-free.
//! for (id, rec) in other.txs { ... }
//! ```
//!
//! See [`rules`] for the rule table and scope policy, [`report`] for the
//! JSON diagnostic shape, and ARCHITECTURE.md §"Static analysis &
//! determinism lints" for the narrative version.
//!
//! Zero dependencies, like everything else in the workspace: the scanner is
//! a hand-rolled state machine ([`lexer`]), not a `syn` parse. That costs
//! some precision (name-based receiver matching instead of type inference)
//! and buys total control of the false-positive surface — the workspace is
//! ours, so a rare mismatch is fixed by a rename or a reasoned suppression,
//! and the meta-test in `tests/workspace_clean.rs` keeps the tree at zero.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod report;
pub mod rules;

pub use report::{Diagnostic, Report, RuleInfo, Suppression, UnsafeSite};
pub use rules::Rule;

use std::io;
use std::path::{Path, PathBuf};

/// Analyze a single source text as if it lived at `relpath` (workspace-
/// relative, `/`-separated). This is the fixture-test entry point; the
/// walker calls it once per file.
pub fn analyze_source(relpath: &str, source: &str, report: &mut Report) {
    let lines = lexer::lex(source);
    let fa = rules::FileAnalysis {
        path: relpath,
        lines: &lines,
    };
    rules::check_file(&fa, source, report);
    report.files_scanned += 1;
}

/// Walk the workspace rooted at `root` and analyze every `.rs` file under
/// `crates/`, `src/`, `tests/`, and `examples/`, skipping `target/`. The
/// walk is sorted so the report is a deterministic function of the tree.
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    let mut report = Report {
        rules: Rule::infos(),
        ..Report::default()
    };
    let mut files: Vec<PathBuf> = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    for file in &files {
        let source = std::fs::read_to_string(file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        analyze_source(&rel, &source, &mut report);
    }
    report.sort();
    Ok(report)
}

/// Locate the workspace root: `start` or the nearest ancestor containing
/// both `Cargo.toml` and a `crates/` directory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(relpath: &str, src: &str) -> Report {
        let mut report = Report::default();
        analyze_source(relpath, src, &mut report);
        report.sort();
        report
    }

    fn codes(report: &Report) -> Vec<&str> {
        report.violations.iter().map(|v| v.code.as_str()).collect()
    }

    // --- nondet-iter -----------------------------------------------------

    #[test]
    fn nondet_iter_flags_hashmap_method_iteration() {
        let src = "use std::collections::HashMap;\n\
                   struct S { m: HashMap<u32, u32> }\n\
                   impl S { fn f(&self) -> u32 { self.m.values().sum() } }\n";
        let report = run("crates/sim/src/x.rs", src);
        assert_eq!(codes(&report), vec!["ORT001"]);
        assert_eq!(report.violations[0].line, 3);
    }

    #[test]
    fn nondet_iter_flags_for_loop_over_map() {
        let src = "use orthrus_types::FxHashMap;\n\
                   fn f(m: &FxHashMap<u32, u32>) { for (k, v) in m { let _ = (k, v); } }\n";
        let report = run("crates/execution/src/x.rs", src);
        assert_eq!(codes(&report), vec!["ORT001"]);
    }

    #[test]
    fn nondet_iter_respects_suppression_with_reason() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: HashMap<u32, u64>) -> u64 {\n\
                       // orthrus: allow(nondet-iter): sum is commutative.\n\
                       m.values().sum()\n\
                   }\n";
        let report = run("crates/core/src/x.rs", src);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.suppressions.len(), 1);
        assert_eq!(report.suppressions[0].reason, "sum is commutative.");
    }

    #[test]
    fn nondet_iter_ignores_btreemap_and_vec() {
        let src = "use std::collections::BTreeMap;\n\
                   fn f(m: &BTreeMap<u32, u32>, v: &[u32]) -> u32 {\n\
                       m.values().sum::<u32>() + v.iter().sum::<u32>()\n\
                   }\n";
        assert!(run("crates/sim/src/x.rs", src).is_clean());
    }

    #[test]
    fn nondet_iter_ignores_lookup_only_use() {
        let src = "use std::collections::HashSet;\n\
                   fn f(s: &HashSet<u32>) -> bool { s.contains(&3) && s.len() > 1 }\n";
        assert!(run("crates/sb/src/x.rs", src).is_clean());
    }

    #[test]
    fn nondet_iter_skips_test_regions_and_foreign_crates() {
        let src = "use std::collections::HashMap;\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn f(m: HashMap<u32, u32>) -> Vec<u32> { m.into_keys().collect() }\n\
                   }\n";
        assert!(run("crates/sim/src/x.rs", src).is_clean());
        let prod = "use std::collections::HashMap;\n\
                    fn f(m: HashMap<u32, u32>) -> Vec<u32> { m.into_keys().collect() }\n";
        assert!(run("crates/lab/src/x.rs", prod).is_clean(), "lab exempt");
        assert!(!run("crates/sim/src/x.rs", prod).is_clean());
        assert!(
            run("crates/sim/tests/x.rs", prod).is_clean(),
            "tests/ exempt"
        );
    }

    #[test]
    fn nondet_iter_ignores_mentions_in_comments_and_strings() {
        let src = "// a HashMap<u32, u32> named m: m.values() would be bad\n\
                   fn f() -> &'static str { \"m: HashMap — m.values()\" }\n";
        assert!(run("crates/sim/src/x.rs", src).is_clean());
    }

    // --- wall-clock --------------------------------------------------------

    #[test]
    fn wall_clock_flags_instant_outside_bench() {
        let src = "fn f() -> std::time::Instant { std::time::Instant::now() }\n";
        let report = run("crates/sim/src/x.rs", src);
        assert_eq!(codes(&report), vec!["ORT002"]);
        assert!(run("crates/bench/src/timing.rs", src).is_clean());
    }

    #[test]
    fn wall_clock_suppression_and_systemtime() {
        let ok = "// orthrus: allow(wall-clock): profiling doorway, observability only.\n\
                  fn now() -> std::time::Instant { std::time::Instant::now() }\n";
        assert!(run("crates/types/src/profiling.rs", ok).is_clean());
        let bad = "fn f() -> u64 { std::time::SystemTime::now().elapsed().unwrap().as_secs() }\n";
        assert_eq!(codes(&run("src/bin/x.rs", bad)), vec!["ORT002"]);
    }

    // --- ambient-rng ---------------------------------------------------------

    #[test]
    fn ambient_rng_flags_unjustified_construction() {
        let src = "fn f() { let _rng = orthrus_types::rng::StdRng::seed_from_u64(42); }\n";
        let report = run("crates/workload/src/x.rs", src);
        assert_eq!(codes(&report), vec!["ORT003"]);
        // The rng module itself is the sanctioned implementation site.
        assert!(run("crates/types/src/rng.rs", src).is_clean());
        let ok = "fn f(seed: u64) {\n\
                  // orthrus: allow(ambient-rng): seeded from the scenario seed.\n\
                  let _rng = StdRng::seed_from_u64(seed);\n\
                  }\n";
        assert!(run("crates/workload/src/x.rs", ok).is_clean());
    }

    // --- stray-thread ----------------------------------------------------------

    #[test]
    fn stray_thread_flags_spawn_outside_pool() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(codes(&run("crates/core/src/x.rs", src)), vec!["ORT004"]);
        assert!(run("crates/types/src/pool.rs", src).is_clean());
    }

    // --- unsafe-audit -------------------------------------------------------

    #[test]
    fn unsafe_requires_safety_comment_and_feeds_inventory() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let report = run("crates/bench/benches/x.rs", bad);
        assert_eq!(codes(&report), vec!["ORT005"]);
        assert_eq!(report.unsafe_inventory.len(), 1);
        assert!(!report.unsafe_inventory[0].has_safety);

        let good = "// SAFETY: p is valid for reads by contract.\n\
                    fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let report = run("crates/bench/benches/x.rs", good);
        assert!(report.is_clean());
        assert!(report.unsafe_inventory[0].has_safety);
    }

    #[test]
    fn unsafe_audit_applies_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(p: *const u8) -> u8 { unsafe { *p } }\n}\n";
        assert_eq!(codes(&run("crates/sim/src/x.rs", src)), vec!["ORT005"]);
    }

    // --- panic-path -----------------------------------------------------------

    #[test]
    fn panic_path_flags_unwrap_in_engine_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(codes(&run("crates/sim/src/engine.rs", src)), vec!["ORT006"]);
        assert!(run("crates/sim/src/stats.rs", src).is_clean());
        let ok = "fn f(x: Option<u32>) -> u32 {\n\
                  // orthrus: allow(panic-path): x is Some by loop invariant above.\n\
                  x.unwrap()\n\
                  }\n";
        assert!(run("crates/sim/src/engine.rs", ok).is_clean());
    }

    // --- suppression hygiene -----------------------------------------------------

    #[test]
    fn bad_suppressions_are_violations() {
        let unknown = "// orthrus: allow(made-up-rule): whatever\nfn f() {}\n";
        assert_eq!(codes(&run("crates/sim/src/x.rs", unknown)), vec!["ORT007"]);
        let reasonless = "fn f(x: Option<u32>) -> u32 {\n\
                          x.unwrap() // orthrus: allow(panic-path):\n\
                          }\n";
        let report = run("crates/sim/src/engine.rs", reasonless);
        // The reasonless allow does NOT suppress, so both ORT006 and ORT007 fire.
        let mut got = codes(&report);
        got.sort_unstable();
        assert_eq!(got, vec!["ORT006", "ORT007"]);
    }
}
