//! The meta-test: the checked-in workspace is lint-clean, so a CI failure of
//! the `orthrus analyze` gate reproduces locally as plain `cargo test`.
//!
//! Also proves the gate has teeth — an injected hash-map iteration in
//! `crates/sim` must fail the pass — and round-trips the full workspace
//! report through the `--json` diagnostic shape.

use orthrus_analysis::{analyze_source, analyze_workspace, find_workspace_root, Report};

fn workspace_report() -> Report {
    let here = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("analysis crate lives inside the workspace");
    analyze_workspace(&root).expect("workspace walk")
}

#[test]
fn checked_in_workspace_is_lint_clean() {
    let report = workspace_report();
    assert!(
        report.is_clean(),
        "the workspace has unsuppressed violations — run `orthrus analyze` for the list:\n{}",
        report
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The walk covered the real tree, not an empty directory.
    assert!(report.files_scanned > 50, "{} files", report.files_scanned);
    // Every suppression in the tree carries a written reason (the analyzer
    // refuses reasonless ones, so this documents the invariant end-to-end).
    assert!(!report.suppressions.is_empty());
    for s in &report.suppressions {
        assert!(
            !s.reason.trim().is_empty(),
            "reasonless suppression at {}:{}",
            s.file,
            s.line
        );
    }
    // The unsafe inventory is complete: every site is justified.
    for u in &report.unsafe_inventory {
        assert!(u.has_safety, "unjustified unsafe at {}:{}", u.file, u.line);
    }
}

#[test]
fn injected_hashmap_iteration_in_sim_fails_the_pass() {
    let mut report = Report::default();
    let injected = "use std::collections::HashMap;\n\
                    pub struct Planner { lanes: HashMap<u64, Vec<u64>> }\n\
                    impl Planner {\n\
                        pub fn emit(&self) -> Vec<u64> {\n\
                            let mut out = Vec::new();\n\
                            for (id, lane) in self.lanes.iter() {\n\
                                out.push(*id + lane.len() as u64);\n\
                            }\n\
                            out\n\
                        }\n\
                    }\n";
    analyze_source("crates/sim/src/injected.rs", injected, &mut report);
    assert!(!report.is_clean(), "injected nondet iteration must fail");
    assert_eq!(report.violations.len(), 1);
    let v = &report.violations[0];
    assert_eq!(v.code, "ORT001");
    assert_eq!(v.rule, "nondet-iter");
    assert_eq!(v.file, "crates/sim/src/injected.rs");
    assert_eq!(v.line, 6);
}

#[test]
fn workspace_report_round_trips_through_json() {
    let report = workspace_report();
    let json = report.to_json();
    let parsed = Report::from_json(&json).expect("workspace report parses back");
    assert_eq!(parsed, report, "JSON round-trip must be lossless");
    // And the serialization is a fixed point: same object ⇒ same bytes.
    assert_eq!(parsed.to_json(), json);
}
