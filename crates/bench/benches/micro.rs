//! Criterion micro-benchmarks of the hot data structures and algorithms:
//! escrow operations, the global-ordering policies, bucket assignment and the
//! PBFT quorum state machine.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use orthrus_core::Partitioner;
use orthrus_execution::{EscrowLog, Executor, ObjectStore};
use orthrus_ordering::{GlobalOrderingPolicy, LadonOrdering, PredeterminedOrdering};
use orthrus_sb::{cluster::LocalCluster, SbMessage};
use orthrus_types::{
    Block, BlockParams, ClientId, Epoch, InstanceId, ObjectKey, ObjectOp, Rank, ReplicaId, SeqNum,
    SystemState, Transaction, TxId, View,
};

fn make_block(instance: u32, sn: u64, rank: u64, txs: usize) -> Block {
    let batch: Vec<Transaction> = (0..txs)
        .map(|i| {
            Transaction::payment(
                TxId::new(ClientId::new((sn as usize * txs + i) as u64), 0),
                ClientId::new(i as u64),
                ClientId::new(i as u64 + 1),
                1,
            )
        })
        .collect();
    Block::new(
        BlockParams {
            instance: InstanceId::new(instance),
            sn: SeqNum::new(sn),
            epoch: Epoch::new(0),
            view: View::new(0),
            proposer: ReplicaId::new(instance),
            rank: Rank::new(rank),
            state: SystemState::new(4),
        },
        batch,
    )
}

fn bench_escrow(c: &mut Criterion) {
    c.bench_function("escrow_commit_cycle", |b| {
        b.iter_batched(
            || {
                let mut store = ObjectStore::new();
                for k in 0..1_000u64 {
                    store.create_account(ObjectKey::new(k), 1_000_000);
                }
                (store, EscrowLog::new())
            },
            |(mut store, mut elog)| {
                for i in 0..1_000u64 {
                    let tx = Transaction::payment(
                        TxId::new(ClientId::new(i % 1_000), i),
                        ClientId::new(i % 1_000),
                        ClientId::new((i + 1) % 1_000),
                        5,
                    );
                    let leg = ObjectOp::debit(ObjectKey::new(i % 1_000), 5);
                    elog.escrow(&mut store, &leg, tx.id);
                    elog.commit(&tx);
                }
                (store, elog)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_executor_fast_path(c: &mut Criterion) {
    c.bench_function("executor_payment_fast_path_1k", |b| {
        let assign = |key: ObjectKey| InstanceId::new((key.value() % 4) as u32);
        b.iter_batched(
            || {
                let mut store = ObjectStore::new();
                for k in 0..1_000u64 {
                    store.create_account(ObjectKey::new(k), 1_000_000);
                }
                Executor::with_store(store)
            },
            |mut exec| {
                for i in 0..1_000u64 {
                    let tx = Transaction::payment(
                        TxId::new(ClientId::new(i % 1_000), i),
                        ClientId::new(i % 1_000),
                        ClientId::new((i + 7) % 1_000),
                        3,
                    );
                    let instance = assign(ObjectKey::new(i % 1_000));
                    exec.process_plog_tx(&tx, instance, &assign);
                }
                exec
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_ordering_policies(c: &mut Criterion) {
    let m = 16u32;
    let blocks: Vec<Block> = (0..m)
        .flat_map(|i| (0..8u64).map(move |sn| (i, sn)))
        .enumerate()
        .map(|(idx, (i, sn))| make_block(i, sn, idx as u64 + 1, 0))
        .collect();

    c.bench_function("ladon_ordering_128_blocks", |b| {
        b.iter_batched(
            || (LadonOrdering::new(m), blocks.clone()),
            |(mut policy, blocks)| {
                let mut confirmed = 0usize;
                for block in blocks {
                    confirmed += policy.on_deliver(block).len();
                }
                confirmed
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("predetermined_ordering_128_blocks", |b| {
        b.iter_batched(
            || (PredeterminedOrdering::new(m), blocks.clone()),
            |(mut policy, blocks)| {
                let mut confirmed = 0usize;
                for block in blocks {
                    confirmed += policy.on_deliver(block).len();
                }
                confirmed
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_partitioner(c: &mut Criterion) {
    let partitioner = Partitioner::new(128);
    let txs: Vec<Transaction> = (0..1_000u64)
        .map(|i| {
            Transaction::payment(
                TxId::new(ClientId::new(i), 0),
                ClientId::new(i),
                ClientId::new(i + 1),
                1,
            )
        })
        .collect();
    c.bench_function("bucket_assignment_1k_txs", |b| {
        b.iter(|| {
            txs.iter()
                .map(|tx| partitioner.instances_of(tx).len())
                .sum::<usize>()
        })
    });
}

fn bench_pbft_round(c: &mut Criterion) {
    c.bench_function("pbft_deliver_one_block_n4", |b| {
        b.iter_batched(
            || LocalCluster::new(InstanceId::new(0), 4, 64),
            |mut cluster| {
                cluster.propose(ReplicaId::new(0), make_block(0, 0, 1, 64));
                cluster.run();
                cluster
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("pbft_message_wire_size", |b| {
        let block = make_block(0, 0, 1, 256);
        b.iter(|| {
            let msg = SbMessage::PrePrepare { block: block.clone() };
            orthrus_sim::Payload::wire_bytes(&msg)
        })
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_escrow,
        bench_executor_fast_path,
        bench_ordering_policies,
        bench_partitioner,
        bench_pbft_round
);
criterion_main!(micro);
