//! Micro-benchmarks of the hot data structures and algorithms: broadcast
//! fan-out over the zero-copy message fabric, digest memoization, escrow
//! operations, the global-ordering policies, bucket assignment and the PBFT
//! quorum state machine.
//!
//! Runs through the dependency-free harness in `orthrus_bench::timing`
//! (`cargo bench --bench micro`). The fan-out and digest benches isolate the
//! two costs the zero-copy refactor removed from the broadcast path:
//! per-recipient deep copies of the transaction batch, and repeated header
//! hashing.

use orthrus_bench::fabric;
use orthrus_bench::timing::bench;
use orthrus_core::Partitioner;
use orthrus_execution::{EscrowLog, Executor, ObjectStore};
use orthrus_ordering::{GlobalOrderingPolicy, LadonOrdering, PredeterminedOrdering};
use orthrus_sb::{cluster::LocalCluster, SbMessage};
use orthrus_types::{
    Block, BlockParams, ClientId, Epoch, InstanceId, ObjectKey, ObjectOp, Rank, ReplicaId, SeqNum,
    SharedBlock, SystemState, Transaction, TxId, View,
};
use std::sync::Arc;

fn make_block(instance: u32, sn: u64, rank: u64, txs: usize) -> SharedBlock {
    let batch: Vec<Transaction> = (0..txs)
        .map(|i| {
            Transaction::payment(
                TxId::new(ClientId::new((sn as usize * txs + i) as u64), 0),
                ClientId::new(i as u64),
                ClientId::new(i as u64 + 1),
                1,
            )
        })
        .collect();
    Arc::new(Block::new(
        BlockParams {
            instance: InstanceId::new(instance),
            sn: SeqNum::new(sn),
            epoch: Epoch::new(0),
            view: View::new(0),
            proposer: ReplicaId::new(instance),
            rank: Rank::new(rank),
            state: SystemState::new(4),
        },
        batch,
    ))
}

/// The core before/after comparison of the zero-copy fabric: sending one
/// 256-transaction block to 99 recipients, plus digest memoization. Shared
/// with the `msgfabric` snapshot bench (single implementation, same names).
fn bench_message_fabric() {
    let block = fabric::make_fanout_block();
    fabric::run_fabric_benches(&block);
    bench("payload_digest_memoized_tx_digests", 10, || {
        Block::payload_digest(&block.txs)
    });
}

fn bench_escrow() {
    // Fresh store + log per iteration so the escrow log stays empty-ish and
    // the measurement reflects the steady-state cycle, not map growth. The
    // per-iteration setup (100 accounts) is included in the reported time.
    bench("escrow_commit_cycle_100tx_fresh_store", 10, || {
        let mut store = ObjectStore::new();
        for k in 0..100u64 {
            store.create_account(ObjectKey::new(k), u64::MAX / 2);
        }
        let mut elog = EscrowLog::new();
        for i in 0..100u64 {
            let tx = Transaction::payment(
                TxId::new(ClientId::new(i), i),
                ClientId::new(i),
                ClientId::new((i + 1) % 100),
                5,
            );
            let leg = ObjectOp::debit(ObjectKey::new(i), 5);
            elog.escrow(&mut store, &leg, tx.id);
            elog.commit(&tx);
        }
        (store, elog)
    });
}

fn bench_executor_fast_path() {
    let assign = |key: ObjectKey| InstanceId::new((key.value() % 4) as u32);
    // Fresh executor per iteration: the outcomes map is bounded at 100
    // entries, so the bench measures the fast path rather than unbounded
    // HashMap growth. Setup cost is included in the reported time.
    bench("executor_payment_fast_path_100tx_fresh", 10, || {
        let mut store = ObjectStore::new();
        for k in 0..100u64 {
            store.create_account(ObjectKey::new(k), u64::MAX / 2);
        }
        let mut exec = Executor::with_store(store);
        for i in 0..100u64 {
            let tx = Transaction::payment(
                TxId::new(ClientId::new(i), i),
                ClientId::new(i),
                ClientId::new((i + 7) % 100),
                3,
            );
            let instance = assign(ObjectKey::new(i));
            exec.process_plog_tx(&tx, instance, &assign);
        }
        exec
    });
}

fn bench_ordering_policies() {
    let m = 16u32;
    let blocks: Vec<SharedBlock> = (0..m)
        .flat_map(|i| (0..8u64).map(move |sn| (i, sn)))
        .enumerate()
        .map(|(idx, (i, sn))| make_block(i, sn, idx as u64 + 1, 0))
        .collect();

    bench("ladon_ordering_128_blocks", 10, || {
        let mut policy = LadonOrdering::new(m);
        let mut confirmed = 0usize;
        for block in &blocks {
            confirmed += policy.on_deliver(Arc::clone(block)).len();
        }
        confirmed
    });

    bench("predetermined_ordering_128_blocks", 10, || {
        let mut policy = PredeterminedOrdering::new(m);
        let mut confirmed = 0usize;
        for block in &blocks {
            confirmed += policy.on_deliver(Arc::clone(block)).len();
        }
        confirmed
    });
}

fn bench_partitioner() {
    let partitioner = Partitioner::new(128);
    let txs: Vec<Transaction> = (0..1_000u64)
        .map(|i| {
            Transaction::payment(
                TxId::new(ClientId::new(i), 0),
                ClientId::new(i),
                ClientId::new(i + 1),
                1,
            )
        })
        .collect();
    bench("bucket_assignment_1k_txs", 10, || {
        txs.iter()
            .map(|tx| partitioner.instances_of(tx).len())
            .sum::<usize>()
    });
}

fn bench_pbft_round() {
    bench("pbft_deliver_one_block_n4", 10, || {
        let mut cluster = LocalCluster::new(InstanceId::new(0), 4, 64);
        cluster.propose(ReplicaId::new(0), make_block(0, 0, 1, 64));
        cluster.run();
        cluster
    });

    let block = make_block(0, 0, 1, 256);
    bench("pbft_preprepare_wire_size", 10, || {
        let msg = SbMessage::PrePrepare {
            block: Arc::clone(&block),
        };
        orthrus_sim::Payload::wire_bytes(&msg)
    });
}

fn main() {
    println!("== orthrus micro-benchmarks (median ns/iter) ==");
    bench_message_fabric();
    bench_escrow();
    bench_executor_fast_path();
    bench_ordering_policies();
    bench_partitioner();
    bench_pbft_round();
}
