//! Figure 6 (and Figure 1b): latency breakdown of ISS versus Orthrus on 16
//! WAN replicas with one 10× straggler, split into the five pipeline stages
//! (send, preprocessing, partial ordering, global ordering, reply).

use orthrus_bench::harness::{self, BenchScale};
use orthrus_core::run_scenarios;
use orthrus_types::{NetworkKind, ProtocolKind};
use std::fs;

fn main() {
    let scale = BenchScale::from_env();
    let replicas = scale.fixed_replicas();
    println!();
    println!(
        "=== Figure 6 / Figure 1b — latency breakdown, {replicas} replicas WAN, 1 straggler ==="
    );
    println!(
        "{:<10} {:>10} {:>14} {:>18} {:>17} {:>10} {:>10}",
        "protocol",
        "send s",
        "preprocess s",
        "partial order s",
        "global order s",
        "reply s",
        "global %"
    );
    let mut csv = String::from(
        "protocol,send_s,preprocess_s,partial_ordering_s,global_ordering_s,reply_s,global_share\n",
    );
    // The two protocol runs are independent; sweep them in parallel and keep
    // the original print order.
    let protocols = [ProtocolKind::Orthrus, ProtocolKind::Iss];
    let scenarios: Vec<_> = protocols
        .iter()
        .map(|&protocol| {
            harness::paper_scenario(protocol, NetworkKind::Wan, replicas, 0.46, true, scale)
        })
        .collect();
    let outcomes = run_scenarios(&scenarios);
    for (protocol, outcome) in protocols.iter().zip(&outcomes) {
        let b = outcome.breakdown;
        println!(
            "{:<10} {:>10.3} {:>14.3} {:>18.3} {:>17.3} {:>10.3} {:>9.1}%",
            protocol.label(),
            b.send.as_secs_f64(),
            b.preprocess.as_secs_f64(),
            b.partial_ordering.as_secs_f64(),
            b.global_ordering.as_secs_f64(),
            b.reply.as_secs_f64(),
            b.global_ordering_share() * 100.0
        );
        csv.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            protocol.label(),
            b.send.as_secs_f64(),
            b.preprocess.as_secs_f64(),
            b.partial_ordering.as_secs_f64(),
            b.global_ordering.as_secs_f64(),
            b.reply.as_secs_f64(),
            b.global_ordering_share()
        ));
    }
    let path = harness::figure_csv_path("fig6_latency_breakdown");
    if fs::write(&path, csv).is_ok() {
        println!("(series written to {})", path.display());
    }
}
