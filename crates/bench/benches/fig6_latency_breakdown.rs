//! Figure 6 (and Figure 1b): latency breakdown of ISS versus Orthrus on a
//! fixed-size WAN deployment with one 10× straggler, split into the five
//! pipeline stages (send, preprocessing, partial ordering, global ordering,
//! reply).
//!
//! The two-run grid comes from the spec registry
//! (`scenarios/fig6_latency_breakdown.orth`).

use orthrus_bench::harness::{self, BenchScale};
use orthrus_core::run_scenarios;
use std::fs;

fn main() {
    let scale = BenchScale::from_env();
    println!();
    println!(
        "=== {} ===",
        harness::registry_title("fig6_latency_breakdown")
    );
    println!(
        "{:<10} {:>10} {:>14} {:>18} {:>17} {:>10} {:>10}",
        "protocol",
        "send s",
        "preprocess s",
        "partial order s",
        "global order s",
        "reply s",
        "global %"
    );
    let mut csv = String::from(
        "protocol,send_s,preprocess_s,partial_ordering_s,global_ordering_s,reply_s,global_share\n",
    );
    // The two protocol runs are independent; sweep them in parallel and keep
    // the original print order.
    let jobs = harness::registry_jobs("fig6_latency_breakdown", scale);
    let scenarios: Vec<_> = jobs.iter().map(|job| job.scenario.clone()).collect();
    let outcomes = run_scenarios(&scenarios).expect("registry scenarios must validate");
    for (job, outcome) in jobs.iter().zip(&outcomes) {
        let b = outcome.breakdown;
        println!(
            "{:<10} {:>10.3} {:>14.3} {:>18.3} {:>17.3} {:>10.3} {:>9.1}%",
            job.label,
            b.send.as_secs_f64(),
            b.preprocess.as_secs_f64(),
            b.partial_ordering.as_secs_f64(),
            b.global_ordering.as_secs_f64(),
            b.reply.as_secs_f64(),
            b.global_ordering_share() * 100.0
        );
        csv.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            job.label,
            b.send.as_secs_f64(),
            b.preprocess.as_secs_f64(),
            b.partial_ordering.as_secs_f64(),
            b.global_ordering.as_secs_f64(),
            b.reply.as_secs_f64(),
            b.global_ordering_share()
        ));
    }
    let path = harness::figure_csv_path("fig6_latency_breakdown");
    if fs::write(&path, csv).is_ok() {
        println!("(series written to {})", path.display());
    }
}
