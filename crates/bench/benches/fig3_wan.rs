//! Figure 3 (a–d): throughput and latency of Orthrus, ISS, RCC, Mir, DQBFT
//! and Ladon in the WAN, with 0 and 1 straggler, sweeping the replica count.
//!
//! The grid definitions live in the spec registry
//! (`scenarios/fig3ab_wan_no_straggler.orth` /
//! `scenarios/fig3cd_wan_straggler.orth`); this bench just lowers and runs
//! them. Reduced scale by default; `ORTHRUS_FULL_SCALE=1` applies the specs'
//! `[full_scale]` overrides (the paper's 8–128 replica sweep with the
//! 200k-transaction workload). Scenario points are independent and
//! deterministic, so they run on the scoped thread pool
//! (`ORTHRUS_SWEEP_THREADS` overrides the worker count); results are printed
//! and written in input order regardless of thread count.

use orthrus_bench::harness::{self, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    for figure in ["fig3ab_wan_no_straggler", "fig3cd_wan_straggler"] {
        harness::print_header(&harness::registry_title(figure), "replicas");
        let jobs = harness::registry_jobs(figure, scale);
        let points = harness::measure_sweep(&jobs);
        for point in &points {
            harness::print_row(point);
        }
        harness::write_csv(figure, "replicas", &points);
    }
}
