//! Figure 3 (a–d): throughput and latency of Orthrus, ISS, RCC, Mir, DQBFT
//! and Ladon in the WAN, with 0 and 1 straggler, sweeping the replica count.
//!
//! Reduced scale by default; `ORTHRUS_FULL_SCALE=1` runs the paper's 8–128
//! replica sweep with the 200k-transaction workload. Scenario points are
//! independent and deterministic, so they run on the scoped thread pool
//! (`ORTHRUS_SWEEP_THREADS` overrides the worker count); results are printed
//! and written in input order regardless of thread count.

use orthrus_bench::harness::{self, BenchScale, SweepJob};
use orthrus_types::{NetworkKind, ProtocolKind};

fn main() {
    let scale = BenchScale::from_env();
    for straggler in [false, true] {
        let figure = if straggler {
            "fig3cd_wan_straggler"
        } else {
            "fig3ab_wan_no_straggler"
        };
        harness::print_header(
            &format!(
                "Figure 3{} — WAN, {} straggler(s)",
                if straggler { "c/d" } else { "a/b" },
                u32::from(straggler)
            ),
            "replicas",
        );
        let mut jobs = Vec::new();
        for &n in &scale.replica_counts() {
            for protocol in ProtocolKind::ALL {
                let scenario =
                    harness::paper_scenario(protocol, NetworkKind::Wan, n, 0.46, straggler, scale);
                jobs.push(SweepJob::new(protocol.label(), f64::from(n), scenario));
            }
        }
        let points = harness::measure_sweep(&jobs);
        for point in &points {
            harness::print_row(point);
        }
        harness::write_csv(figure, "replicas", &points);
    }
}
