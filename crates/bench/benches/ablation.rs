//! Ablation study of the design choices called out in `DESIGN.md`:
//!
//! * **Fast path** — Orthrus (partial ordering + escrow for payments) versus
//!   Ladon (same dynamic global ordering, no fast path): isolates the benefit
//!   of confirming payments from the partial logs.
//! * **Dynamic versus pre-determined global ordering** — Ladon versus ISS:
//!   isolates the benefit of rank-based ordering under a straggler.
//! * **Multi-payer share** — how much the cross-instance escrow costs as more
//!   payments span two instances.
//! * **Hot accounts** — a skewed workload (`zipf_exponent ≥ 1.2`) that
//!   concentrates load on one bucket / state shard; the per-shard op counts
//!   recorded in each `MeasuredPoint` quantify the imbalance.
//!
//! All four grids live in the spec registry (`scenarios/ablation_*.orth`);
//! this bench lowers, runs and prints them.

use orthrus_bench::harness::{self, BenchScale};

fn main() {
    let scale = BenchScale::from_env();

    let grids = [
        ("ablation_fast_path", "payment %", "payment_share_pct"),
        ("ablation_global_ordering", "replicas", "replicas"),
        ("ablation_multi_payer", "multi-payer %", "multi_payer_pct"),
        ("ablation_hot_account", "zipf exponent", "zipf_exponent"),
    ];

    for (figure, x_label, x_column) in grids {
        let jobs = harness::registry_jobs(figure, scale);
        // Banners come from the spec titles, so editing a `.orth` grid
        // cannot leave a stale header.
        harness::print_header(
            &format!(
                "{} ({} replicas)",
                harness::registry_title(figure),
                jobs[0].scenario.config.num_replicas
            ),
            x_label,
        );
        let points = harness::measure_sweep(&jobs);
        for point in &points {
            if figure == "ablation_hot_account" {
                let imbalance = harness::shard_imbalance(&point.shard_ops);
                println!(
                    "    hottest shard carries {imbalance:.2}x the mean load (ops {:?})",
                    point.shard_ops
                );
            }
            harness::print_row(point);
        }
        harness::write_csv(figure, x_column, &points);
    }
}
