//! Ablation study of the design choices called out in `DESIGN.md`:
//!
//! * **Fast path** — Orthrus (partial ordering + escrow for payments) versus
//!   Ladon (same dynamic global ordering, no fast path): isolates the benefit
//!   of confirming payments from the partial logs.
//! * **Dynamic versus pre-determined global ordering** — Ladon versus ISS:
//!   isolates the benefit of rank-based ordering under a straggler.
//! * **Multi-payer share** — how much the cross-instance escrow costs as more
//!   payments span two instances.
//! * **Hot accounts** — a skewed workload (`zipf_exponent ≥ 1.2`) that
//!   concentrates load on one bucket / state shard; the per-shard op counts
//!   recorded in each `MeasuredPoint` quantify the imbalance.

use orthrus_bench::harness::{self, BenchScale};
use orthrus_types::{NetworkKind, ProtocolKind};

fn main() {
    let scale = BenchScale::from_env();
    let replicas = scale.fixed_replicas();

    // Ablation A: payment fast path (Orthrus vs Ladon), with a straggler.
    harness::print_header(
        &format!("Ablation A — payment fast path ({replicas} replicas WAN, 1 straggler)"),
        "payment %",
    );
    let mut points = Vec::new();
    for share_pct in [20u32, 60, 100] {
        for protocol in [ProtocolKind::Orthrus, ProtocolKind::Ladon] {
            let scenario = harness::paper_scenario(
                protocol,
                NetworkKind::Wan,
                replicas,
                f64::from(share_pct) / 100.0,
                true,
                scale,
            );
            let point = harness::measure(protocol.label(), f64::from(share_pct), &scenario);
            harness::print_row(&point);
            points.push(point);
        }
    }
    harness::write_csv("ablation_fast_path", "payment_share_pct", &points);

    // Ablation B: dynamic vs pre-determined global ordering under a straggler.
    harness::print_header(
        &format!("Ablation B — global ordering policy ({replicas} replicas WAN, 1 straggler)"),
        "replicas",
    );
    let mut points = Vec::new();
    for protocol in [ProtocolKind::Ladon, ProtocolKind::Iss, ProtocolKind::Dqbft] {
        let scenario =
            harness::paper_scenario(protocol, NetworkKind::Wan, replicas, 0.46, true, scale);
        let point = harness::measure(protocol.label(), f64::from(replicas), &scenario);
        harness::print_row(&point);
        points.push(point);
    }
    harness::write_csv("ablation_global_ordering", "replicas", &points);

    // Ablation C: multi-payer share (cross-instance escrow cost), no faults.
    harness::print_header(
        &format!("Ablation C — multi-payer share ({replicas} replicas WAN, payments only)"),
        "multi-payer %",
    );
    let mut points = Vec::new();
    for multi_pct in [0u32, 10, 30, 50] {
        let mut scenario = harness::paper_scenario(
            ProtocolKind::Orthrus,
            NetworkKind::Wan,
            replicas,
            1.0,
            false,
            scale,
        );
        scenario.workload.multi_payer_share = f64::from(multi_pct) / 100.0;
        let point = harness::measure("Orthrus", f64::from(multi_pct), &scenario);
        harness::print_row(&point);
        points.push(point);
    }
    harness::write_csv("ablation_multi_payer", "multi_payer_pct", &points);

    // Ablation D: hot-account skew (zipf exponent sweep). With exponent
    // ≥ 1.2 most debits hit a handful of accounts, all serialised by one SB
    // instance and one state shard — the per-shard op counters in the JSON
    // make the imbalance measurable across PRs.
    harness::print_header(
        &format!("Ablation D — hot-account skew ({replicas} replicas LAN, payments only)"),
        "zipf exponent",
    );
    let mut points = Vec::new();
    for zipf_tenths in [8u32, 12, 14] {
        let exponent = f64::from(zipf_tenths) / 10.0;
        let mut scenario = harness::paper_scenario(
            ProtocolKind::Orthrus,
            NetworkKind::Lan,
            replicas,
            1.0,
            false,
            scale,
        );
        scenario.workload = scenario.workload.with_zipf_exponent(exponent);
        let point = harness::measure("Orthrus", exponent, &scenario);
        let imbalance = harness::shard_imbalance(&point.shard_ops);
        println!(
            "    hottest shard carries {imbalance:.2}x the mean load (ops {:?})",
            point.shard_ops
        );
        harness::print_row(&point);
        points.push(point);
    }
    harness::write_csv("ablation_hot_account", "zipf_exponent", &points);
}
