//! Executor snapshot: quantifies the sharded execution engine and records
//! the result to `BENCH_executor.json` at the repository root.
//!
//! Four measurements:
//!
//! 1. **Plog execution** — a payment fast-path workload with a realistic
//!    population of outstanding contract escrows (contracts waiting for
//!    global ordering, as in the paper's 46%-payment trace), executed by
//!    (a) a faithful re-implementation of the pre-sharding executor (single
//!    `BTreeMap` store, escrow commit via a full-log `retain` scan), (b) the
//!    new engine's per-transaction reference walk on a single shard, and
//!    (c) the new engine's schedule API at m ∈ {4, 8, 16} shards on the
//!    worker pool. All variants must agree on committed counts and final
//!    balances; the sharded digests must also agree across shard counts.
//!    A pool-width-1 run is always included: at width 1 the schedule API
//!    routes through the serial reference walk (as the replica dispatch
//!    does), so it must not regress against `reference_walk_m1`.
//! 2. **Digest micro** — incremental `digest()` vs `rescan_digest()` on a
//!    ≥ 100k-object store (the cost the scenario runner pays every time it
//!    compares replica states).
//! 3. **Hot-account ablation** — the same plog workload with Zipf-1.4 payer
//!    skew: per-shard op counts quantify the imbalance a hot account causes.
//! 4. **Block-STM ablation** — demotion scheduling vs optimistic execution
//!    on the uniform workload and on a *contended* one (Zipf-1.4 skew on
//!    payers **and** payees, pending-escrow log as deep as the payment
//!    stream, a band of mid-rank accounts seeded poor so escrow verdicts
//!    genuinely flip with the order), reporting the measured abort rate and
//!    the contended-workload speedup. Engines are compared by *work-span
//!    makespan* at pool width 8: serial and parallelizable components are
//!    measured separately per engine and recombined with the standard
//!    `serial + max(largest job, total/width)` bound, which equals
//!    wall-clock on a machine with ≥ 8 cores and is the schedulers' actual
//!    critical path on smaller ones. Raw wall-clock is reported alongside.
//!    All engines must agree bit-for-bit with a serial walk of the same
//!    schedule on digests, outcomes and supply.
//!
//! Run with `cargo bench --bench executor` (reduced scale) or
//! `ORTHRUS_FULL_SCALE=1 cargo bench --bench executor` (paper scale).

use orthrus_bench::harness::{self, BenchScale};
use orthrus_core::{parallel_for_mut, sweep_threads};
use orthrus_execution::{Executor, ObjectStore, StmStats, TxOutcome};
use orthrus_types::rng::{Rng, StdRng};
use orthrus_types::{
    Amount, Block, BlockParams, ClientId, Epoch, InstanceId, ObjectKey, ObjectOp, Rank, SeqNum,
    SharedBlock, SystemState, Transaction, TxId, View,
};
use orthrus_workload::Zipf;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Instant;

// ----------------------------------------------------------------------
// Workload
// ----------------------------------------------------------------------

struct PlogWorkload {
    /// Payment schedule bucketed per instance for a given m, rebuilt per
    /// shard count (bucketing depends on m).
    payments: Vec<Arc<Transaction>>,
    /// Contract transactions whose escrows sit outstanding while the
    /// payments execute.
    pending_contracts: Vec<Arc<Transaction>>,
    accounts: u64,
    /// Accounts seeded with [`POOR_BALANCE`] instead of the normal float:
    /// mid-rank hot accounts that drain and refill as the schedule
    /// interleaves their debits and credits, so escrow verdicts genuinely
    /// flip with the order and the optimistic engine's abort rate measures
    /// something real. Empty for the uniform workloads.
    poor: std::ops::Range<u64>,
}

/// Starting balance of the [`PlogWorkload::poor`] accounts — a handful of
/// payments deep, so solvency depends on the credits committed before them.
const POOR_BALANCE: u64 = 40;

fn build_workload(
    accounts: u64,
    outstanding: usize,
    payments: usize,
    zipf: Option<f64>,
    hot_payees: bool,
) -> PlogWorkload {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let sampler = zipf.map(|e| Zipf::new(accounts as usize, e));
    let mut out = Vec::with_capacity(payments);
    for i in 0..payments {
        let payer: u64 = match &sampler {
            Some(z) => z.sample(&mut rng) as u64,
            None => rng.gen_range(0..accounts),
        };
        let mut payee: u64 = match &sampler {
            // Contended mode: the payees are the *same* hot population as
            // the payers, so hot accounts receive as much as they send.
            Some(z) if hot_payees => z.sample(&mut rng) as u64,
            _ => rng.gen_range(0..accounts),
        };
        if payee == payer {
            payee = (payee + 1) % accounts;
        }
        let amount: u64 = rng.gen_range(1..5);
        out.push(Arc::new(Transaction::payment(
            TxId::new(ClientId::new(payer), i as u64),
            ClientId::new(payer),
            ClientId::new(payee),
            amount,
        )));
    }
    // Contract payers live in a disjoint account range so the payment fast
    // path never conflicts with them — their escrows just sit in the log,
    // which is exactly what makes the old commit scan expensive.
    let contracts = (0..outstanding)
        .map(|i| {
            let payer = ClientId::new(accounts + i as u64);
            Arc::new(Transaction::contract(
                TxId::new(payer, 0),
                &[(payer, 3)],
                vec![ObjectOp::add_shared(ObjectKey::new(1 << 48), 1)],
            ))
        })
        .collect();
    PlogWorkload {
        payments: out,
        pending_contracts: contracts,
        accounts,
        // Contended mode: Zipf ranks 41..73 are hot enough to see steady
        // two-sided traffic but not so hot that draining them stalls the
        // whole stream (~1-2% of payments touch them as payer).
        poor: if hot_payees { 40..72 } else { 0..0 },
    }
}

/// Bucket the payments by payer shard and pack them into per-instance blocks
/// of `batch` transactions, interleaved in the order `drain_ready` yields.
fn build_schedule(workload: &PlogWorkload, m: u32, batch: usize) -> Vec<(InstanceId, SharedBlock)> {
    let mut buckets: Vec<std::collections::VecDeque<Arc<Transaction>>> =
        (0..m).map(|_| std::collections::VecDeque::new()).collect();
    for tx in &workload.payments {
        let payer = tx.payers().next().expect("payments have a payer");
        buckets[payer.shard(m) as usize].push_back(Arc::clone(tx));
    }
    let mut schedule = Vec::new();
    let mut next_sn = vec![0u64; m as usize];
    loop {
        let mut progressed = false;
        for i in 0..m as usize {
            if buckets[i].is_empty() {
                continue;
            }
            let txs: Vec<Arc<Transaction>> =
                (0..batch).map_while(|_| buckets[i].pop_front()).collect();
            let params = BlockParams {
                instance: InstanceId::new(i as u32),
                sn: SeqNum::new(next_sn[i]),
                epoch: Epoch::new(0),
                view: View::new(0),
                proposer: orthrus_types::ReplicaId::new(i as u32),
                rank: Rank::new(next_sn[i]),
                state: SystemState::new(m as usize),
            };
            next_sn[i] += 1;
            schedule.push((
                InstanceId::new(i as u32),
                Arc::new(Block::from_shared(params, txs)),
            ));
            progressed = true;
        }
        if !progressed {
            break;
        }
    }
    schedule
}

fn new_executor(workload: &PlogWorkload, m: u32) -> Executor {
    let mut store = ObjectStore::with_shards(m);
    for c in 0..workload.accounts + workload.pending_contracts.len() as u64 {
        let float = if workload.poor.contains(&c) {
            POOR_BALANCE
        } else {
            1_000_000
        };
        store.create_account(ObjectKey::account_of(ClientId::new(c)), float);
    }
    store.create_shared(ObjectKey::new(1 << 48), 0);
    let mut exec = Executor::with_store(store);
    // Seed the outstanding contract escrows through the ordinary plog path.
    let assign = move |key: ObjectKey| InstanceId::new(key.shard(m));
    for tx in &workload.pending_contracts {
        let instance = assign(tx.payers().next().unwrap());
        let outcome = exec.process_plog_tx(tx, instance, &assign);
        assert_eq!(outcome, None, "contract escrow must stay outstanding");
    }
    exec
}

// ----------------------------------------------------------------------
// Baseline: the pre-sharding executor (PR 2 state of the code)
// ----------------------------------------------------------------------

/// Minimal, faithful replica of the old payment fast path: one `BTreeMap`
/// store and an escrow log whose commit/abort walk the *entire* log with
/// `retain`, as `EscrowLog::commit` did before sharding.
struct BaselineExecutor {
    balances: BTreeMap<ObjectKey, Amount>,
    elog: BTreeMap<(ObjectKey, TxId), Amount>,
    outcomes: HashMap<TxId, TxOutcome>,
    committed: u64,
}

impl BaselineExecutor {
    fn new(workload: &PlogWorkload) -> Self {
        let mut balances = BTreeMap::new();
        for c in 0..workload.accounts + workload.pending_contracts.len() as u64 {
            let float = if workload.poor.contains(&c) {
                POOR_BALANCE
            } else {
                1_000_000u64
            };
            balances.insert(ObjectKey::account_of(ClientId::new(c)), float);
        }
        let mut this = Self {
            balances,
            elog: BTreeMap::new(),
            outcomes: HashMap::new(),
            committed: 0,
        };
        for tx in &workload.pending_contracts {
            for leg in tx.ops.iter().filter(|l| l.is_owned_decrement()) {
                let balance = this.balances.get_mut(&leg.key).unwrap();
                *balance -= leg.op.amount();
                this.elog.insert((leg.key, tx.id), leg.op.amount());
            }
        }
        this
    }

    fn process_payment(&mut self, tx: &Transaction) -> TxOutcome {
        if let Some(existing) = self.outcomes.get(&tx.id) {
            return *existing;
        }
        for leg in tx.ops.iter().filter(|l| l.is_owned_decrement()) {
            let balance = self.balances.entry(leg.key).or_insert(0);
            if *balance < leg.op.amount() {
                // Abort: refund via the old full-log retain.
                let refunds: Vec<(ObjectKey, Amount)> = self
                    .elog
                    .iter()
                    .filter(|((_, id), _)| *id == tx.id)
                    .map(|((key, _), amount)| (*key, *amount))
                    .collect();
                for (key, amount) in refunds {
                    *self.balances.get_mut(&key).unwrap() += amount;
                    self.elog.remove(&(key, tx.id));
                }
                self.outcomes.insert(tx.id, TxOutcome::Aborted);
                return TxOutcome::Aborted;
            }
            *balance -= leg.op.amount();
            self.elog.insert((leg.key, tx.id), leg.op.amount());
        }
        // Commit: the old `EscrowLog::commit` — scan every outstanding
        // reservation in the log.
        self.elog.retain(|(_, id), _| *id != tx.id);
        for leg in tx.ops.iter().filter(|l| l.is_owned_increment()) {
            *self.balances.entry(leg.key).or_insert(0) += leg.op.amount();
        }
        self.outcomes.insert(tx.id, TxOutcome::Committed);
        self.committed += 1;
        TxOutcome::Committed
    }

    /// Spendable balances plus outstanding reservations — comparable to the
    /// new engine's `total_supply`.
    fn total_supply(&self) -> u128 {
        self.balances.values().map(|b| u128::from(*b)).sum::<u128>()
            + self.elog.values().map(|a| u128::from(*a)).sum::<u128>()
    }
}

// ----------------------------------------------------------------------
// Measurements
// ----------------------------------------------------------------------

struct PlogRun {
    label: String,
    wall_ms: f64,
    tx_per_sec: f64,
    committed: u64,
}

/// Run the payment stream through the baseline executor, returning the run
/// stats and the final supply (balances + reservations).
fn run_baseline(workload: &PlogWorkload) -> (PlogRun, u128) {
    let mut exec = BaselineExecutor::new(workload);
    let wall = Instant::now();
    for tx in &workload.payments {
        exec.process_payment(tx);
    }
    let secs = wall.elapsed().as_secs_f64();
    (
        PlogRun {
            label: "baseline_single_map_retain".into(),
            wall_ms: secs * 1e3,
            tx_per_sec: workload.payments.len() as f64 / secs,
            committed: exec.committed,
        },
        exec.total_supply(),
    )
}

struct ShardedOutcome {
    run: PlogRun,
    digest: orthrus_types::Digest,
    total_supply: u128,
    shard_ops: Vec<u64>,
}

fn run_sharded(
    workload: &PlogWorkload,
    m: u32,
    batch: usize,
    parallel: bool,
    threads: usize,
) -> ShardedOutcome {
    let schedule = build_schedule(workload, m, batch);
    let mut exec = new_executor(workload, m);
    let assign = move |key: ObjectKey| InstanceId::new(key.shard(m));
    let wall = Instant::now();
    if parallel && threads > 1 {
        exec.process_plog_schedule(&schedule, &assign, |jobs| {
            parallel_for_mut(jobs, threads, |job| job.run());
        });
    } else if parallel {
        // Pool width 1: the replica dispatch collapses the schedule onto
        // the serial reference walk instead of paying the scatter/merge
        // overhead for zero parallelism. Mirror that here so the
        // `sharded_*_pool1` label measures what production executes.
        for (instance, block) in &schedule {
            for tx in &block.txs {
                exec.process_plog_tx(tx, *instance, &assign);
            }
        }
    } else {
        for (instance, block) in &schedule {
            for tx in &block.txs {
                exec.process_plog_tx(tx, *instance, &assign);
            }
        }
    }
    let secs = wall.elapsed().as_secs_f64();
    let label = if parallel {
        format!("sharded_m{m}_pool{threads}")
    } else {
        format!("reference_walk_m{m}")
    };
    ShardedOutcome {
        run: PlogRun {
            label,
            wall_ms: secs * 1e3,
            tx_per_sec: workload.payments.len() as f64 / secs,
            committed: exec.committed_count(),
        },
        digest: exec.state_digest(),
        total_supply: exec.total_supply(),
        shard_ops: exec.store().shard_op_counts(),
    }
}

/// Like the parallel path of [`run_sharded`], but drives the shard jobs
/// serially and times each one, yielding the demotion scheduler's measured
/// work decomposition: per-job parallelizable work plus the serial
/// remainder (classification and the demoted merge lane). Returns the
/// outcome, the per-job times and the total wall time, all in ms.
fn run_demotion_span(
    workload: &PlogWorkload,
    m: u32,
    batch: usize,
) -> (ShardedOutcome, Vec<f64>, f64) {
    let schedule = build_schedule(workload, m, batch);
    let mut exec = new_executor(workload, m);
    let assign = move |key: ObjectKey| InstanceId::new(key.shard(m));
    let mut jobs_ms: Vec<f64> = Vec::new();
    let wall = Instant::now();
    exec.process_plog_schedule(&schedule, &assign, |jobs| {
        for job in jobs.iter_mut() {
            let t = Instant::now();
            job.run();
            jobs_ms.push(t.elapsed().as_secs_f64() * 1e3);
        }
    });
    let secs = wall.elapsed().as_secs_f64();
    let outcome = ShardedOutcome {
        run: PlogRun {
            label: format!("demotion_m{m}_span"),
            wall_ms: secs * 1e3,
            tx_per_sec: workload.payments.len() as f64 / secs,
            committed: exec.committed_count(),
        },
        digest: exec.state_digest(),
        total_supply: exec.total_supply(),
        shard_ops: exec.store().shard_op_counts(),
    };
    (outcome, jobs_ms, secs * 1e3)
}

/// Makespan of the demotion scheduler at `width` workers, from its measured
/// decomposition: the serial remainder runs unsplit, the shard jobs pack
/// onto the workers (bounded below by the largest job and by even division —
/// the standard work-span bound, so the model *favors* demotion).
fn demotion_span_ms(total_ms: f64, jobs_ms: &[f64], width: usize) -> f64 {
    let jobs_total: f64 = jobs_ms.iter().sum();
    let jobs_max = jobs_ms.iter().copied().fold(0.0f64, f64::max);
    (total_ms - jobs_total) + (jobs_total / width as f64).max(jobs_max)
}

/// Makespan of the optimistic engine at `width` workers: the speculative
/// wave (self-scheduling chunks) and the per-shard commit jobs divide by
/// the width; validation and the unattributed remainder are serial span.
fn stm_span_ms(wall_ms: f64, stats: &StmStats, width: usize) -> f64 {
    let wave = stats.wave_ns as f64 / 1e6;
    let validate = stats.validate_ns as f64 / 1e6;
    let commit = stats.commit_ns as f64 / 1e6;
    let rest = (wall_ms - wave - validate - commit).max(0.0);
    wave / width as f64 + validate + commit / width as f64 + rest
}

/// Run the same schedule through the Block-STM engine (speculative wave,
/// schedule-order validation, coalesced commit), returning the run stats
/// plus the scheduler's occurrence/re-execution counters.
fn run_stm(
    workload: &PlogWorkload,
    m: u32,
    batch: usize,
    threads: usize,
) -> (ShardedOutcome, StmStats) {
    let schedule = build_schedule(workload, m, batch);
    let mut exec = new_executor(workload, m);
    let assign = move |key: ObjectKey| InstanceId::new(key.shard(m));
    let wall = Instant::now();
    let (_, stats) = exec.process_plog_schedule_stm_with_stats(&schedule, &assign, threads);
    let secs = wall.elapsed().as_secs_f64();
    (
        ShardedOutcome {
            run: PlogRun {
                label: format!("stm_m{m}_pool{threads}"),
                wall_ms: secs * 1e3,
                tx_per_sec: workload.payments.len() as f64 / secs,
                committed: exec.committed_count(),
            },
            digest: exec.state_digest(),
            total_supply: exec.total_supply(),
            shard_ops: exec.store().shard_op_counts(),
        },
        stats,
    )
}

struct DigestMicro {
    objects: usize,
    incremental_ns: f64,
    rescan_ns: f64,
}

fn digest_micro(objects: u64) -> DigestMicro {
    let mut store = ObjectStore::with_shards(16);
    for k in 0..objects {
        store.create_account(ObjectKey::new(k), k);
    }
    assert_eq!(store.digest(), store.rescan_digest());
    // Steady state: a write dirties the accumulators, then the runner
    // compares states.
    let incremental_reps = 2_000u32;
    let wall = Instant::now();
    let mut acc = 0u64;
    for i in 0..incremental_reps {
        store
            .credit(ObjectKey::new(u64::from(i) % objects), 1)
            .unwrap();
        acc ^= store.digest().0;
    }
    let incremental_ns = wall.elapsed().as_secs_f64() * 1e9 / f64::from(incremental_reps);
    let rescan_reps = 20u32;
    let wall = Instant::now();
    for i in 0..rescan_reps {
        store
            .credit(ObjectKey::new(u64::from(i) % objects), 1)
            .unwrap();
        acc ^= store.rescan_digest().0;
    }
    let rescan_ns = wall.elapsed().as_secs_f64() * 1e9 / f64::from(rescan_reps);
    std::hint::black_box(acc);
    DigestMicro {
        objects: objects as usize,
        incremental_ns,
        rescan_ns,
    }
}

fn plog_run_json(r: &PlogRun) -> String {
    format!(
        "    {{\"label\": \"{}\", \"wall_ms\": {:.1}, \"tx_per_sec\": {:.0}, \"committed\": {}}}",
        r.label, r.wall_ms, r.tx_per_sec, r.committed
    )
}

fn main() {
    let scale = BenchScale::from_env();
    let (accounts, outstanding, payments, batch) = match scale {
        BenchScale::Reduced => (20_000u64, 2_000usize, 24_000usize, 256usize),
        BenchScale::Full => (100_000u64, 8_000, 120_000, 4_096),
    };
    let threads = sweep_threads();
    println!("== executor snapshot ({scale:?} scale, pool threads {threads}) ==");

    // ------------------------------------------------------------------
    // 1. Plog execution: baseline vs reference walk vs sharded schedule.
    // ------------------------------------------------------------------
    println!(
        "\n-- plog execution: {payments} payments over {accounts} accounts, \
         {outstanding} outstanding contract escrows --"
    );
    let workload = build_workload(accounts, outstanding, payments, None, false);
    let (baseline, baseline_supply) = run_baseline(&workload);
    let reference = run_sharded(&workload, 1, batch, false, 1);
    let sharded: Vec<ShardedOutcome> = [4u32, 8, 16]
        .into_iter()
        .map(|m| run_sharded(&workload, m, batch, true, threads))
        .collect();
    // Pool-width-1 pin: at width 1 the schedule API collapses onto the
    // serial walk, so `sharded_m8_pool1` must track `reference_walk_m1`.
    // With an ambient width-1 pool the m=8 run above already is that
    // measurement; otherwise run it explicitly.
    let pool1 = if threads == 1 {
        None
    } else {
        Some(run_sharded(&workload, 8, batch, true, 1))
    };

    for run in std::iter::once(&baseline)
        .chain(std::iter::once(&reference.run))
        .chain(sharded.iter().map(|s| &s.run))
        .chain(pool1.iter().map(|s| &s.run))
    {
        println!(
            "{:<28} {:>9.1} ms  {:>11.0} tx/s  ({} committed)",
            run.label, run.wall_ms, run.tx_per_sec, run.committed
        );
    }
    // Cross-check: every engine agrees on what was computed.
    for s in sharded.iter().chain(pool1.iter()) {
        assert_eq!(
            s.run.committed, baseline.committed,
            "commit counts diverged"
        );
        assert_eq!(
            s.digest, reference.digest,
            "digests diverged across shard counts"
        );
        assert_eq!(s.total_supply, reference.total_supply);
    }
    assert_eq!(reference.run.committed, baseline.committed);
    assert_eq!(
        reference.total_supply, baseline_supply,
        "balance books diverged"
    );
    let speedup_m8 = sharded[1].run.tx_per_sec / baseline.tx_per_sec;
    println!("sharded m=8 vs baseline: {speedup_m8:.2}x");

    // ------------------------------------------------------------------
    // 2. Digest micro.
    // ------------------------------------------------------------------
    let objects = match scale {
        BenchScale::Reduced => 100_000u64,
        BenchScale::Full => 500_000,
    };
    println!("\n-- digest micro: {objects} objects --");
    let micro = digest_micro(objects);
    let digest_speedup = micro.rescan_ns / micro.incremental_ns;
    println!(
        "incremental {:>12.0} ns/call   full rescan {:>12.0} ns/call   ({digest_speedup:.0}x)",
        micro.incremental_ns, micro.rescan_ns
    );

    // ------------------------------------------------------------------
    // 3. Hot-account ablation.
    // ------------------------------------------------------------------
    println!("\n-- hot-account ablation: zipf 1.4 payer skew, m = 8 --");
    let hot_workload = build_workload(accounts, outstanding, payments, Some(1.4), false);
    let hot = run_sharded(&hot_workload, 8, batch, true, threads);
    let uniform = &sharded[1];
    let hot_imbalance = harness::shard_imbalance(&hot.shard_ops);
    let uniform_imbalance = harness::shard_imbalance(&uniform.shard_ops);
    println!(
        "uniform: {:>10.0} tx/s, hottest shard {uniform_imbalance:.2}x mean",
        uniform.run.tx_per_sec
    );
    println!(
        "zipf1.4: {:>10.0} tx/s, hottest shard {hot_imbalance:.2}x mean (ops {:?})",
        hot.run.tx_per_sec, hot.shard_ops
    );

    // ------------------------------------------------------------------
    // 4. Block-STM ablation: demotion vs optimistic at pool width >= 4.
    // ------------------------------------------------------------------
    let stm_threads = threads.max(4);
    // The contended workload is where demotion scheduling structurally
    // loses: Zipf-1.4 skew on *both* ends (hot accounts receive as much as
    // they send) cascades nearly every occurrence onto the serial merge
    // lane, and a pending-escrow log as deep as the payment stream makes
    // every escrow probe a tree descent over it. The optimistic engine
    // indexes the reservation ids once per schedule and coalesces the hot
    // accounts' writes, so neither cost scales with contention.
    let contended_outstanding = payments;
    let contended = build_workload(accounts, contended_outstanding, payments, Some(1.4), true);
    println!(
        "\n-- block-stm ablation: demotion vs optimistic, m = 8, pool {stm_threads}, \
         zipf 1.4 payers+payees, {contended_outstanding} outstanding escrows --"
    );
    // Throughputs are compared as *work-span makespans* at `MODEL_WIDTH`
    // workers (= m, satisfying "pool >= 4"): each engine's serial and
    // parallelizable components are measured separately, then the makespan
    // at the modeled width is `serial + max(largest job, total/width)` —
    // the standard work-span bound. On a machine with >= MODEL_WIDTH cores
    // this equals wall-clock; on smaller machines (like single-core CI
    // boxes) it is the only measurement that reflects the schedulers'
    // actual critical paths rather than the host's core count. Raw
    // wall-clock for both engines is reported alongside, unmodeled.
    const MODEL_WIDTH: usize = 8;
    // The bit-identity oracle must walk the *same* m=8 schedule the engines
    // execute: with poor accounts in play, outcomes are order-sensitive, and
    // schedules built for different shard counts interleave differently (the
    // m=1 schedule is a genuinely different transaction order, not a
    // reference for this one).
    let hot_reference = run_sharded(&contended, 8, batch, false, 1);
    let hot_demotion = run_sharded(&contended, 8, batch, true, stm_threads);
    // Best-of-two for the decomposed runs: the span model is only as good
    // as its inputs, and a single cold run overstates whichever phase the
    // allocator or page cache happened to penalize.
    let (hot_demo_span_run, hot_jobs_ms, hot_demo_total_ms) = {
        let first = run_demotion_span(&contended, 8, batch);
        let second = run_demotion_span(&contended, 8, batch);
        if second.2 < first.2 {
            second
        } else {
            first
        }
    };
    let (hot_stm, hot_stats) = {
        let first = run_stm(&contended, 8, batch, stm_threads);
        let second = run_stm(&contended, 8, batch, stm_threads);
        if second.0.run.wall_ms < first.0.run.wall_ms {
            second
        } else {
            first
        }
    };
    let uniform_demotion = run_sharded(&workload, 8, batch, true, stm_threads);
    let (uniform_demo_span_run, uniform_jobs_ms, uniform_demo_total_ms) = {
        let first = run_demotion_span(&workload, 8, batch);
        let second = run_demotion_span(&workload, 8, batch);
        if second.2 < first.2 {
            second
        } else {
            first
        }
    };
    let (uniform_stm, uniform_stats) = {
        let first = run_stm(&workload, 8, batch, stm_threads);
        let second = run_stm(&workload, 8, batch, stm_threads);
        if second.0.run.wall_ms < first.0.run.wall_ms {
            second
        } else {
            first
        }
    };
    // Bit-identity across engines on both workloads.
    for s in [&hot_demotion, &hot_demo_span_run, &hot_stm] {
        assert_eq!(
            s.digest, hot_reference.digest,
            "hot digests diverged: {}",
            s.run.label
        );
        assert_eq!(s.total_supply, hot_reference.total_supply);
        assert_eq!(s.run.committed, hot_reference.run.committed);
    }
    for s in [&uniform_demotion, &uniform_demo_span_run, &uniform_stm] {
        assert_eq!(s.digest, reference.digest, "uniform digests diverged");
        assert_eq!(s.total_supply, reference.total_supply);
        assert_eq!(s.run.committed, reference.run.committed);
    }
    let hot_demo_span = demotion_span_ms(hot_demo_total_ms, &hot_jobs_ms, MODEL_WIDTH);
    let hot_stm_span = stm_span_ms(hot_stm.run.wall_ms, &hot_stats, MODEL_WIDTH);
    let uniform_demo_span = demotion_span_ms(uniform_demo_total_ms, &uniform_jobs_ms, MODEL_WIDTH);
    let uniform_stm_span = stm_span_ms(uniform_stm.run.wall_ms, &uniform_stats, MODEL_WIDTH);
    let hot_demo_span_tps = payments as f64 / hot_demo_span * 1e3;
    let hot_stm_span_tps = payments as f64 / hot_stm_span * 1e3;
    let uniform_demo_span_tps = payments as f64 / uniform_demo_span * 1e3;
    let uniform_stm_span_tps = payments as f64 / uniform_stm_span * 1e3;
    let stm_speedup_hot = hot_demo_span / hot_stm_span;
    let stm_speedup_uniform = uniform_demo_span / uniform_stm_span;
    println!(
        "zipf1.4: demotion wall {:>7.1} ms (serial lane {:>6.1} ms)   stm wall {:>7.1} ms \
         (wave {:.1} validate {:.1} commit {:.1})",
        hot_demo_total_ms,
        hot_demo_total_ms - hot_jobs_ms.iter().sum::<f64>(),
        hot_stm.run.wall_ms,
        hot_stats.wave_ns as f64 / 1e6,
        hot_stats.validate_ns as f64 / 1e6,
        hot_stats.commit_ns as f64 / 1e6,
    );
    println!(
        "zipf1.4 span@{MODEL_WIDTH}: demotion {hot_demo_span:>7.1} ms ({hot_demo_span_tps:.0} tx/s)   \
         stm {hot_stm_span:>7.1} ms ({hot_stm_span_tps:.0} tx/s)   \
         ({stm_speedup_hot:.2}x, abort rate {:.4})",
        hot_stats.abort_rate()
    );
    println!(
        "uniform span@{MODEL_WIDTH}: demotion {uniform_demo_span:>7.1} ms ({uniform_demo_span_tps:.0} tx/s)   \
         stm {uniform_stm_span:>7.1} ms ({uniform_stm_span_tps:.0} tx/s)   \
         ({stm_speedup_uniform:.2}x, abort rate {:.4})",
        uniform_stats.abort_rate()
    );

    // ------------------------------------------------------------------
    // JSON snapshot
    // ------------------------------------------------------------------
    let mut runs_json = String::new();
    for (i, run) in std::iter::once(&baseline)
        .chain(std::iter::once(&reference.run))
        .chain(sharded.iter().map(|s| &s.run))
        .chain(pool1.iter().map(|s| &s.run))
        .enumerate()
    {
        if i > 0 {
            runs_json.push_str(",\n");
        }
        runs_json.push_str(&plog_run_json(run));
    }
    let hot_ops: Vec<String> = hot.shard_ops.iter().map(u64::to_string).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"executor\",\n",
            "  \"scale\": \"{}\",\n",
            "  \"pool_threads\": {},\n",
            "  \"plog_execution\": {{\n",
            "    \"payments\": {},\n",
            "    \"accounts\": {},\n",
            "    \"outstanding_escrows\": {},\n",
            "    \"runs\": [\n{}\n    ],\n",
            "    \"speedup_m8_vs_baseline\": {:.2},\n",
            "    \"identical_outcomes\": true\n",
            "  }},\n",
            "  \"digest_micro\": {{\n",
            "    \"objects\": {},\n",
            "    \"incremental_ns_per_call\": {:.1},\n",
            "    \"rescan_ns_per_call\": {:.1},\n",
            "    \"speedup\": {:.1}\n",
            "  }},\n",
            "  \"hot_account\": {{\n",
            "    \"zipf_exponent\": 1.4,\n",
            "    \"tx_per_sec\": {:.0},\n",
            "    \"uniform_tx_per_sec\": {:.0},\n",
            "    \"hot_shard_imbalance\": {:.2},\n",
            "    \"uniform_shard_imbalance\": {:.2},\n",
            "    \"shard_ops\": [{}]\n",
            "  }},\n",
            "  \"stm\": {{\n",
            "    \"pool_threads\": {},\n",
            "    \"model_pool_width\": {},\n",
            "    \"speedup_basis\": \"work_span_makespan_at_model_pool_width\",\n",
            "    \"zipf_exponent\": 1.4,\n",
            "    \"zipf_both_ends\": true,\n",
            "    \"outstanding_escrows\": {},\n",
            "    \"hot_demotion_tx_per_sec\": {:.0},\n",
            "    \"hot_stm_tx_per_sec\": {:.0},\n",
            "    \"hot_demotion_span_ms\": {:.2},\n",
            "    \"hot_stm_span_ms\": {:.2},\n",
            "    \"hot_demotion_wall_ms\": {:.2},\n",
            "    \"hot_stm_wall_ms\": {:.2},\n",
            "    \"hot_stm_wave_ms\": {:.2},\n",
            "    \"hot_stm_validate_ms\": {:.2},\n",
            "    \"stm_speedup_hot\": {:.2},\n",
            "    \"abort_rate\": {:.4},\n",
            "    \"hot_reexecutions\": {},\n",
            "    \"hot_occurrences\": {},\n",
            "    \"uniform_demotion_tx_per_sec\": {:.0},\n",
            "    \"uniform_stm_tx_per_sec\": {:.0},\n",
            "    \"stm_speedup_uniform\": {:.2},\n",
            "    \"uniform_abort_rate\": {:.4},\n",
            "    \"identical_digests\": true\n",
            "  }}\n",
            "}}\n"
        ),
        if scale == BenchScale::Full {
            "full"
        } else {
            "reduced"
        },
        threads,
        payments,
        accounts,
        outstanding,
        runs_json,
        speedup_m8,
        micro.objects,
        micro.incremental_ns,
        micro.rescan_ns,
        digest_speedup,
        hot.run.tx_per_sec,
        uniform.run.tx_per_sec,
        hot_imbalance,
        uniform_imbalance,
        hot_ops.join(","),
        stm_threads,
        MODEL_WIDTH,
        contended_outstanding,
        hot_demo_span_tps,
        hot_stm_span_tps,
        hot_demo_span,
        hot_stm_span,
        hot_demo_total_ms,
        hot_stm.run.wall_ms,
        hot_stats.wave_ns as f64 / 1e6,
        hot_stats.validate_ns as f64 / 1e6,
        stm_speedup_hot,
        hot_stats.abort_rate(),
        hot_stats.reexecutions,
        hot_stats.occurrences,
        uniform_demo_span_tps,
        uniform_stm_span_tps,
        stm_speedup_uniform,
        uniform_stats.abort_rate(),
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_executor.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nsnapshot written to {}", path.display()),
        Err(err) => eprintln!("warning: could not write {}: {err}", path.display()),
    }
}
