//! Executor snapshot: quantifies the sharded execution engine and records
//! the result to `BENCH_executor.json` at the repository root.
//!
//! Three measurements:
//!
//! 1. **Plog execution** — a payment fast-path workload with a realistic
//!    population of outstanding contract escrows (contracts waiting for
//!    global ordering, as in the paper's 46%-payment trace), executed by
//!    (a) a faithful re-implementation of the pre-sharding executor (single
//!    `BTreeMap` store, escrow commit via a full-log `retain` scan), (b) the
//!    new engine's per-transaction reference walk on a single shard, and
//!    (c) the new engine's schedule API at m ∈ {4, 8, 16} shards on the
//!    worker pool. All variants must agree on committed counts and final
//!    balances; the sharded digests must also agree across shard counts.
//! 2. **Digest micro** — incremental `digest()` vs `rescan_digest()` on a
//!    ≥ 100k-object store (the cost the scenario runner pays every time it
//!    compares replica states).
//! 3. **Hot-account ablation** — the same plog workload with Zipf-1.4 payer
//!    skew: per-shard op counts quantify the imbalance a hot account causes.
//!
//! Run with `cargo bench --bench executor` (reduced scale) or
//! `ORTHRUS_FULL_SCALE=1 cargo bench --bench executor` (paper scale).

use orthrus_bench::harness::{self, BenchScale};
use orthrus_core::{parallel_for_mut, sweep_threads};
use orthrus_execution::{Executor, ObjectStore, TxOutcome};
use orthrus_types::rng::{Rng, StdRng};
use orthrus_types::{
    Amount, Block, BlockParams, ClientId, Epoch, InstanceId, ObjectKey, ObjectOp, Rank, SeqNum,
    SharedBlock, SystemState, Transaction, TxId, View,
};
use orthrus_workload::Zipf;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Instant;

// ----------------------------------------------------------------------
// Workload
// ----------------------------------------------------------------------

struct PlogWorkload {
    /// Payment schedule bucketed per instance for a given m, rebuilt per
    /// shard count (bucketing depends on m).
    payments: Vec<Arc<Transaction>>,
    /// Contract transactions whose escrows sit outstanding while the
    /// payments execute.
    pending_contracts: Vec<Arc<Transaction>>,
    accounts: u64,
}

fn build_workload(
    accounts: u64,
    outstanding: usize,
    payments: usize,
    zipf: Option<f64>,
) -> PlogWorkload {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let sampler = zipf.map(|e| Zipf::new(accounts as usize, e));
    let mut out = Vec::with_capacity(payments);
    for i in 0..payments {
        let payer: u64 = match &sampler {
            Some(z) => z.sample(&mut rng) as u64,
            None => rng.gen_range(0..accounts),
        };
        let mut payee: u64 = rng.gen_range(0..accounts);
        if payee == payer {
            payee = (payee + 1) % accounts;
        }
        let amount: u64 = rng.gen_range(1..5);
        out.push(Arc::new(Transaction::payment(
            TxId::new(ClientId::new(payer), i as u64),
            ClientId::new(payer),
            ClientId::new(payee),
            amount,
        )));
    }
    // Contract payers live in a disjoint account range so the payment fast
    // path never conflicts with them — their escrows just sit in the log,
    // which is exactly what makes the old commit scan expensive.
    let contracts = (0..outstanding)
        .map(|i| {
            let payer = ClientId::new(accounts + i as u64);
            Arc::new(Transaction::contract(
                TxId::new(payer, 0),
                &[(payer, 3)],
                vec![ObjectOp::add_shared(ObjectKey::new(1 << 48), 1)],
            ))
        })
        .collect();
    PlogWorkload {
        payments: out,
        pending_contracts: contracts,
        accounts,
    }
}

/// Bucket the payments by payer shard and pack them into per-instance blocks
/// of `batch` transactions, interleaved in the order `drain_ready` yields.
fn build_schedule(workload: &PlogWorkload, m: u32, batch: usize) -> Vec<(InstanceId, SharedBlock)> {
    let mut buckets: Vec<std::collections::VecDeque<Arc<Transaction>>> =
        (0..m).map(|_| std::collections::VecDeque::new()).collect();
    for tx in &workload.payments {
        let payer = tx.payers().next().expect("payments have a payer");
        buckets[payer.shard(m) as usize].push_back(Arc::clone(tx));
    }
    let mut schedule = Vec::new();
    let mut next_sn = vec![0u64; m as usize];
    loop {
        let mut progressed = false;
        for i in 0..m as usize {
            if buckets[i].is_empty() {
                continue;
            }
            let txs: Vec<Arc<Transaction>> =
                (0..batch).map_while(|_| buckets[i].pop_front()).collect();
            let params = BlockParams {
                instance: InstanceId::new(i as u32),
                sn: SeqNum::new(next_sn[i]),
                epoch: Epoch::new(0),
                view: View::new(0),
                proposer: orthrus_types::ReplicaId::new(i as u32),
                rank: Rank::new(next_sn[i]),
                state: SystemState::new(m as usize),
            };
            next_sn[i] += 1;
            schedule.push((
                InstanceId::new(i as u32),
                Arc::new(Block::from_shared(params, txs)),
            ));
            progressed = true;
        }
        if !progressed {
            break;
        }
    }
    schedule
}

fn new_executor(workload: &PlogWorkload, m: u32) -> Executor {
    let mut store = ObjectStore::with_shards(m);
    for c in 0..workload.accounts + workload.pending_contracts.len() as u64 {
        store.create_account(ObjectKey::account_of(ClientId::new(c)), 1_000_000);
    }
    store.create_shared(ObjectKey::new(1 << 48), 0);
    let mut exec = Executor::with_store(store);
    // Seed the outstanding contract escrows through the ordinary plog path.
    let assign = move |key: ObjectKey| InstanceId::new(key.shard(m));
    for tx in &workload.pending_contracts {
        let instance = assign(tx.payers().next().unwrap());
        let outcome = exec.process_plog_tx(tx, instance, &assign);
        assert_eq!(outcome, None, "contract escrow must stay outstanding");
    }
    exec
}

// ----------------------------------------------------------------------
// Baseline: the pre-sharding executor (PR 2 state of the code)
// ----------------------------------------------------------------------

/// Minimal, faithful replica of the old payment fast path: one `BTreeMap`
/// store and an escrow log whose commit/abort walk the *entire* log with
/// `retain`, as `EscrowLog::commit` did before sharding.
struct BaselineExecutor {
    balances: BTreeMap<ObjectKey, Amount>,
    elog: BTreeMap<(ObjectKey, TxId), Amount>,
    outcomes: HashMap<TxId, TxOutcome>,
    committed: u64,
}

impl BaselineExecutor {
    fn new(workload: &PlogWorkload) -> Self {
        let mut balances = BTreeMap::new();
        for c in 0..workload.accounts + workload.pending_contracts.len() as u64 {
            balances.insert(ObjectKey::account_of(ClientId::new(c)), 1_000_000u64);
        }
        let mut this = Self {
            balances,
            elog: BTreeMap::new(),
            outcomes: HashMap::new(),
            committed: 0,
        };
        for tx in &workload.pending_contracts {
            for leg in tx.ops.iter().filter(|l| l.is_owned_decrement()) {
                let balance = this.balances.get_mut(&leg.key).unwrap();
                *balance -= leg.op.amount();
                this.elog.insert((leg.key, tx.id), leg.op.amount());
            }
        }
        this
    }

    fn process_payment(&mut self, tx: &Transaction) -> TxOutcome {
        if let Some(existing) = self.outcomes.get(&tx.id) {
            return *existing;
        }
        for leg in tx.ops.iter().filter(|l| l.is_owned_decrement()) {
            let balance = self.balances.entry(leg.key).or_insert(0);
            if *balance < leg.op.amount() {
                // Abort: refund via the old full-log retain.
                let refunds: Vec<(ObjectKey, Amount)> = self
                    .elog
                    .iter()
                    .filter(|((_, id), _)| *id == tx.id)
                    .map(|((key, _), amount)| (*key, *amount))
                    .collect();
                for (key, amount) in refunds {
                    *self.balances.get_mut(&key).unwrap() += amount;
                    self.elog.remove(&(key, tx.id));
                }
                self.outcomes.insert(tx.id, TxOutcome::Aborted);
                return TxOutcome::Aborted;
            }
            *balance -= leg.op.amount();
            self.elog.insert((leg.key, tx.id), leg.op.amount());
        }
        // Commit: the old `EscrowLog::commit` — scan every outstanding
        // reservation in the log.
        self.elog.retain(|(_, id), _| *id != tx.id);
        for leg in tx.ops.iter().filter(|l| l.is_owned_increment()) {
            *self.balances.entry(leg.key).or_insert(0) += leg.op.amount();
        }
        self.outcomes.insert(tx.id, TxOutcome::Committed);
        self.committed += 1;
        TxOutcome::Committed
    }

    /// Spendable balances plus outstanding reservations — comparable to the
    /// new engine's `total_supply`.
    fn total_supply(&self) -> u128 {
        self.balances.values().map(|b| u128::from(*b)).sum::<u128>()
            + self.elog.values().map(|a| u128::from(*a)).sum::<u128>()
    }
}

// ----------------------------------------------------------------------
// Measurements
// ----------------------------------------------------------------------

struct PlogRun {
    label: String,
    wall_ms: f64,
    tx_per_sec: f64,
    committed: u64,
}

/// Run the payment stream through the baseline executor, returning the run
/// stats and the final supply (balances + reservations).
fn run_baseline(workload: &PlogWorkload) -> (PlogRun, u128) {
    let mut exec = BaselineExecutor::new(workload);
    let wall = Instant::now();
    for tx in &workload.payments {
        exec.process_payment(tx);
    }
    let secs = wall.elapsed().as_secs_f64();
    (
        PlogRun {
            label: "baseline_single_map_retain".into(),
            wall_ms: secs * 1e3,
            tx_per_sec: workload.payments.len() as f64 / secs,
            committed: exec.committed,
        },
        exec.total_supply(),
    )
}

struct ShardedOutcome {
    run: PlogRun,
    digest: orthrus_types::Digest,
    total_supply: u128,
    shard_ops: Vec<u64>,
}

fn run_sharded(
    workload: &PlogWorkload,
    m: u32,
    batch: usize,
    parallel: bool,
    threads: usize,
) -> ShardedOutcome {
    let schedule = build_schedule(workload, m, batch);
    let mut exec = new_executor(workload, m);
    let assign = move |key: ObjectKey| InstanceId::new(key.shard(m));
    let wall = Instant::now();
    if parallel {
        exec.process_plog_schedule(&schedule, &assign, |jobs| {
            parallel_for_mut(jobs, threads, |job| job.run());
        });
    } else {
        for (instance, block) in &schedule {
            for tx in &block.txs {
                exec.process_plog_tx(tx, *instance, &assign);
            }
        }
    }
    let secs = wall.elapsed().as_secs_f64();
    let label = if parallel {
        format!("sharded_m{m}_pool{threads}")
    } else {
        format!("reference_walk_m{m}")
    };
    ShardedOutcome {
        run: PlogRun {
            label,
            wall_ms: secs * 1e3,
            tx_per_sec: workload.payments.len() as f64 / secs,
            committed: exec.committed_count(),
        },
        digest: exec.state_digest(),
        total_supply: exec.total_supply(),
        shard_ops: exec.store().shard_op_counts(),
    }
}

struct DigestMicro {
    objects: usize,
    incremental_ns: f64,
    rescan_ns: f64,
}

fn digest_micro(objects: u64) -> DigestMicro {
    let mut store = ObjectStore::with_shards(16);
    for k in 0..objects {
        store.create_account(ObjectKey::new(k), k);
    }
    assert_eq!(store.digest(), store.rescan_digest());
    // Steady state: a write dirties the accumulators, then the runner
    // compares states.
    let incremental_reps = 2_000u32;
    let wall = Instant::now();
    let mut acc = 0u64;
    for i in 0..incremental_reps {
        store
            .credit(ObjectKey::new(u64::from(i) % objects), 1)
            .unwrap();
        acc ^= store.digest().0;
    }
    let incremental_ns = wall.elapsed().as_secs_f64() * 1e9 / f64::from(incremental_reps);
    let rescan_reps = 20u32;
    let wall = Instant::now();
    for i in 0..rescan_reps {
        store
            .credit(ObjectKey::new(u64::from(i) % objects), 1)
            .unwrap();
        acc ^= store.rescan_digest().0;
    }
    let rescan_ns = wall.elapsed().as_secs_f64() * 1e9 / f64::from(rescan_reps);
    std::hint::black_box(acc);
    DigestMicro {
        objects: objects as usize,
        incremental_ns,
        rescan_ns,
    }
}

fn plog_run_json(r: &PlogRun) -> String {
    format!(
        "    {{\"label\": \"{}\", \"wall_ms\": {:.1}, \"tx_per_sec\": {:.0}, \"committed\": {}}}",
        r.label, r.wall_ms, r.tx_per_sec, r.committed
    )
}

fn main() {
    let scale = BenchScale::from_env();
    let (accounts, outstanding, payments, batch) = match scale {
        BenchScale::Reduced => (20_000u64, 2_000usize, 24_000usize, 256usize),
        BenchScale::Full => (100_000u64, 8_000, 120_000, 4_096),
    };
    let threads = sweep_threads();
    println!("== executor snapshot ({scale:?} scale, pool threads {threads}) ==");

    // ------------------------------------------------------------------
    // 1. Plog execution: baseline vs reference walk vs sharded schedule.
    // ------------------------------------------------------------------
    println!(
        "\n-- plog execution: {payments} payments over {accounts} accounts, \
         {outstanding} outstanding contract escrows --"
    );
    let workload = build_workload(accounts, outstanding, payments, None);
    let (baseline, baseline_supply) = run_baseline(&workload);
    let reference = run_sharded(&workload, 1, batch, false, 1);
    let sharded: Vec<ShardedOutcome> = [4u32, 8, 16]
        .into_iter()
        .map(|m| run_sharded(&workload, m, batch, true, threads))
        .collect();

    for run in std::iter::once(&baseline)
        .chain(std::iter::once(&reference.run))
        .chain(sharded.iter().map(|s| &s.run))
    {
        println!(
            "{:<28} {:>9.1} ms  {:>11.0} tx/s  ({} committed)",
            run.label, run.wall_ms, run.tx_per_sec, run.committed
        );
    }
    // Cross-check: every engine agrees on what was computed.
    for s in &sharded {
        assert_eq!(
            s.run.committed, baseline.committed,
            "commit counts diverged"
        );
        assert_eq!(
            s.digest, reference.digest,
            "digests diverged across shard counts"
        );
        assert_eq!(s.total_supply, reference.total_supply);
    }
    assert_eq!(reference.run.committed, baseline.committed);
    assert_eq!(
        reference.total_supply, baseline_supply,
        "balance books diverged"
    );
    let speedup_m8 = sharded[1].run.tx_per_sec / baseline.tx_per_sec;
    println!("sharded m=8 vs baseline: {speedup_m8:.2}x");

    // ------------------------------------------------------------------
    // 2. Digest micro.
    // ------------------------------------------------------------------
    let objects = match scale {
        BenchScale::Reduced => 100_000u64,
        BenchScale::Full => 500_000,
    };
    println!("\n-- digest micro: {objects} objects --");
    let micro = digest_micro(objects);
    let digest_speedup = micro.rescan_ns / micro.incremental_ns;
    println!(
        "incremental {:>12.0} ns/call   full rescan {:>12.0} ns/call   ({digest_speedup:.0}x)",
        micro.incremental_ns, micro.rescan_ns
    );

    // ------------------------------------------------------------------
    // 3. Hot-account ablation.
    // ------------------------------------------------------------------
    println!("\n-- hot-account ablation: zipf 1.4 payer skew, m = 8 --");
    let hot_workload = build_workload(accounts, outstanding, payments, Some(1.4));
    let hot = run_sharded(&hot_workload, 8, batch, true, threads);
    let uniform = &sharded[1];
    let hot_imbalance = harness::shard_imbalance(&hot.shard_ops);
    let uniform_imbalance = harness::shard_imbalance(&uniform.shard_ops);
    println!(
        "uniform: {:>10.0} tx/s, hottest shard {uniform_imbalance:.2}x mean",
        uniform.run.tx_per_sec
    );
    println!(
        "zipf1.4: {:>10.0} tx/s, hottest shard {hot_imbalance:.2}x mean (ops {:?})",
        hot.run.tx_per_sec, hot.shard_ops
    );

    // ------------------------------------------------------------------
    // JSON snapshot
    // ------------------------------------------------------------------
    let mut runs_json = String::new();
    for (i, run) in std::iter::once(&baseline)
        .chain(std::iter::once(&reference.run))
        .chain(sharded.iter().map(|s| &s.run))
        .enumerate()
    {
        if i > 0 {
            runs_json.push_str(",\n");
        }
        runs_json.push_str(&plog_run_json(run));
    }
    let hot_ops: Vec<String> = hot.shard_ops.iter().map(u64::to_string).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"executor\",\n",
            "  \"scale\": \"{}\",\n",
            "  \"pool_threads\": {},\n",
            "  \"plog_execution\": {{\n",
            "    \"payments\": {},\n",
            "    \"accounts\": {},\n",
            "    \"outstanding_escrows\": {},\n",
            "    \"runs\": [\n{}\n    ],\n",
            "    \"speedup_m8_vs_baseline\": {:.2},\n",
            "    \"identical_outcomes\": true\n",
            "  }},\n",
            "  \"digest_micro\": {{\n",
            "    \"objects\": {},\n",
            "    \"incremental_ns_per_call\": {:.1},\n",
            "    \"rescan_ns_per_call\": {:.1},\n",
            "    \"speedup\": {:.1}\n",
            "  }},\n",
            "  \"hot_account\": {{\n",
            "    \"zipf_exponent\": 1.4,\n",
            "    \"tx_per_sec\": {:.0},\n",
            "    \"uniform_tx_per_sec\": {:.0},\n",
            "    \"hot_shard_imbalance\": {:.2},\n",
            "    \"uniform_shard_imbalance\": {:.2},\n",
            "    \"shard_ops\": [{}]\n",
            "  }}\n",
            "}}\n"
        ),
        if scale == BenchScale::Full {
            "full"
        } else {
            "reduced"
        },
        threads,
        payments,
        accounts,
        outstanding,
        runs_json,
        speedup_m8,
        micro.objects,
        micro.incremental_ns,
        micro.rescan_ns,
        digest_speedup,
        hot.run.tx_per_sec,
        uniform.run.tx_per_sec,
        hot_imbalance,
        uniform_imbalance,
        hot_ops.join(","),
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_executor.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nsnapshot written to {}", path.display()),
        Err(err) => eprintln!("warning: could not write {}: {err}", path.display()),
    }
}
