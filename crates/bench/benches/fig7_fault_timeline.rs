//! Figure 7 (a/b): Orthrus throughput and latency over time with 0, 1 and 5
//! detectable (crash) faults occurring 9 seconds into the run, averaged over
//! 0.5 s intervals. The PBFT view-change timeout is 10 s as in the paper.

use orthrus_bench::harness::{self, BenchScale};
use orthrus_core::run_scenarios;
use orthrus_sim::FaultPlan;
use orthrus_types::{Duration, NetworkKind, ProtocolKind, ReplicaId, SimTime};
use std::fs;

fn main() {
    let scale = BenchScale::from_env();
    let replicas = scale.fixed_replicas();
    let fault_counts = [0u32, 1, 5.min(replicas / 3)];
    println!();
    println!("=== Figure 7 — throughput/latency over time under crash faults ({replicas} replicas WAN) ===");
    let mut csv = String::from("faults,time_s,throughput_ktps,latency_s\n");
    // Build the three fault timelines up front and sweep them on the thread
    // pool; printing below keeps the input order.
    let scenarios: Vec<_> = fault_counts
        .iter()
        .map(|&faults| {
            let mut scenario = harness::paper_scenario(
                ProtocolKind::Orthrus,
                NetworkKind::Wan,
                replicas,
                0.46,
                false,
                scale,
            );
            // Spread submissions over a longer window so the run is still
            // under load when the faults hit at t = 9 s, and keep the paper's
            // 10 s view-change timeout.
            scenario.submission_window = Duration::from_secs(25);
            scenario.max_sim_time = Duration::from_secs(120);
            scenario.config.view_change_timeout = Duration::from_secs(10);
            let mut plan = FaultPlan::none();
            for f in 0..faults {
                // Crash replicas other than replica 0 so instance 0 keeps
                // its leader and the crashes are spread over distinct
                // instances.
                plan = plan.with_crash(ReplicaId::new(1 + f), SimTime::from_secs(9));
            }
            scenario.faults = plan;
            scenario
        })
        .collect();
    let outcomes = run_scenarios(&scenarios);
    for (&faults, outcome) in fault_counts.iter().zip(&outcomes) {
        println!(
            "\n-- f = {faults}: {} / {} confirmed, {} view changes --",
            outcome.confirmed, outcome.submitted, outcome.view_changes
        );
        println!(
            "{:>8} {:>16} {:>12}",
            "time s", "throughput ktps", "latency s"
        );
        for (tp, lat) in outcome
            .throughput_series
            .iter()
            .zip(outcome.latency_series.iter())
        {
            println!("{:>8.1} {:>16.3} {:>12.3}", tp.time_s, tp.value, lat.value);
            csv.push_str(&format!(
                "{},{},{},{}\n",
                faults, tp.time_s, tp.value, lat.value
            ));
        }
    }
    let path = harness::figure_csv_path("fig7_fault_timeline");
    if fs::write(&path, csv).is_ok() {
        println!("\n(series written to {})", path.display());
    }
}
