//! Figure 7 (a/b): Orthrus throughput and latency over time with 0, 1 and
//! more detectable (crash) faults occurring 9 seconds into the run, averaged
//! over 0.5 s intervals. The PBFT view-change timeout is 10 s as in the
//! paper.
//!
//! The fault timelines come from the spec registry
//! (`scenarios/fig7_fault_timeline.orth`): the `crash_count` axis crashes
//! replicas 1..=count so instance 0 keeps its leader and the crashes spread
//! over distinct instances.

use orthrus_bench::harness::{self, BenchScale};
use orthrus_core::run_scenarios;
use std::fs;

fn main() {
    let scale = BenchScale::from_env();
    println!();
    println!("=== {} ===", harness::registry_title("fig7_fault_timeline"));
    let mut csv = String::from("faults,time_s,throughput_ktps,latency_s\n");
    // Lower the fault timelines up front and sweep them on the thread pool;
    // printing below keeps the input order.
    let jobs = harness::registry_jobs("fig7_fault_timeline", scale);
    let scenarios: Vec<_> = jobs.iter().map(|job| job.scenario.clone()).collect();
    let outcomes = run_scenarios(&scenarios).expect("registry scenarios must validate");
    for (job, outcome) in jobs.iter().zip(&outcomes) {
        let faults = job.x as u32;
        println!(
            "\n-- f = {faults}: {} / {} confirmed, {} view changes --",
            outcome.confirmed, outcome.submitted, outcome.view_changes
        );
        println!(
            "{:>8} {:>16} {:>12}",
            "time s", "throughput ktps", "latency s"
        );
        for (tp, lat) in outcome
            .throughput_series
            .iter()
            .zip(outcome.latency_series.iter())
        {
            println!("{:>8.1} {:>16.3} {:>12.3}", tp.time_s, tp.value, lat.value);
            csv.push_str(&format!(
                "{},{},{},{}\n",
                faults, tp.time_s, tp.value, lat.value
            ));
        }
    }
    let path = harness::figure_csv_path("fig7_fault_timeline");
    if fs::write(&path, csv).is_ok() {
        println!("\n(series written to {})", path.display());
    }
}
