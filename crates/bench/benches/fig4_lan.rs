//! Figure 4 (a–d): throughput and latency of Orthrus, ISS, RCC, Mir, DQBFT
//! and Ladon in the LAN, with 0 and 1 straggler, sweeping the replica count.
//!
//! Scenario points run on the scoped thread pool (`ORTHRUS_SWEEP_THREADS`
//! overrides the worker count); series order is stable regardless.

use orthrus_bench::harness::{self, BenchScale, SweepJob};
use orthrus_types::{NetworkKind, ProtocolKind};

fn main() {
    let scale = BenchScale::from_env();
    for straggler in [false, true] {
        let figure = if straggler {
            "fig4cd_lan_straggler"
        } else {
            "fig4ab_lan_no_straggler"
        };
        harness::print_header(
            &format!(
                "Figure 4{} — LAN, {} straggler(s)",
                if straggler { "c/d" } else { "a/b" },
                u32::from(straggler)
            ),
            "replicas",
        );
        let mut jobs = Vec::new();
        for &n in &scale.replica_counts() {
            for protocol in ProtocolKind::ALL {
                let scenario =
                    harness::paper_scenario(protocol, NetworkKind::Lan, n, 0.46, straggler, scale);
                jobs.push(SweepJob::new(protocol.label(), f64::from(n), scenario));
            }
        }
        let points = harness::measure_sweep(&jobs);
        for point in &points {
            harness::print_row(point);
        }
        harness::write_csv(figure, "replicas", &points);
    }
}
