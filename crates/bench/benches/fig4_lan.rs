//! Figure 4 (a–d): throughput and latency of Orthrus, ISS, RCC, Mir, DQBFT
//! and Ladon in the LAN, with 0 and 1 straggler, sweeping the replica count.
//!
//! The grids come from the spec registry (`scenarios/fig4*.orth`); scenario
//! points run on the scoped thread pool (`ORTHRUS_SWEEP_THREADS` overrides
//! the worker count) and the series order is stable regardless.

use orthrus_bench::harness::{self, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    for figure in ["fig4ab_lan_no_straggler", "fig4cd_lan_straggler"] {
        harness::print_header(&harness::registry_title(figure), "replicas");
        let jobs = harness::registry_jobs(figure, scale);
        let points = harness::measure_sweep(&jobs);
        for point in &points {
            harness::print_row(point);
        }
        harness::write_csv(figure, "replicas", &points);
    }
}
