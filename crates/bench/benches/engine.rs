//! Engine snapshot: quantifies the calendar-queue scheduler, the coalesced
//! multicast delivery path and the parallel scenario sweep, and records the
//! result to `BENCH_engine.json` at the repository root.
//!
//! Three measurements:
//!
//! 1. **Queue microbench** — schedule-then-drain 1e6+ timestamped events
//!    through the raw `EventQueue`, heap vs calendar.
//! 2. **Broadcast storm** — an n-replica gossip round-trip through the full
//!    engine (every replica broadcasts each round until a fixed round count),
//!    once with the heap queue + per-recipient unicasts (the PR-1 baseline)
//!    and once with the calendar queue + coalesced multicast. At the full
//!    scale (`ORTHRUS_FULL_SCALE=1`) this is a 128-replica, ≥1e6-delivery
//!    scenario. The two off-diagonal combinations are included to attribute
//!    the speedup.
//! 3. **Scenario sweep** — a multi-point paper-style sweep run serially and
//!    on the scoped thread pool, with a cross-thread-count determinism check.
//! 4. **Intra-run parallel engine** — one fig3-style point (128 replicas at
//!    full scale) on the serial engine vs the conservative-window parallel
//!    engine: bit-identity, measured wall clock, and a work-span makespan
//!    model at a fixed width so the speedup claim is host-independent.
//!
//! Run with `cargo bench --bench engine` (reduced scale) or
//! `ORTHRUS_FULL_SCALE=1 cargo bench --bench engine` (paper scale).

use orthrus_bench::harness::{self, BenchScale};
use orthrus_core::{
    build_simulation, run_scenario, run_scenarios_with_threads, ScenarioOutcome, StopCondition,
};
use orthrus_sim::{
    Actor, Context, FaultPlan, NetworkConfig, NodeId, Payload, QueueKind, Simulation,
    SimulationReport,
};
use orthrus_types::rng::{Rng, StdRng};
use orthrus_types::{Duration, EngineMode, NetworkKind, ProtocolKind, SimTime};
use std::any::Any;
use std::sync::Arc;
use std::time::Instant;

// ----------------------------------------------------------------------
// 1. Raw queue microbench
// ----------------------------------------------------------------------

struct QueueMicro {
    events: usize,
    heap_events_per_sec: f64,
    calendar_events_per_sec: f64,
}

fn queue_micro(events: usize) -> QueueMicro {
    let run = |kind: QueueKind| -> f64 {
        let mut q = orthrus_sim::EventQueue::with_kind(kind);
        let mut rng = StdRng::seed_from_u64(4242);
        let wall = Instant::now();
        // Half up front, then a hold pattern: pop one, push one — the
        // steady-state shape of a discrete-event run.
        let half = events / 2;
        for i in 0..half {
            q.schedule(SimTime::from_micros(rng.gen_range(0..2_000_000u64)), i);
        }
        let mut now = 0u64;
        for i in half..events {
            let (t, _) = q.pop().expect("queue holds events");
            now = now.max(t.as_micros());
            q.schedule(SimTime::from_micros(now + rng.gen_range(0..5_000u64)), i);
        }
        while q.pop().is_some() {}
        let secs = wall.elapsed().as_secs_f64();
        // One schedule + one pop per event.
        events as f64 / secs
    };
    QueueMicro {
        events,
        heap_events_per_sec: run(QueueKind::Heap),
        calendar_events_per_sec: run(QueueKind::Calendar),
    }
}

// ----------------------------------------------------------------------
// 2. Broadcast storm through the full engine
// ----------------------------------------------------------------------

/// A gossip message with an `Arc` payload, mimicking the zero-copy fabric's
/// shared blocks.
#[derive(Clone)]
struct Gossip {
    round: u32,
    payload: Arc<Vec<u8>>,
}

impl Payload for Gossip {
    fn wire_bytes(&self) -> u64 {
        64 + self.payload.len() as u64
    }
}

/// Broadcasts one message per round: on the first message of round `r` it
/// gossips round `r + 1` to every peer, until `rounds` is reached.
struct StormNode {
    peers: Vec<NodeId>,
    rounds: u32,
    next_round: u32,
    delivered: u64,
    coalesce: bool,
    payload: Arc<Vec<u8>>,
}

impl StormNode {
    fn broadcast(&mut self, round: u32, ctx: &mut Context<'_, Gossip>) {
        let msg = Gossip {
            round,
            payload: Arc::clone(&self.payload),
        };
        if self.coalesce {
            ctx.multicast(self.peers.iter().copied(), msg);
        } else {
            for &p in &self.peers {
                ctx.send(p, msg.clone());
            }
        }
    }
}

impl Actor<Gossip> for StormNode {
    fn on_start(&mut self, ctx: &mut Context<'_, Gossip>) {
        self.next_round = 1;
        self.broadcast(0, ctx);
    }
    fn on_message(&mut self, _from: NodeId, msg: Gossip, ctx: &mut Context<'_, Gossip>) {
        self.delivered += 1;
        // Seeing any message of round r is evidence the cluster reached it;
        // broadcast every round up to r + 1 that we have not yet sent, so
        // each node broadcasts exactly `rounds` times.
        while self.next_round < self.rounds && self.next_round <= msg.round + 1 {
            let round = self.next_round;
            self.next_round += 1;
            self.broadcast(round, ctx);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

struct StormResult {
    wall_ms: f64,
    deliveries: u64,
    deliveries_per_sec: f64,
    events_processed: u64,
    peak_queue_len: u64,
    end_time_us: u64,
}

fn storm(replicas: u32, rounds: u32, queue: QueueKind, coalesce: bool) -> StormResult {
    let mut sim: Simulation<Gossip> =
        Simulation::with_queue(NetworkConfig::wan(), FaultPlan::none(), 7, queue);
    let payload = Arc::new(vec![0u8; 1024]);
    let all: Vec<NodeId> = (0..replicas).map(NodeId::replica).collect();
    for &node in &all {
        let peers: Vec<NodeId> = all.iter().copied().filter(|&p| p != node).collect();
        sim.add_actor(
            node,
            Box::new(StormNode {
                peers,
                rounds,
                next_round: 0,
                delivered: 0,
                coalesce,
                payload: Arc::clone(&payload),
            }),
        );
    }
    let wall = Instant::now();
    let report: SimulationReport = sim.run_to_completion();
    let wall_s = wall.elapsed().as_secs_f64();
    let deliveries: u64 = (0..replicas)
        .map(|r| {
            sim.actor_as::<StormNode>(NodeId::replica(r))
                .expect("storm node exists")
                .delivered
        })
        .sum();
    StormResult {
        wall_ms: wall_s * 1e3,
        deliveries,
        deliveries_per_sec: deliveries as f64 / wall_s,
        events_processed: report.events_processed,
        peak_queue_len: report.peak_queue_len,
        end_time_us: report.end_time.as_micros(),
    }
}

fn storm_json(name: &str, r: &StormResult) -> String {
    format!(
        concat!(
            "    \"{}\": {{\"wall_ms\": {:.1}, \"deliveries\": {}, ",
            "\"deliveries_per_sec\": {:.0}, \"events_processed\": {}, ",
            "\"peak_queue_len\": {}, \"virtual_end_time_us\": {}}}"
        ),
        name,
        r.wall_ms,
        r.deliveries,
        r.deliveries_per_sec,
        r.events_processed,
        r.peak_queue_len,
        r.end_time_us,
    )
}

// ----------------------------------------------------------------------
// 3. Parallel scenario sweep
// ----------------------------------------------------------------------

struct SweepResult {
    scenarios: usize,
    threads: usize,
    serial_wall_ms: f64,
    parallel_wall_ms: f64,
    /// Longest single scenario in the serial pass — the span of the sweep's
    /// work-span model (no schedule can beat it).
    span_ms: f64,
    /// Greedy list-schedule makespan of the measured per-scenario times at
    /// the fixed [`MODEL_WIDTH`], host-independent like the intra-run and
    /// executor models (the CI box has one core, so walls under-report).
    modeled_makespan_ms: f64,
    modeled_speedup: f64,
    identical: bool,
}

fn sweep_bench(scale: BenchScale) -> SweepResult {
    let replica_points: &[u32] = match scale {
        BenchScale::Reduced => &[4, 8],
        BenchScale::Full => &[4, 8, 16, 32],
    };
    // The sweep measures the *pool*, not the per-scenario workload, so the
    // points stay at the reduced workload size even at full scale — full-size
    // points would take tens of minutes each without changing the scaling
    // shape (scenarios are independent and deterministic either way).
    let scenarios: Vec<_> = replica_points
        .iter()
        .flat_map(|&n| {
            [ProtocolKind::Orthrus, ProtocolKind::Iss]
                .into_iter()
                .map(move |p| (p, n))
        })
        .map(|(p, n)| {
            harness::paper_scenario(p, NetworkKind::Lan, n, 0.46, false, BenchScale::Reduced)
        })
        .collect();
    let threads = orthrus_core::sweep_threads().max(2);

    // Serial pass, timed per scenario: the per-point times are the task
    // durations the work-span model schedules below.
    let wall = Instant::now();
    let mut serial = Vec::with_capacity(scenarios.len());
    let mut point_ms = Vec::with_capacity(scenarios.len());
    for scenario in &scenarios {
        let one = Instant::now();
        serial.push(run_scenario(scenario).expect("bench scenarios must validate"));
        point_ms.push(one.elapsed().as_secs_f64() * 1e3);
    }
    let serial_wall_ms = wall.elapsed().as_secs_f64() * 1e3;

    let wall = Instant::now();
    let parallel =
        run_scenarios_with_threads(&scenarios, threads).expect("bench scenarios must validate");
    let parallel_wall_ms = wall.elapsed().as_secs_f64() * 1e3;

    // Work-span makespan at the fixed model width: greedy earliest-free
    // assignment in input order, the same discipline the sweep pool uses.
    let work_ms: f64 = point_ms.iter().sum();
    let span_ms = point_ms.iter().copied().fold(0.0, f64::max);
    let mut workers = [0.0f64; MODEL_WIDTH as usize];
    for &t in &point_ms {
        let earliest = workers
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        workers[earliest] += t;
    }
    let modeled_makespan_ms = workers.iter().copied().fold(0.0, f64::max);

    let identical = serial.len() == parallel.len()
        && serial.iter().zip(&parallel).all(|(a, b)| {
            a.confirmed == b.confirmed
                && a.avg_latency == b.avg_latency
                && a.state_digests == b.state_digests
                && a.report == b.report
        });
    SweepResult {
        scenarios: scenarios.len(),
        threads,
        serial_wall_ms,
        parallel_wall_ms,
        span_ms,
        modeled_makespan_ms,
        modeled_speedup: work_ms / modeled_makespan_ms.max(0.001),
        identical,
    }
}

// ----------------------------------------------------------------------
// 4. Intra-run parallel engine (conservative windows)
// ----------------------------------------------------------------------

/// Fixed machine width the work-span model is evaluated at, so the modeled
/// speedup is comparable across benchmark hosts (including 1-core CI).
const MODEL_WIDTH: u64 = 8;

struct IntraRunResult {
    replicas: u32,
    transactions: usize,
    threads: usize,
    serial_wall_ms: f64,
    parallel_wall_ms: f64,
    windows_parallel: u64,
    windows_serial: u64,
    modeled_serial_ms: f64,
    modeled_makespan_ms: f64,
    identical: bool,
}

/// One fig3-style point (Orthrus, WAN, no faults) run once on the serial
/// engine and once on the conservative-window parallel engine, with a
/// bit-identity check between the two outcomes.
///
/// Wall-clock numbers are honest but host-dependent (a 1-core runner pays
/// window overhead with no parallelism to show for it), so the headline
/// metric is a **work-span makespan model** over the profiled windows:
///
/// ```text
/// modeled_serial   = sum_w (serial_ns + sum_lane_ns)
/// modeled_makespan = sum_w (serial_ns + max(max_lane_ns, sum_lane_ns / W))
/// ```
///
/// with `W = MODEL_WIDTH` — each window's serial plan/replay phases on the
/// critical path, lane work bounded below by both the longest lane (span)
/// and perfect width-`W` load balance (work / W). The model is evaluated
/// from per-lane wall times measured in-process, so it reflects this
/// codebase, not an abstract event count.
fn intra_run_bench(scale: BenchScale) -> IntraRunResult {
    let replicas = match scale {
        BenchScale::Reduced => 16u32,
        BenchScale::Full => 128u32,
    };
    // Workload stays at the reduced size even at full scale: the engine's
    // window structure is driven by replica count and network lookahead,
    // and full-size workloads only stretch the wall clock.
    let mut base = harness::paper_scenario(
        ProtocolKind::Orthrus,
        NetworkKind::Wan,
        replicas,
        0.46,
        false,
        BenchScale::Reduced,
    );
    // Measure the loaded confirm phase only: for this WAN grid the digest
    // quiesce phase never converges and would burn the full simulated-time
    // budget in idle timer churn, swamping both walls with identical work.
    base.stop = vec![StopCondition::AllConfirmed, StopCondition::SimTimeLimit];
    let threads = orthrus_core::sweep_threads().max(2);
    // The parallel engine resolves its thread count through the same
    // `ORTHRUS_SWEEP_THREADS` knob as the sweep pool; publish the choice so
    // both run_scenario calls below see it.
    std::env::set_var("ORTHRUS_SWEEP_THREADS", threads.to_string());

    let wall = Instant::now();
    let serial = run_scenario(&base.clone().with_engine_mode(EngineMode::Serial))
        .expect("bench scenario must validate");
    let serial_wall_ms = wall.elapsed().as_secs_f64() * 1e3;

    let parallel_scenario = base.clone().with_engine_mode(EngineMode::Parallel);
    let wall = Instant::now();
    let parallel = run_scenario(&parallel_scenario).expect("bench scenario must validate");
    let parallel_wall_ms = wall.elapsed().as_secs_f64() * 1e3;

    let identical = outcomes_identical(&serial, &parallel);

    // Profiled pass: same scenario, driven directly so the per-window lane
    // times are observable (run_scenario does not expose them). The drive
    // loop mirrors run_scenario's AllConfirmed slicing.
    let (mut sim, submitted) =
        build_simulation(&parallel_scenario).expect("bench scenario must validate");
    sim.set_engine_profiling(true);
    let deadline = SimTime::ZERO + parallel_scenario.max_sim_time;
    while sim.now() < deadline {
        let slice_end = (sim.now() + Duration::from_secs(1)).min(deadline);
        sim.run_until(slice_end);
        if sim.stats().confirmed_count() >= submitted && submitted > 0 {
            break;
        }
    }
    let mut modeled_serial_ns = 0.0f64;
    let mut modeled_makespan_ns = 0.0f64;
    for s in sim.window_samples() {
        let work = s.sum_lane_ns as f64;
        let span = s.max_lane_ns as f64;
        modeled_serial_ns += s.serial_ns as f64 + work;
        modeled_makespan_ns += s.serial_ns as f64 + span.max(work / MODEL_WIDTH as f64);
    }

    IntraRunResult {
        replicas,
        transactions: base.workload.num_transactions,
        threads,
        serial_wall_ms,
        parallel_wall_ms,
        windows_parallel: sim.windows_parallel(),
        windows_serial: sim.windows_serial(),
        modeled_serial_ms: modeled_serial_ns / 1e6,
        modeled_makespan_ms: modeled_makespan_ns / 1e6,
        identical,
    }
}

fn outcomes_identical(a: &ScenarioOutcome, b: &ScenarioOutcome) -> bool {
    a.confirmed == b.confirmed
        && a.submitted == b.submitted
        && a.avg_latency == b.avg_latency
        && a.p99_latency == b.p99_latency
        && a.state_digests == b.state_digests
        && a.report == b.report
}

fn main() {
    let scale = BenchScale::from_env();
    let (replicas, queue_events) = match scale {
        BenchScale::Reduced => (24u32, 200_000usize),
        BenchScale::Full => (128u32, 1_000_000usize),
    };
    // Rounds needed so the storm delivers at least 1e6 messages at full
    // scale: each round is n * (n - 1) deliveries.
    let per_round = u64::from(replicas) * u64::from(replicas - 1);
    let target_deliveries: u64 = match scale {
        BenchScale::Reduced => 100_000,
        BenchScale::Full => 2_000_000,
    };
    let rounds = target_deliveries.div_ceil(per_round) as u32;

    println!("== engine snapshot ({scale:?} scale) ==");
    println!("\n-- queue microbench: {queue_events} schedule/pop pairs --");
    let micro = queue_micro(queue_events);
    println!("heap      {:>12.0} events/s", micro.heap_events_per_sec);
    println!("calendar  {:>12.0} events/s", micro.calendar_events_per_sec);

    println!("\n-- broadcast storm: {replicas} replicas x {rounds} rounds --");
    let baseline = storm(replicas, rounds, QueueKind::Heap, false);
    let coalesced = storm(replicas, rounds, QueueKind::Calendar, true);
    let heap_coalesced = storm(replicas, rounds, QueueKind::Heap, true);
    let calendar_unicast = storm(replicas, rounds, QueueKind::Calendar, false);
    for (name, r) in [
        ("heap + per-recipient  (baseline)", &baseline),
        ("calendar + coalesced  (this PR) ", &coalesced),
        ("heap + coalesced               ", &heap_coalesced),
        ("calendar + per-recipient       ", &calendar_unicast),
    ] {
        println!(
            "{name}: {:>8.1} ms, {:>10.0} deliveries/s, peak queue {:>8}",
            r.wall_ms, r.deliveries_per_sec, r.peak_queue_len
        );
    }
    assert_eq!(
        baseline.deliveries, coalesced.deliveries,
        "both delivery paths must do the same logical work"
    );
    // Coalescing preserves arrival times but not the tie-break order against
    // unrelated same-timestamp events, so on tie-heavy workloads virtual end
    // times can legitimately drift; report rather than fail.
    if baseline.end_time_us != coalesced.end_time_us {
        println!(
            "note: virtual end time differs across delivery paths ({} vs {} us; \
             same-timestamp tie-breaks resolve differently)",
            baseline.end_time_us, coalesced.end_time_us
        );
    }
    let speedup = coalesced.deliveries_per_sec / baseline.deliveries_per_sec;

    println!("\n-- parallel scenario sweep --");
    let sweep = sweep_bench(scale);
    println!(
        "{} scenarios: serial {:.0} ms, {} threads {:.0} ms (identical: {})",
        sweep.scenarios,
        sweep.serial_wall_ms,
        sweep.threads,
        sweep.parallel_wall_ms,
        sweep.identical
    );
    println!(
        "work-span model @ width {MODEL_WIDTH}: span {:.0} ms, makespan {:.0} ms, \
         speedup {:.2}",
        sweep.span_ms, sweep.modeled_makespan_ms, sweep.modeled_speedup
    );

    println!("\n-- intra-run parallel engine (conservative windows) --");
    let intra = intra_run_bench(scale);
    let modeled_speedup = intra.modeled_serial_ms / intra.modeled_makespan_ms.max(0.001);
    println!(
        "{} replicas, {} txs: serial {:.0} ms, parallel {:.0} ms ({} threads), \
         {} parallel / {} serial windows",
        intra.replicas,
        intra.transactions,
        intra.serial_wall_ms,
        intra.parallel_wall_ms,
        intra.threads,
        intra.windows_parallel,
        intra.windows_serial,
    );
    println!(
        "work-span model @ width {MODEL_WIDTH}: serial {:.0} ms, makespan {:.0} ms, \
         speedup {modeled_speedup:.2} (identical: {})",
        intra.modeled_serial_ms, intra.modeled_makespan_ms, intra.identical
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"engine\",\n",
            "  \"scale\": \"{}\",\n",
            "  \"queue_micro\": {{\n",
            "    \"events\": {},\n",
            "    \"heap_events_per_sec\": {:.0},\n",
            "    \"calendar_events_per_sec\": {:.0},\n",
            "    \"speedup\": {:.2}\n",
            "  }},\n",
            "  \"broadcast_storm\": {{\n",
            "    \"replicas\": {},\n",
            "    \"rounds\": {},\n",
            "{},\n",
            "{},\n",
            "{},\n",
            "{},\n",
            "    \"speedup\": {:.2},\n",
            "    \"peak_queue_reduction\": {:.1}\n",
            "  }},\n",
            "  \"sweep\": {{\n",
            "    \"scenarios\": {},\n",
            "    \"available_cores\": {},\n",
            "    \"threads\": {},\n",
            "    \"serial_wall_ms\": {:.1},\n",
            "    \"parallel_wall_ms\": {:.1},\n",
            "    \"speedup\": {:.2},\n",
            "    \"model_width\": {},\n",
            "    \"span_ms\": {:.1},\n",
            "    \"modeled_makespan_ms\": {:.1},\n",
            "    \"modeled_speedup\": {:.2},\n",
            "    \"identical_across_thread_counts\": {}\n",
            "  }},\n",
            "  \"intra_run\": {{\n",
            "    \"replicas\": {},\n",
            "    \"transactions\": {},\n",
            "    \"threads\": {},\n",
            "    \"serial_wall_ms\": {:.1},\n",
            "    \"parallel_wall_ms\": {:.1},\n",
            "    \"wall_speedup\": {:.2},\n",
            "    \"windows_parallel\": {},\n",
            "    \"windows_serial\": {},\n",
            "    \"model_width\": {},\n",
            "    \"modeled_serial_ms\": {:.1},\n",
            "    \"modeled_makespan_ms\": {:.1},\n",
            "    \"modeled_speedup\": {:.2},\n",
            "    \"identical_across_thread_counts\": {}\n",
            "  }}\n",
            "}}\n"
        ),
        if scale == BenchScale::Full {
            "full"
        } else {
            "reduced"
        },
        micro.events,
        micro.heap_events_per_sec,
        micro.calendar_events_per_sec,
        micro.calendar_events_per_sec / micro.heap_events_per_sec,
        replicas,
        rounds,
        storm_json("heap_per_recipient_baseline", &baseline),
        storm_json("calendar_coalesced", &coalesced),
        storm_json("heap_coalesced", &heap_coalesced),
        storm_json("calendar_per_recipient", &calendar_unicast),
        speedup,
        baseline.peak_queue_len as f64 / coalesced.peak_queue_len.max(1) as f64,
        sweep.scenarios,
        cores,
        sweep.threads,
        sweep.serial_wall_ms,
        sweep.parallel_wall_ms,
        sweep.serial_wall_ms / sweep.parallel_wall_ms.max(0.001),
        MODEL_WIDTH,
        sweep.span_ms,
        sweep.modeled_makespan_ms,
        sweep.modeled_speedup,
        sweep.identical,
        intra.replicas,
        intra.transactions,
        intra.threads,
        intra.serial_wall_ms,
        intra.parallel_wall_ms,
        intra.serial_wall_ms / intra.parallel_wall_ms.max(0.001),
        intra.windows_parallel,
        intra.windows_serial,
        MODEL_WIDTH,
        intra.modeled_serial_ms,
        intra.modeled_makespan_ms,
        modeled_speedup,
        intra.identical,
    );
    // Cargo runs benches with the package directory as cwd; the snapshot
    // belongs at the workspace root next to ROADMAP.md.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_engine.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nsnapshot written to {}", path.display()),
        Err(err) => eprintln!("warning: could not write {}: {err}", path.display()),
    }
    if !sweep.identical {
        eprintln!("warning: sweep outcomes diverged across thread counts");
        std::process::exit(1);
    }
    if !intra.identical {
        eprintln!("warning: parallel-engine outcome diverged from the serial engine");
        std::process::exit(1);
    }
}
