//! Checkpoint snapshot: measures that checkpoint-driven truncation turns
//! log retention from monotone growth into a plateau, and how long a
//! crashed replica takes to rejoin via state transfer. Records the result
//! to `BENCH_checkpoint.json` at the repository root.
//!
//! Two measurements:
//!
//! 1. **Retention** — a long fig3-class run (every instance proposing many
//!    blocks) executed twice, checkpoint GC on and off, sampling replica
//!    0's retained log entries (plog blocks + glog payloads + PBFT slots)
//!    every 250 ms of virtual time. The two runs must be bit-identical in
//!    everything except retention (truncation is memory-only); with GC on
//!    the series plateaus at the in-flight window, with GC off it tracks
//!    the delivered history.
//! 2. **Recovery** — a run in which one replica crashes mid-load and
//!    restarts later: reports the state-transfer latency (restart → first
//!    install) and checks the recovered replica reconverges to the same
//!    state digest as its peers.
//!
//! Run with `cargo bench --bench checkpoint` (reduced scale: 16 replicas)
//! or `ORTHRUS_FULL_SCALE=1 cargo bench --bench checkpoint` (the paper's
//! 128 replicas).

use orthrus_bench::harness::BenchScale;
use orthrus_core::{build_simulation, run_scenario, ReplicaNode, Scenario};
use orthrus_sim::NodeId;
use orthrus_types::{Digest, Duration, NetworkKind, ProtocolKind, ReplicaId, SimTime};
use orthrus_workload::WorkloadConfig;
use std::fmt::Write as _;

struct RetentionRun {
    /// (virtual ms, retained entries) samples on replica 0.
    series: Vec<(u64, u64)>,
    final_retained: u64,
    peak_retained: u64,
    peak_retained_bytes: u64,
    confirmed: usize,
    digests: Vec<Digest>,
    events: u64,
}

fn retention_scenario(scale: BenchScale, gc: bool) -> Scenario {
    let (replicas, transactions) = match scale {
        BenchScale::Reduced => (16, 6_000),
        BenchScale::Full => (128, 60_000),
    };
    let workload = WorkloadConfig {
        num_accounts: 2_000,
        num_transactions: transactions,
        payment_share: 0.46,
        multi_payer_share: 0.05,
        num_shared_objects: 64,
        ..WorkloadConfig::default()
    };
    let mut scenario = Scenario::new(ProtocolKind::Orthrus, NetworkKind::Lan, replicas)
        .with_workload(workload)
        .with_seed(42)
        .with_batch_size(32)
        .with_batch_timeout(Duration::from_millis(20))
        .with_num_clients(8)
        .with_submission_window(Duration::from_secs(10))
        .with_max_sim_time(Duration::from_secs(120))
        .with_checkpoint_gc(gc);
    scenario.config.checkpoint_interval = 4;
    scenario
}

/// Run the retention scenario in fixed 250 ms slices, sampling replica 0's
/// retained-entry count after each slice. Slicing is identical for both GC
/// settings, so everything except retention must match exactly.
fn measure_retention(scenario: &Scenario) -> RetentionRun {
    let (mut sim, submitted) = build_simulation(scenario).expect("bench scenario must validate");
    let deadline = SimTime::ZERO + scenario.max_sim_time;
    let mut series = Vec::new();
    let mut peak = 0u64;
    let slice = Duration::from_millis(250);
    // Run to all-confirmed, then two extra seconds of drain so the last
    // checkpoints (and their truncations) land.
    let mut drain_until: Option<SimTime> = None;
    let report = loop {
        let now = sim.now();
        if now >= deadline {
            break sim.run_until(now);
        }
        let slice_end = (now + slice).min(deadline);
        let report = sim.run_until(slice_end);
        let node = sim
            .actor_as::<ReplicaNode>(NodeId::replica(0))
            .expect("replica 0 exists");
        let retained = node.retained_log_entries();
        peak = peak.max(retained);
        series.push((sim.now().as_micros() / 1_000, retained));
        match drain_until {
            Some(t) if sim.now() >= t => break report,
            Some(_) => {}
            None => {
                if sim.stats().confirmed_count() >= submitted {
                    drain_until = Some(sim.now() + Duration::from_secs(2));
                }
            }
        }
    };
    let node = sim
        .actor_as::<ReplicaNode>(NodeId::replica(0))
        .expect("replica 0 exists");
    let digests = (0..scenario.config.num_replicas)
        .filter_map(|r| {
            sim.actor_as::<ReplicaNode>(NodeId::replica(r))
                .map(|n| n.executor().state_digest())
        })
        .collect();
    RetentionRun {
        final_retained: node.retained_log_entries(),
        peak_retained: node.peak_retained_entries().max(peak),
        peak_retained_bytes: node.peak_retained_bytes(),
        confirmed: sim.stats().confirmed_count(),
        digests,
        series,
        events: report.events_processed,
    }
}

fn series_json(series: &[(u64, u64)]) -> String {
    let mut out = String::from("[");
    for (i, (t, entries)) in series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"t_ms\":{t},\"entries\":{entries}}}");
    }
    out.push(']');
    out
}

struct RecoveryRun {
    replicas: u32,
    crash_at_ms: u64,
    recover_at_ms: u64,
    recovery_latency_ms: f64,
    digests_converged: bool,
    confirmed: usize,
    submitted: usize,
}

fn measure_recovery(scale: BenchScale) -> RecoveryRun {
    let replicas = match scale {
        BenchScale::Reduced => 16,
        BenchScale::Full => 128,
    };
    let crash_at = SimTime::from_millis(500);
    let recover_at = SimTime::from_millis(3_000);
    let workload = WorkloadConfig {
        num_accounts: 1_000,
        num_transactions: 3_000,
        payment_share: 0.46,
        multi_payer_share: 0.05,
        num_shared_objects: 32,
        ..WorkloadConfig::default()
    };
    let scenario = Scenario::new(ProtocolKind::Orthrus, NetworkKind::Lan, replicas)
        .with_workload(workload)
        .with_seed(42)
        .with_batch_size(32)
        .with_batch_timeout(Duration::from_millis(20))
        .with_num_clients(8)
        .with_submission_window(Duration::from_secs(4))
        .with_crash_recover(ReplicaId::new(2), crash_at, recover_at);
    let outcome = run_scenario(&scenario).expect("bench scenario must validate");
    let recovered_at = outcome
        .recoveries
        .iter()
        .find(|(r, _)| *r == ReplicaId::new(2))
        .map(|(_, at)| *at)
        .expect("replica 2 must recover");
    let digests: Vec<Digest> = outcome.state_digests.iter().map(|(_, d)| *d).collect();
    RecoveryRun {
        replicas,
        crash_at_ms: crash_at.as_micros() / 1_000,
        recover_at_ms: recover_at.as_micros() / 1_000,
        recovery_latency_ms: (recovered_at - recover_at).as_micros() as f64 / 1_000.0,
        digests_converged: digests.windows(2).all(|w| w[0] == w[1]),
        confirmed: outcome.confirmed,
        submitted: outcome.submitted,
    }
}

fn main() {
    let scale = BenchScale::from_env();
    println!("== checkpoint bench ({scale:?} scale) ==");

    let on_scenario = retention_scenario(scale, true);
    let off_scenario = retention_scenario(scale, false);
    let replicas = on_scenario.config.num_replicas;
    let transactions = on_scenario.workload.num_transactions;
    println!("retention: {replicas} replicas, {transactions} txs, GC on …");
    let gc_on = measure_retention(&on_scenario);
    println!("retention: GC off …");
    let gc_off = measure_retention(&off_scenario);

    let identical = gc_on.digests == gc_off.digests
        && gc_on.confirmed == gc_off.confirmed
        && gc_on.events == gc_off.events;
    // Bounded = the GC-on steady state is a plateau well below the GC-off
    // history: the final retained window must be a fraction of what no-GC
    // retains, and no bigger than its own observed peak (no late growth).
    let bounded = gc_on.final_retained * 2 <= gc_off.final_retained.max(1)
        && gc_on.final_retained <= gc_on.peak_retained;
    println!(
        "  GC on : final {:>6} entries (peak {:>6}, peak {:>9} bytes)",
        gc_on.final_retained, gc_on.peak_retained, gc_on.peak_retained_bytes
    );
    println!(
        "  GC off: final {:>6} entries (peak {:>6}, peak {:>9} bytes)",
        gc_off.final_retained, gc_off.peak_retained, gc_off.peak_retained_bytes
    );
    println!("  identical traces: {identical}   bounded: {bounded}");

    println!("recovery: crash-recover one replica …");
    let recovery = measure_recovery(scale);
    println!(
        "  {} replicas: crash at {} ms, restart at {} ms, state transfer installed after {:.1} ms \
         (digests converged: {}, {}/{} confirmed)",
        recovery.replicas,
        recovery.crash_at_ms,
        recovery.recover_at_ms,
        recovery.recovery_latency_ms,
        recovery.digests_converged,
        recovery.confirmed,
        recovery.submitted,
    );

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"checkpoint\",\n  \"scale\": \"{scale:?}\",\n  \"retention\": {{\n    \
         \"replicas\": {replicas},\n    \"transactions\": {transactions},\n    \
         \"gc_on\": {{\"final_retained_entries\": {}, \"peak_retained_entries\": {}, \
         \"peak_retained_bytes\": {}, \"series\": {}}},\n    \
         \"gc_off\": {{\"final_retained_entries\": {}, \"peak_retained_entries\": {}, \
         \"peak_retained_bytes\": {}, \"series\": {}}},\n    \
         \"identical_traces\": {identical},\n    \"bounded\": {bounded}\n  }},\n  \
         \"recovery\": {{\"replicas\": {}, \"crash_at_ms\": {}, \"recover_at_ms\": {}, \
         \"recovery_latency_ms\": {:.3}, \"digests_converged\": {}, \
         \"confirmed\": {}, \"submitted\": {}}}\n}}\n",
        gc_on.final_retained,
        gc_on.peak_retained,
        gc_on.peak_retained_bytes,
        series_json(&gc_on.series),
        gc_off.final_retained,
        gc_off.peak_retained,
        gc_off.peak_retained_bytes,
        series_json(&gc_off.series),
        recovery.replicas,
        recovery.crash_at_ms,
        recovery.recover_at_ms,
        recovery.recovery_latency_ms,
        recovery.digests_converged,
        recovery.confirmed,
        recovery.submitted,
    );

    // Cargo runs benches with the package directory as cwd; the snapshot
    // belongs at the workspace root next to ROADMAP.md.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_checkpoint.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nsnapshot written to {}", path.display()),
        Err(err) => eprintln!("warning: could not write {}: {err}", path.display()),
    }
    if !identical {
        eprintln!("error: GC on/off traces diverged — truncation must be memory-only");
        std::process::exit(1);
    }
    if !bounded {
        eprintln!("error: retained entries did not plateau under checkpoint GC");
        std::process::exit(1);
    }
    if !recovery.digests_converged {
        eprintln!("error: recovered replica did not reconverge to the peer state digest");
        std::process::exit(1);
    }
}
