//! Message-fabric snapshot: quantifies the zero-copy refactor and records the
//! result to `BENCH_msgfabric.json` at the repository root.
//!
//! Two measurements:
//!
//! 1. **Broadcast fan-out microbench** — send one 256-transaction block to 99
//!    recipients, once by deep-copying the batch per recipient (the old
//!    `Vec<Transaction>` payload behaviour) and once by cloning the
//!    `Arc<Block>` handle (the new fabric). A counting global allocator
//!    reports allocations and bytes for each variant.
//! 2. **Macro snapshot** — a reduced fig4_lan-style run (Orthrus, LAN, 4
//!    replicas, 2 000 transactions) recording throughput, latency, bytes on
//!    the wire and events processed, so later PRs can track the trajectory.
//!
//! Run with `cargo bench --bench msgfabric`.

use orthrus_bench::fabric::{self, arc_fanout, deep_clone_fanout, BATCH, RECIPIENTS};
use orthrus_bench::harness::{self, BenchScale, MeasuredPoint};
use orthrus_types::{NetworkKind, ProtocolKind};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A pass-through allocator that counts allocations while enabled.
struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to the system allocator; the counters are
// monotonic atomics with no allocation of their own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
            ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        // SAFETY: same contract as System.alloc — the caller's layout is
        // forwarded untouched.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: delegation only; ptr/layout come from the paired alloc above.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim to the allocator that produced ptr.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Run `f` with allocation counting enabled; returns (allocations, bytes).
fn count_allocs<T>(f: impl FnOnce() -> T) -> (u64, u64) {
    ALLOC_CALLS.store(0, Ordering::Relaxed);
    ALLOC_BYTES.store(0, Ordering::Relaxed);
    COUNTING.store(true, Ordering::Relaxed);
    let out = f();
    COUNTING.store(false, Ordering::Relaxed);
    std::hint::black_box(out);
    (
        ALLOC_CALLS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

fn main() {
    println!("== message-fabric snapshot ==");
    let block = fabric::make_fanout_block();

    let (deep_allocs, deep_bytes) = count_allocs(|| deep_clone_fanout(&block));
    let (arc_allocs, arc_bytes) = count_allocs(|| arc_fanout(&block));
    println!(
        "deep-clone fan-out ({RECIPIENTS} recipients x {BATCH} txs): {deep_allocs} allocations, {deep_bytes} bytes"
    );
    println!(
        "arc fan-out        ({RECIPIENTS} recipients x {BATCH} txs): {arc_allocs} allocations, {arc_bytes} bytes"
    );

    let timings = fabric::run_fabric_benches(&block);
    let (deep, arc) = (&timings.deep, &timings.arc);
    let (cached, uncached) = (&timings.cached, &timings.uncached);

    // Macro snapshot: reduced fig4_lan-style scenario.
    println!();
    println!("running fig4_lan-style macro snapshot (Orthrus, LAN, reduced scale) ...");
    let scenario = harness::paper_scenario(
        ProtocolKind::Orthrus,
        NetworkKind::Lan,
        4,
        0.46,
        false,
        BenchScale::Reduced,
    );
    let wall = std::time::Instant::now();
    let outcome = orthrus_core::run_scenario(&scenario).expect("bench scenario must validate");
    let wall_s = wall.elapsed().as_secs_f64();
    let point = MeasuredPoint::from_outcome("Orthrus", 4.0, &outcome, wall_s * 1e3);
    harness::print_header("fig4_lan snapshot", "replicas");
    harness::print_row(&point);

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"msgfabric\",\n",
            "  \"fanout\": {{\n",
            "    \"recipients\": {},\n",
            "    \"batch_txs\": {},\n",
            "    \"deep_clone\": {{\"allocations\": {}, \"bytes\": {}, \"median_ns\": {:.1}}},\n",
            "    \"arc\": {{\"allocations\": {}, \"bytes\": {}, \"median_ns\": {:.1}}},\n",
            "    \"alloc_reduction\": {:.4},\n",
            "    \"speedup\": {:.2}\n",
            "  }},\n",
            "  \"digest\": {{\n",
            "    \"cached_median_ns\": {:.1},\n",
            "    \"uncached_median_ns\": {:.1}\n",
            "  }},\n",
            "  \"fig4_lan_snapshot\": {{\n",
            "    \"scenario\": \"orthrus_lan_4replicas_reduced\",\n",
            "    \"point\": {},\n",
            "    \"wall_clock_s\": {:.3}\n",
            "  }}\n",
            "}}\n"
        ),
        RECIPIENTS,
        BATCH,
        deep_allocs,
        deep_bytes,
        deep.median_ns,
        arc_allocs,
        arc_bytes,
        arc.median_ns,
        if deep_allocs == 0 {
            0.0
        } else {
            1.0 - arc_allocs as f64 / deep_allocs as f64
        },
        if arc.median_ns == 0.0 {
            0.0
        } else {
            deep.median_ns / arc.median_ns
        },
        cached.median_ns,
        uncached.median_ns,
        point.to_json(),
        wall_s,
    );
    // Cargo runs benches with the package directory as cwd; the snapshot
    // belongs at the workspace root next to ROADMAP.md.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_msgfabric.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nsnapshot written to {}", path.display()),
        Err(err) => eprintln!("warning: could not write {}: {err}", path.display()),
    }
}
