//! Figure 5 (a/b): Orthrus throughput and latency as the proportion of
//! payment transactions varies from 0% to 100%, on a fixed-size WAN
//! deployment, with and without a straggler.
//!
//! The sweep grids come from the spec registry (`scenarios/fig5_*.orth`).

use orthrus_bench::harness::{self, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    for figure in [
        "fig5_payment_share_no_straggler",
        "fig5_payment_share_straggler",
    ] {
        let jobs = harness::registry_jobs(figure, scale);
        harness::print_header(
            &format!(
                "{} ({} replicas)",
                harness::registry_title(figure),
                jobs[0].scenario.config.num_replicas
            ),
            "payment %",
        );
        let points = harness::measure_sweep(&jobs);
        for point in &points {
            harness::print_row(point);
        }
        harness::write_csv(figure, "payment_share_pct", &points);
    }
}
