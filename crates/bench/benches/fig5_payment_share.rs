//! Figure 5 (a/b): Orthrus throughput and latency as the proportion of
//! payment transactions varies from 0% to 100%, on 16 WAN replicas, with and
//! without a straggler.

use orthrus_bench::harness::{self, BenchScale};
use orthrus_types::{NetworkKind, ProtocolKind};

fn main() {
    let scale = BenchScale::from_env();
    let replicas = scale.fixed_replicas();
    for straggler in [false, true] {
        let figure = if straggler {
            "fig5_payment_share_straggler"
        } else {
            "fig5_payment_share_no_straggler"
        };
        harness::print_header(
            &format!(
                "Figure 5 — payment share sweep, {} replicas WAN, {} straggler(s)",
                replicas,
                u32::from(straggler)
            ),
            "payment %",
        );
        let mut points = Vec::new();
        for share_pct in [0u32, 20, 40, 60, 80, 100] {
            let scenario = harness::paper_scenario(
                ProtocolKind::Orthrus,
                NetworkKind::Wan,
                replicas,
                f64::from(share_pct) / 100.0,
                straggler,
                scale,
            );
            let point = harness::measure("Orthrus", f64::from(share_pct), &scenario);
            harness::print_row(&point);
            points.push(point);
        }
        harness::write_csv(figure, "payment_share_pct", &points);
    }
}
