//! Figure 8 (a/b): Orthrus throughput and latency under undetectable faults —
//! "selfish" replicas that keep leading their own instance (so no view-change
//! timeout fires) but refuse to participate in every other instance — sweeping
//! the number of faulty replicas from 0 to f.
//!
//! The grid comes from the spec registry
//! (`scenarios/fig8_undetectable_faults.orth`): the `selfish_count` axis
//! flags replicas from the tail of the replica set so they lead instances
//! other than instance 0.

use orthrus_bench::harness::{self, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    let jobs = harness::registry_jobs("fig8_undetectable_faults", scale);
    harness::print_header(
        &format!(
            "{} ({} replicas)",
            harness::registry_title("fig8_undetectable_faults"),
            jobs[0].scenario.config.num_replicas
        ),
        "faulty",
    );
    let points = harness::measure_sweep(&jobs);
    for point in &points {
        harness::print_row(point);
    }
    harness::write_csv("fig8_undetectable_faults", "faulty_replicas", &points);
}
