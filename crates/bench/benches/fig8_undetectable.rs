//! Figure 8 (a/b): Orthrus throughput and latency under undetectable faults —
//! "selfish" replicas that keep leading their own instance (so no view-change
//! timeout fires) but refuse to participate in every other instance — sweeping
//! the number of faulty replicas from 0 to f.

use orthrus_bench::harness::{self, BenchScale};
use orthrus_sim::FaultPlan;
use orthrus_types::{NetworkKind, ProtocolKind, ReplicaId};

fn main() {
    let scale = BenchScale::from_env();
    let replicas = scale.fixed_replicas();
    let max_faulty = (replicas - 1) / 3;
    harness::print_header(
        &format!("Figure 8 — undetectable (selfish) faults, {replicas} replicas WAN"),
        "faulty",
    );
    let mut points = Vec::new();
    for faulty in 0..=max_faulty {
        let mut scenario = harness::paper_scenario(
            ProtocolKind::Orthrus,
            NetworkKind::Wan,
            replicas,
            0.46,
            false,
            scale,
        );
        let mut plan = FaultPlan::none();
        for f in 0..faulty {
            // Selfish replicas are chosen from the tail of the replica set so
            // they lead instances other than instance 0.
            plan = plan.with_selfish(ReplicaId::new(replicas - 1 - f));
        }
        scenario.faults = plan;
        let point = harness::measure("Orthrus", f64::from(faulty), &scenario);
        harness::print_row(&point);
        points.push(point);
    }
    harness::write_csv("fig8_undetectable_faults", "faulty_replicas", &points);
}
