//! Shared message-fabric micro-benchmark workloads.
//!
//! The broadcast fan-out and digest-memoization measurements are reported by
//! two binaries — `benches/micro.rs` (console) and `benches/msgfabric.rs`
//! (JSON snapshot with allocation counts) — so the single implementation
//! lives here: both run the same code and emit the same bench names.

use crate::timing::{bench, BenchResult};
use orthrus_types::{
    Block, BlockParams, ClientId, Epoch, InstanceId, Rank, ReplicaId, SeqNum, SharedBlock,
    SystemState, Transaction, TxId, View,
};
use std::sync::Arc;

/// Recipients in the fan-out benches (a 100-replica deployment's broadcast).
pub const RECIPIENTS: usize = 99;

/// Transactions per block in the fan-out benches.
pub const BATCH: usize = 256;

/// Build the shared block the fan-out benches broadcast.
pub fn make_fanout_block() -> SharedBlock {
    let batch: Vec<Transaction> = (0..BATCH)
        .map(|i| {
            Transaction::payment(
                TxId::new(ClientId::new(i as u64), 0),
                ClientId::new(i as u64),
                ClientId::new(i as u64 + 1),
                1,
            )
        })
        .collect();
    Arc::new(Block::new(
        BlockParams {
            instance: InstanceId::new(0),
            sn: SeqNum::new(0),
            epoch: Epoch::new(0),
            view: View::new(0),
            proposer: ReplicaId::new(0),
            rank: Rank::new(1),
            state: SystemState::new(4),
        },
        batch,
    ))
}

/// The old fabric's cost: one deep copy of the batch per recipient (what a
/// `Vec<Transaction>` payload paid on every `msg.clone()`).
pub fn deep_clone_fanout(block: &SharedBlock) -> Vec<Vec<Transaction>> {
    (0..RECIPIENTS)
        .map(|_| block.txs.iter().map(|tx| (**tx).clone()).collect())
        .collect()
}

/// The zero-copy fabric's cost: one reference-count bump per recipient.
pub fn arc_fanout(block: &SharedBlock) -> Vec<SharedBlock> {
    (0..RECIPIENTS).map(|_| Arc::clone(block)).collect()
}

/// Timing results of the fan-out and digest benches.
pub struct FabricBenchResults {
    /// Deep-copy fan-out (the pre-refactor behaviour).
    pub deep: BenchResult,
    /// `Arc` fan-out (the zero-copy fabric).
    pub arc: BenchResult,
    /// Memoized header digest (hot path).
    pub cached: BenchResult,
    /// Recomputed header digest (verification path).
    pub uncached: BenchResult,
}

/// Run the fan-out and digest benches against one shared block.
pub fn run_fabric_benches(block: &SharedBlock) -> FabricBenchResults {
    let deep = bench("fanout_deep_clone_99x256tx", 10, || {
        deep_clone_fanout(block)
    });
    let arc = bench("fanout_arc_99x256tx", 10, || arc_fanout(block));
    let _ = block.digest(); // prime the memo
    let cached = bench("header_digest_cached", 10, || block.digest());
    let uncached = bench("header_digest_uncached", 10, || {
        block.header.compute_digest()
    });
    FabricBenchResults {
        deep,
        arc,
        cached,
        uncached,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_shapes() {
        let block = make_fanout_block();
        assert_eq!(block.txs.len(), BATCH);
        let deep = deep_clone_fanout(&block);
        assert_eq!(deep.len(), RECIPIENTS);
        assert_eq!(deep[0].len(), BATCH);
        let arc = arc_fanout(&block);
        assert_eq!(arc.len(), RECIPIENTS);
        assert!(arc.iter().all(|b| Arc::ptr_eq(b, &block)));
    }
}
