//! Shared machinery for the figure-reproduction benches.

use orthrus_core::{run_scenario, Scenario};
use orthrus_sim::FaultPlan;
use orthrus_types::{Duration, NetworkKind, ProtocolKind, ReplicaId};
use orthrus_workload::WorkloadConfig;
use std::fs;
use std::path::PathBuf;

/// How large an experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchScale {
    /// Reduced scale: a few replicas and a few thousand transactions so the
    /// whole suite completes quickly on a laptop.
    Reduced,
    /// The paper's scale: 8–128 replicas and the full 200k-transaction
    /// workload. Enable with `ORTHRUS_FULL_SCALE=1`.
    Full,
}

impl BenchScale {
    /// Pick the scale from the `ORTHRUS_FULL_SCALE` environment variable.
    pub fn from_env() -> Self {
        match std::env::var("ORTHRUS_FULL_SCALE") {
            Ok(value) if value == "1" || value.eq_ignore_ascii_case("true") => BenchScale::Full,
            _ => BenchScale::Reduced,
        }
    }

    /// Replica counts swept by Figures 3 and 4.
    pub fn replica_counts(self) -> Vec<u32> {
        match self {
            BenchScale::Reduced => vec![4, 8, 16],
            BenchScale::Full => vec![8, 16, 32, 64, 128],
        }
    }

    /// Number of transactions per run.
    pub fn transactions(self) -> usize {
        match self {
            BenchScale::Reduced => 2_000,
            BenchScale::Full => 200_000,
        }
    }

    /// Number of accounts in the synthetic trace.
    pub fn accounts(self) -> u64 {
        match self {
            BenchScale::Reduced => 2_000,
            BenchScale::Full => 18_000,
        }
    }

    /// Batch size (the paper uses 4096; the reduced scale uses a smaller
    /// batch so several blocks are produced per instance even with few
    /// transactions).
    pub fn batch_size(self) -> usize {
        match self {
            BenchScale::Reduced => 256,
            BenchScale::Full => 4_096,
        }
    }

    /// Replica count used by the fixed-size experiments (Figs. 5–8 use 16).
    pub fn fixed_replicas(self) -> u32 {
        match self {
            BenchScale::Reduced => 8,
            BenchScale::Full => 16,
        }
    }
}

/// Replica counts for the current scale (convenience wrapper).
pub fn replica_counts() -> Vec<u32> {
    BenchScale::from_env().replica_counts()
}

/// One measured point of a figure series.
#[derive(Debug, Clone)]
pub struct MeasuredPoint {
    /// Protocol label (matches the paper's legends).
    pub protocol: String,
    /// X-axis value (replica count, payment share, time, fault count …).
    pub x: f64,
    /// Throughput in ktps.
    pub throughput_ktps: f64,
    /// Average latency in seconds.
    pub latency_s: f64,
}

/// Build the scenario shared by the figure benches.
pub fn paper_scenario(
    protocol: ProtocolKind,
    network: NetworkKind,
    replicas: u32,
    payment_share: f64,
    straggler: bool,
    scale: BenchScale,
) -> Scenario {
    let workload = WorkloadConfig {
        num_accounts: scale.accounts(),
        num_transactions: scale.transactions(),
        payment_share,
        multi_payer_share: 0.05,
        num_shared_objects: 256,
        ..WorkloadConfig::default()
    };
    let mut scenario = Scenario::new(protocol, network, replicas)
        .with_workload(workload)
        .with_seed(42);
    scenario.config.batch_size = scale.batch_size();
    scenario.config.batch_timeout = Duration::from_millis(50);
    scenario.submission_window = Duration::from_secs(5);
    scenario.max_sim_time = Duration::from_secs(600);
    scenario.num_clients = 8;
    if straggler {
        scenario.faults = FaultPlan::one_straggler(ReplicaId::new(0));
    }
    scenario
}

/// Run one scenario and convert the outcome into a measured point.
pub fn measure(label: &str, x: f64, scenario: &Scenario) -> MeasuredPoint {
    let outcome = run_scenario(scenario);
    MeasuredPoint {
        protocol: label.to_string(),
        x,
        throughput_ktps: outcome.throughput_ktps,
        latency_s: outcome.avg_latency.as_secs_f64(),
    }
}

/// Print the header of a figure table.
pub fn print_header(figure: &str, x_label: &str) {
    println!();
    println!("=== {figure} ===");
    println!(
        "{:<10} {:>12} {:>16} {:>14}",
        "protocol", x_label, "throughput ktps", "latency s"
    );
}

/// Print one row of a figure table.
pub fn print_row(point: &MeasuredPoint) {
    println!(
        "{:<10} {:>12.2} {:>16.3} {:>14.3}",
        point.protocol, point.x, point.throughput_ktps, point.latency_s
    );
}

/// Location of the CSV output for a figure.
pub fn figure_csv_path(figure: &str) -> PathBuf {
    let dir = PathBuf::from("target").join("figures");
    let _ = fs::create_dir_all(&dir);
    dir.join(format!("{figure}.csv"))
}

/// Write the measured series of a figure to `target/figures/<figure>.csv`.
pub fn write_csv(figure: &str, x_label: &str, points: &[MeasuredPoint]) {
    let mut csv = format!("protocol,{x_label},throughput_ktps,latency_s\n");
    for p in points {
        csv.push_str(&format!(
            "{},{},{},{}\n",
            p.protocol, p.x, p.throughput_ktps, p.latency_s
        ));
    }
    let path = figure_csv_path(figure);
    if let Err(err) = fs::write(&path, csv) {
        eprintln!("warning: could not write {}: {err}", path.display());
    } else {
        println!("(series written to {})", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_scale_is_small() {
        let scale = BenchScale::Reduced;
        assert!(scale.replica_counts().iter().all(|n| *n <= 16));
        assert!(scale.transactions() <= 10_000);
    }

    #[test]
    fn full_scale_matches_the_paper() {
        let scale = BenchScale::Full;
        assert_eq!(scale.replica_counts(), vec![8, 16, 32, 64, 128]);
        assert_eq!(scale.transactions(), 200_000);
        assert_eq!(scale.accounts(), 18_000);
        assert_eq!(scale.batch_size(), 4_096);
        assert_eq!(scale.fixed_replicas(), 16);
    }

    #[test]
    fn scenario_builder_applies_parameters() {
        let s = paper_scenario(
            ProtocolKind::Orthrus,
            NetworkKind::Wan,
            8,
            0.46,
            true,
            BenchScale::Reduced,
        );
        assert_eq!(s.config.num_replicas, 8);
        assert_eq!(s.workload.payment_share, 0.46);
        assert_eq!(s.faults.stragglers.len(), 1);
        assert_eq!(s.config.batch_size, BenchScale::Reduced.batch_size());
    }

    #[test]
    fn csv_path_is_under_target() {
        let path = figure_csv_path("fig_test");
        assert!(path.to_string_lossy().contains("figures"));
    }
}
