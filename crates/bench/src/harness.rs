//! Shared machinery for the figure-reproduction benches.

use orthrus_core::{parallel_map, run_scenario, sweep_threads, Scenario, ScenarioOutcome};
use orthrus_lab::{registry, SpecScale};
use orthrus_sim::FaultPlan;
use orthrus_types::{Duration, NetworkKind, ProtocolKind, ReplicaId};
use orthrus_workload::WorkloadConfig;
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

/// How large an experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchScale {
    /// Reduced scale: a few replicas and a few thousand transactions so the
    /// whole suite completes quickly on a laptop.
    Reduced,
    /// The paper's scale: 8–128 replicas and the full 200k-transaction
    /// workload. Enable with `ORTHRUS_FULL_SCALE=1`.
    Full,
}

impl BenchScale {
    /// Pick the scale from the `ORTHRUS_FULL_SCALE` environment variable
    /// (delegates to [`SpecScale::from_env`] so the CLI and the benches can
    /// never disagree on the convention).
    pub fn from_env() -> Self {
        match SpecScale::from_env() {
            SpecScale::Reduced => BenchScale::Reduced,
            SpecScale::Full => BenchScale::Full,
        }
    }

    /// Replica counts swept by Figures 3 and 4.
    pub fn replica_counts(self) -> Vec<u32> {
        match self {
            BenchScale::Reduced => vec![4, 8, 16],
            BenchScale::Full => vec![8, 16, 32, 64, 128],
        }
    }

    /// Number of transactions per run.
    pub fn transactions(self) -> usize {
        match self {
            BenchScale::Reduced => 2_000,
            BenchScale::Full => 200_000,
        }
    }

    /// Number of accounts in the synthetic trace.
    pub fn accounts(self) -> u64 {
        match self {
            BenchScale::Reduced => 2_000,
            BenchScale::Full => 18_000,
        }
    }

    /// Batch size (the paper uses 4096; the reduced scale uses a smaller
    /// batch so several blocks are produced per instance even with few
    /// transactions).
    pub fn batch_size(self) -> usize {
        match self {
            BenchScale::Reduced => 256,
            BenchScale::Full => 4_096,
        }
    }

    /// Replica count used by the fixed-size experiments (Figs. 5–8 use 16).
    pub fn fixed_replicas(self) -> u32 {
        match self {
            BenchScale::Reduced => 8,
            BenchScale::Full => 16,
        }
    }

    /// The matching spec-lowering scale (registry sweeps apply their
    /// `[full_scale]` overrides at [`BenchScale::Full`]).
    pub fn spec_scale(self) -> SpecScale {
        match self {
            BenchScale::Reduced => SpecScale::Reduced,
            BenchScale::Full => SpecScale::Full,
        }
    }
}

/// Replica counts for the current scale (convenience wrapper).
pub fn replica_counts() -> Vec<u32> {
    BenchScale::from_env().replica_counts()
}

/// One measured point of a figure series.
///
/// Carries enough raw counters that downstream tooling can track the perf
/// trajectory across PRs without re-running the scenario (see
/// [`write_json`]).
#[derive(Debug, Clone)]
pub struct MeasuredPoint {
    /// Protocol label (matches the paper's legends).
    pub protocol: String,
    /// X-axis value (replica count, payment share, time, fault count …).
    pub x: f64,
    /// Throughput in ktps.
    pub throughput_ktps: f64,
    /// Average latency in seconds.
    pub latency_s: f64,
    /// 99th-percentile latency in seconds.
    pub p99_latency_s: f64,
    /// Transactions confirmed / submitted.
    pub confirmed: usize,
    /// Transactions submitted.
    pub submitted: usize,
    /// Protocol bytes sent over the simulated network.
    pub bytes_sent: u64,
    /// Simulation events dispatched.
    pub events_processed: u64,
    /// Largest number of events simultaneously waiting in the engine queue.
    pub peak_queue_len: u64,
    /// Wall-clock time the scenario took to simulate, in milliseconds
    /// (`0` when the point was built from an outcome without timing it).
    /// Measured under whatever concurrency the sweep ran with, so points
    /// timed on a busy pool include contention — compare trajectories only
    /// across runs with the same `ORTHRUS_SWEEP_THREADS` setting.
    pub wall_clock_ms: f64,
    /// Objects per executor state shard at the end of the run (replica 0;
    /// account shards first, shared-object shard last).
    pub shard_objects: Vec<u64>,
    /// Successful store mutations per executor state shard (same layout as
    /// `shard_objects`). Under a skewed hot-account workload the spread of
    /// these counters *is* the shard imbalance.
    pub shard_ops: Vec<u64>,
    /// Log entries (plog blocks + glog payloads + PBFT slots) replica 0
    /// still retained at the end of the run. With checkpoint GC on this
    /// plateaus at the in-flight window; with GC off it grows with the run —
    /// bounded memory as a measured claim, not an assertion.
    pub retained_plog_entries: u64,
    /// Peak retained partial/global-log bytes over the run (replica 0).
    pub peak_retained_bytes: u64,
    /// Mean time (µs) a globally confirmed block waited in the glog pending
    /// region before executing (all replicas pooled). Quantifies the §V-C
    /// alignment stall for Orthrus; queueing only for the baselines.
    pub glog_wait_mean_us: f64,
    /// Worst single glog wait (µs) on any replica.
    pub glog_wait_max_us: u64,
}

/// Imbalance of the per-shard op counters (`MeasuredPoint::shard_ops`
/// layout: account shards first, shared-object shard last): the hottest
/// account shard's load as a multiple of the mean across account shards.
/// Returns 0.0 when no account ops were recorded. 1.0 means perfectly even;
/// a hot-account workload (zipf ≥ 1.2) pushes this well above 1.
pub fn shard_imbalance(shard_ops: &[u64]) -> f64 {
    let account_ops = &shard_ops[..shard_ops.len().saturating_sub(1)];
    let total: u64 = account_ops.iter().sum();
    if total == 0 {
        return 0.0;
    }
    *account_ops
        .iter()
        .max()
        .expect("total > 0 implies non-empty") as f64
        * account_ops.len() as f64
        / total as f64
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
/// Labels normally come from `ProtocolKind::label`, but the `orthrus` CLI
/// feeds user-authored spec labels through here too.
fn escape_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a `u64` slice as a JSON array.
fn json_u64_array(values: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

impl MeasuredPoint {
    /// Build a point from a finished scenario outcome. The single place a
    /// point is assembled — every bench and the `orthrus` CLI go through it.
    /// Pass `0.0` for `wall_clock_ms` when the run was not timed.
    pub fn from_outcome(
        label: &str,
        x: f64,
        outcome: &ScenarioOutcome,
        wall_clock_ms: f64,
    ) -> Self {
        Self {
            protocol: label.to_string(),
            x,
            throughput_ktps: outcome.throughput_ktps,
            latency_s: outcome.avg_latency.as_secs_f64(),
            p99_latency_s: outcome.p99_latency.as_secs_f64(),
            confirmed: outcome.confirmed,
            submitted: outcome.submitted,
            bytes_sent: outcome.report.bytes_sent,
            events_processed: outcome.report.events_processed,
            peak_queue_len: outcome.report.peak_queue_len,
            wall_clock_ms,
            shard_objects: outcome.shard_objects.clone(),
            shard_ops: outcome.shard_ops.clone(),
            retained_plog_entries: outcome.retained_plog_entries,
            peak_retained_bytes: outcome.peak_retained_bytes,
            glog_wait_mean_us: outcome.glog_wait_mean_us,
            glog_wait_max_us: outcome.glog_wait_max_us,
        }
    }

    /// Serialize the point as one JSON object (hand-rolled; the workspace
    /// builds without serde).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"protocol\":\"{}\",\"x\":{},\"throughput_ktps\":{:.6},",
                "\"avg_latency_s\":{:.6},\"p99_latency_s\":{:.6},",
                "\"confirmed\":{},\"submitted\":{},",
                "\"bytes_sent\":{},\"events_processed\":{},",
                "\"peak_queue_len\":{},\"wall_clock_ms\":{:.3},",
                "\"shard_objects\":{},\"shard_ops\":{},",
                "\"retained_plog_entries\":{},\"peak_retained_bytes\":{},",
                "\"glog_wait_mean_us\":{:.3},\"glog_wait_max_us\":{}}}"
            ),
            escape_json(&self.protocol),
            self.x,
            self.throughput_ktps,
            self.latency_s,
            self.p99_latency_s,
            self.confirmed,
            self.submitted,
            self.bytes_sent,
            self.events_processed,
            self.peak_queue_len,
            self.wall_clock_ms,
            json_u64_array(&self.shard_objects),
            json_u64_array(&self.shard_ops),
            self.retained_plog_entries,
            self.peak_retained_bytes,
            self.glog_wait_mean_us,
            self.glog_wait_max_us,
        )
    }
}

/// Build the scenario shared by the figure benches.
pub fn paper_scenario(
    protocol: ProtocolKind,
    network: NetworkKind,
    replicas: u32,
    payment_share: f64,
    straggler: bool,
    scale: BenchScale,
) -> Scenario {
    let workload = WorkloadConfig {
        num_accounts: scale.accounts(),
        num_transactions: scale.transactions(),
        payment_share,
        multi_payer_share: 0.05,
        num_shared_objects: 256,
        ..WorkloadConfig::default()
    };
    let mut scenario = Scenario::new(protocol, network, replicas)
        .with_workload(workload)
        .with_seed(42);
    scenario.config.batch_size = scale.batch_size();
    scenario.config.batch_timeout = Duration::from_millis(50);
    scenario.submission_window = Duration::from_secs(5);
    scenario.max_sim_time = Duration::from_secs(600);
    scenario.num_clients = 8;
    if straggler {
        scenario.faults = FaultPlan::one_straggler(ReplicaId::new(0));
    }
    scenario
}

/// Run one scenario and convert the outcome into a measured point.
///
/// Panics on an invalid scenario: bench grids are checked-in data validated
/// by the spec lint, so an invalid point is a bug in the harness, not input.
pub fn measure(label: &str, x: f64, scenario: &Scenario) -> MeasuredPoint {
    let wall = Instant::now();
    let outcome = run_scenario(scenario).expect("bench scenario must validate");
    MeasuredPoint::from_outcome(label, x, &outcome, wall.elapsed().as_secs_f64() * 1e3)
}

/// One labelled point of a sweep: a scenario plus its series label and
/// x-axis value.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Protocol label (matches the paper's legends).
    pub label: String,
    /// X-axis value of the point.
    pub x: f64,
    /// The scenario to run.
    pub scenario: Scenario,
}

impl SweepJob {
    /// Build a sweep job.
    pub fn new(label: &str, x: f64, scenario: Scenario) -> Self {
        Self {
            label: label.to_string(),
            x,
            scenario,
        }
    }
}

impl From<orthrus_lab::LoweredPoint> for SweepJob {
    fn from(point: orthrus_lab::LoweredPoint) -> Self {
        Self {
            label: point.label,
            x: point.x,
            scenario: point.scenario,
        }
    }
}

/// Lower a named registry spec into sweep jobs at the given scale. The
/// figure benches pull their grids from here, so the grid definitions live
/// in `scenarios/*.orth` instead of per-bench Rust.
///
/// Panics when the entry is missing or does not lower: registry sources are
/// embedded and pinned by golden tests, so that is a build defect.
pub fn registry_jobs(name: &str, scale: BenchScale) -> Vec<SweepJob> {
    let spec = registry::spec(name)
        .unwrap_or_else(|err| panic!("registry spec {name:?} failed to parse: {err}"));
    spec.lower(scale.spec_scale())
        .unwrap_or_else(|err| panic!("registry spec {name:?} failed to lower: {err}"))
        .into_iter()
        .map(SweepJob::from)
        .collect()
}

/// The human-readable title of a registry spec (falls back to the name).
/// Bench banners print this instead of hard-coding grid facts that now live
/// in the spec files — editing a `.orth` file cannot leave a stale banner.
pub fn registry_title(name: &str) -> String {
    registry::spec(name)
        .ok()
        .and_then(|spec| spec.title().map(str::to_string))
        .unwrap_or_else(|| name.to_string())
}

/// Run a sweep of independent scenario points on the scoped thread pool
/// (`orthrus_core::parallel_map`), one deterministic seeded simulation per
/// worker. Results come back in input order, so figure series are stable
/// regardless of thread count; set `ORTHRUS_SWEEP_THREADS` to override the
/// worker count.
pub fn measure_sweep(jobs: &[SweepJob]) -> Vec<MeasuredPoint> {
    measure_sweep_with_threads(jobs, sweep_threads())
}

/// [`measure_sweep`] with an explicit worker count.
pub fn measure_sweep_with_threads(jobs: &[SweepJob], threads: usize) -> Vec<MeasuredPoint> {
    parallel_map(jobs, threads, |job| {
        measure(&job.label, job.x, &job.scenario)
    })
}

/// Print the header of a figure table.
pub fn print_header(figure: &str, x_label: &str) {
    println!();
    println!("=== {figure} ===");
    println!(
        "{:<10} {:>12} {:>16} {:>14}",
        "protocol", x_label, "throughput ktps", "latency s"
    );
}

/// Print one row of a figure table.
pub fn print_row(point: &MeasuredPoint) {
    println!(
        "{:<10} {:>12.2} {:>16.3} {:>14.3}",
        point.protocol, point.x, point.throughput_ktps, point.latency_s
    );
}

/// Location of the CSV output for a figure. Anchored at the workspace root's
/// `target/figures/` regardless of the bench binary's working directory
/// (cargo runs benches with the package directory as cwd).
pub fn figure_csv_path(figure: &str) -> PathBuf {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("target")
        .join("figures");
    let _ = fs::create_dir_all(&dir);
    dir.join(format!("{figure}.csv"))
}

/// Write the measured series of a figure to `target/figures/<figure>.csv`,
/// plus a machine-readable JSON twin at `target/figures/<figure>.json` so
/// future PRs can diff the perf trajectory.
pub fn write_csv(figure: &str, x_label: &str, points: &[MeasuredPoint]) {
    let mut csv = format!("protocol,{x_label},throughput_ktps,latency_s\n");
    for p in points {
        csv.push_str(&format!(
            "{},{},{},{}\n",
            p.protocol, p.x, p.throughput_ktps, p.latency_s
        ));
    }
    let path = figure_csv_path(figure);
    if let Err(err) = fs::write(&path, csv) {
        eprintln!("warning: could not write {}: {err}", path.display());
    } else {
        println!("(series written to {})", path.display());
    }
    write_json(figure, x_label, points);
}

/// Location of the JSON output for a figure.
pub fn figure_json_path(figure: &str) -> PathBuf {
    figure_csv_path(figure).with_extension("json")
}

/// Serialize a measured series as a JSON document.
pub fn series_json(figure: &str, x_label: &str, points: &[MeasuredPoint]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"figure\": \"{}\",\n  \"x_label\": \"{}\",\n  \"points\": [",
        escape_json(figure),
        escape_json(x_label)
    );
    for (i, p) in points.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    {}", p.to_json());
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Write the measured series of a figure to `target/figures/<figure>.json`.
pub fn write_json(figure: &str, x_label: &str, points: &[MeasuredPoint]) {
    let path = figure_json_path(figure);
    if let Err(err) = fs::write(&path, series_json(figure, x_label, points)) {
        eprintln!("warning: could not write {}: {err}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_scale_is_small() {
        let scale = BenchScale::Reduced;
        assert!(scale.replica_counts().iter().all(|n| *n <= 16));
        assert!(scale.transactions() <= 10_000);
    }

    #[test]
    fn full_scale_matches_the_paper() {
        let scale = BenchScale::Full;
        assert_eq!(scale.replica_counts(), vec![8, 16, 32, 64, 128]);
        assert_eq!(scale.transactions(), 200_000);
        assert_eq!(scale.accounts(), 18_000);
        assert_eq!(scale.batch_size(), 4_096);
        assert_eq!(scale.fixed_replicas(), 16);
    }

    #[test]
    fn scenario_builder_applies_parameters() {
        let s = paper_scenario(
            ProtocolKind::Orthrus,
            NetworkKind::Wan,
            8,
            0.46,
            true,
            BenchScale::Reduced,
        );
        assert_eq!(s.config.num_replicas, 8);
        assert_eq!(s.workload.payment_share, 0.46);
        assert_eq!(s.faults.stragglers.len(), 1);
        assert_eq!(s.config.batch_size, BenchScale::Reduced.batch_size());
    }

    #[test]
    fn registry_jobs_cover_the_fig3_grid() {
        let jobs = registry_jobs("fig3ab_wan_no_straggler", BenchScale::Reduced);
        // 3 replica counts × 6 protocols, replica axis outermost.
        assert_eq!(jobs.len(), 18);
        assert_eq!(jobs[0].x, 4.0);
        assert_eq!(jobs[0].label, "Orthrus");
        assert_eq!(jobs[17].x, 16.0);
        assert_eq!(jobs[17].label, "Ladon");
        let full = registry_jobs("fig3ab_wan_no_straggler", BenchScale::Full);
        assert_eq!(full.len(), 30);
        assert_eq!(full[29].x, 128.0);
        assert_eq!(
            full[0].scenario.workload.num_transactions,
            BenchScale::Full.transactions()
        );
    }

    #[test]
    fn csv_path_is_under_target() {
        let path = figure_csv_path("fig_test");
        assert!(path.to_string_lossy().contains("figures"));
        assert_eq!(figure_json_path("fig_test").extension().unwrap(), "json");
    }

    #[test]
    fn json_labels_are_escaped() {
        assert_eq!(escape_json("Orthrus"), "Orthrus");
        assert_eq!(escape_json("say \"hi\"\\"), "say \\\"hi\\\"\\\\");
        assert_eq!(escape_json("a\nb"), "a\\u000ab");
    }

    #[test]
    fn series_json_is_well_formed() {
        let point = MeasuredPoint {
            protocol: "Orthrus".into(),
            x: 8.0,
            throughput_ktps: 1.25,
            latency_s: 0.5,
            p99_latency_s: 0.9,
            confirmed: 2_000,
            submitted: 2_000,
            bytes_sent: 123_456,
            events_processed: 789,
            peak_queue_len: 321,
            wall_clock_ms: 12.5,
            shard_objects: vec![10, 12, 3],
            shard_ops: vec![100, 90, 4],
            retained_plog_entries: 17,
            peak_retained_bytes: 4_096,
            glog_wait_mean_us: 42.5,
            glog_wait_max_us: 120,
        };
        let doc = series_json("fig_test", "replicas", &[point.clone(), point]);
        // Structural sanity without a JSON parser: balanced braces/brackets,
        // the expected keys, and exactly two point objects.
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
        assert_eq!(doc.matches("\"protocol\":\"Orthrus\"").count(), 2);
        for key in [
            "\"figure\"",
            "\"x_label\"",
            "\"points\"",
            "\"throughput_ktps\"",
            "\"p99_latency_s\"",
            "\"bytes_sent\"",
            "\"events_processed\"",
            "\"peak_queue_len\"",
            "\"wall_clock_ms\"",
            "\"shard_objects\":[10,12,3]",
            "\"shard_ops\":[100,90,4]",
            "\"retained_plog_entries\":17",
            "\"peak_retained_bytes\":4096",
            "\"glog_wait_mean_us\":42.500",
            "\"glog_wait_max_us\":120",
        ] {
            assert!(doc.contains(key), "missing {key} in {doc}");
        }
    }

    #[test]
    fn sweep_points_come_back_in_input_order_for_any_thread_count() {
        let scale = BenchScale::Reduced;
        let jobs: Vec<SweepJob> = [4u32, 8]
            .into_iter()
            .map(|n| {
                let scenario = paper_scenario(
                    ProtocolKind::Orthrus,
                    NetworkKind::Lan,
                    n,
                    0.46,
                    false,
                    scale,
                );
                SweepJob::new("Orthrus", f64::from(n), scenario)
            })
            .collect();
        let serial = measure_sweep_with_threads(&jobs, 1);
        let pooled = measure_sweep_with_threads(&jobs, 2);
        assert_eq!(serial.len(), 2);
        for ((s, p), job) in serial.iter().zip(&pooled).zip(&jobs) {
            assert_eq!(s.x, job.x);
            assert_eq!(p.x, job.x);
            // Wall clock differs run to run; everything simulated must not.
            assert_eq!(s.throughput_ktps, p.throughput_ktps);
            assert_eq!(s.events_processed, p.events_processed);
            assert_eq!(s.peak_queue_len, p.peak_queue_len);
        }
    }
}
