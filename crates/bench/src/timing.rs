//! A minimal wall-clock micro-benchmark harness.
//!
//! The workspace builds offline without external crates, so the benches that
//! previously used `criterion` run through this module instead: adaptive
//! iteration counts, median-of-samples reporting, and a machine-readable
//! line format that `BENCH_msgfabric.json` and future trend tooling can
//! consume.

use std::time::{Duration, Instant};

/// Result of one micro-benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Name of the benchmark.
    pub name: String,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Median nanoseconds per iteration across samples.
    pub median_ns: f64,
    /// Minimum nanoseconds per iteration across samples.
    pub min_ns: f64,
}

impl BenchResult {
    /// Render the result as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"iters\":{},\"median_ns\":{:.1},\"min_ns\":{:.1}}}",
            self.name, self.iters_per_sample, self.median_ns, self.min_ns
        )
    }
}

/// Time `f`, choosing an iteration count so each sample runs ≈50 ms, and
/// report the median over `samples` samples. The closure's return value is
/// passed through `std::hint::black_box` so the optimizer cannot delete the
/// measured work.
pub fn bench<T, F: FnMut() -> T>(name: &str, samples: u32, mut f: F) -> BenchResult {
    // Warm-up and calibration: find how long one iteration takes.
    let start = Instant::now();
    std::hint::black_box(f());
    let one = start.elapsed().max(Duration::from_nanos(20));
    let target = Duration::from_millis(50);
    let iters = (target.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        per_iter.push(elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let result = BenchResult {
        name: name.to_string(),
        iters_per_sample: iters,
        median_ns: median,
        min_ns: min,
    };
    println!(
        "{:<44} {:>12.1} ns/iter (median, {} iters x {} samples)",
        result.name, result.median_ns, iters, samples
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something() {
        let r = bench("noop_sum", 3, || (0..100u64).sum::<u64>());
        assert!(r.median_ns > 0.0);
        assert!(r.min_ns <= r.median_ns);
        assert!(r.to_json().contains("noop_sum"));
    }
}
