//! # orthrus-bench
//!
//! The benchmark harness that regenerates every figure of the paper's
//! evaluation (§VII) plus micro-benchmarks and ablations.
//!
//! Each figure has a dedicated `cargo bench` target (see `benches/`). All of
//! them go through the [`harness`] module here, which:
//!
//! * builds the scenarios (protocols × replica counts × fault plans) with the
//!   paper's parameters (batch size 4096, 500-byte payloads, 46% payments,
//!   10× straggler, 10 s view-change timeout);
//! * scales the experiment down by default so `cargo bench` finishes in
//!   minutes — set `ORTHRUS_FULL_SCALE=1` to run the full 8–128 replica
//!   sweep with the full 200k-transaction workload;
//! * prints the same series the paper plots and writes CSV files to
//!   `target/figures/` so results can be plotted and compared against the
//!   paper (see `EXPERIMENTS.md`).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod fabric;
pub mod harness;
pub mod timing;

pub use timing::{bench, BenchResult};

pub use harness::{
    figure_csv_path, figure_json_path, measure, measure_sweep, measure_sweep_with_threads,
    print_header, print_row, replica_counts, series_json, write_csv, write_json, BenchScale,
    MeasuredPoint, SweepJob,
};
