//! The Multi-BFT system state `S = (sn_0, sn_1, …, sn_{m-1})` (paper §III-D).
//!
//! The state of the system — as observed by one replica — is the vector of
//! the maximum sequence numbers delivered by each SB instance. Leaders embed
//! the state they observed into every block they propose (`b.S`); backups use
//! it to re-validate the block's transactions against the same baseline, and
//! the execution module uses it to decide when a block's prerequisites are
//! satisfied (Appendix B's running example: block 0 of instance 1 refers to
//! `S = {0, ⊥}` so that Bob's debit is evaluated after Alice's payment to
//! Bob).

use crate::ids::{InstanceId, SeqNum};
use std::fmt;

/// Per-instance high-water marks of delivered sequence numbers.
///
/// `None` (⊥ in the paper) means the instance has not delivered any block
/// yet; `Some(sn)` means blocks `0..=sn` of that instance have been
/// delivered.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SystemState {
    delivered: Vec<Option<SeqNum>>,
}

impl SystemState {
    /// The empty state for a system with `m` instances (all ⊥).
    pub fn new(m: usize) -> Self {
        Self {
            delivered: vec![None; m],
        }
    }

    /// Number of instances tracked by this state.
    #[inline]
    pub fn num_instances(&self) -> usize {
        self.delivered.len()
    }

    /// Highest delivered sequence number for `instance`, or `None` if nothing
    /// has been delivered yet (or the instance is out of range).
    #[inline]
    pub fn get(&self, instance: InstanceId) -> Option<SeqNum> {
        self.delivered.get(instance.as_usize()).copied().flatten()
    }

    /// Record that `instance` has delivered up to `sn` (monotone: the stored
    /// high-water mark never decreases).
    pub fn observe(&mut self, instance: InstanceId, sn: SeqNum) {
        let idx = instance.as_usize();
        if idx >= self.delivered.len() {
            self.delivered.resize(idx + 1, None);
        }
        let slot = &mut self.delivered[idx];
        match slot {
            Some(current) if *current >= sn => {}
            _ => *slot = Some(sn),
        }
    }

    /// Does `self` cover `other`, i.e. has every instance delivered at least
    /// as far in `self` as in `other`?
    ///
    /// A block whose referenced state `b.S` is covered by the replica's
    /// current state can be executed: all of its prerequisites have been
    /// delivered locally (paper §V-C: "the escrow is performed on the system
    /// state `b.S` referred to by the transaction or any subsequent state
    /// derived from it").
    pub fn covers(&self, other: &SystemState) -> bool {
        for (idx, needed) in other.delivered.iter().enumerate() {
            if let Some(needed_sn) = needed {
                match self.delivered.get(idx).copied().flatten() {
                    Some(have) if have >= *needed_sn => {}
                    _ => return false,
                }
            }
        }
        true
    }

    /// Point-wise maximum of two states.
    pub fn merge(&self, other: &SystemState) -> SystemState {
        let len = self.delivered.len().max(other.delivered.len());
        let mut merged = Vec::with_capacity(len);
        for idx in 0..len {
            let a = self.delivered.get(idx).copied().flatten();
            let b = other.delivered.get(idx).copied().flatten();
            merged.push(match (a, b) {
                (Some(x), Some(y)) => Some(x.max(y)),
                (Some(x), None) => Some(x),
                (None, Some(y)) => Some(y),
                (None, None) => None,
            });
        }
        SystemState { delivered: merged }
    }

    /// Total number of blocks delivered across all instances according to
    /// this state (sequence numbers start at 0, so instance `i` at `Some(sn)`
    /// has delivered `sn + 1` blocks).
    pub fn total_delivered_blocks(&self) -> u64 {
        self.delivered
            .iter()
            .map(|slot| slot.map_or(0, |sn| sn.value() + 1))
            .sum()
    }

    /// Iterate over `(instance, delivered)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (InstanceId, Option<SeqNum>)> + '_ {
        self.delivered
            .iter()
            .enumerate()
            .map(|(i, sn)| (InstanceId::new(i as u32), *sn))
    }
}

impl fmt::Display for SystemState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S(")?;
        for (i, slot) in self.delivered.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            match slot {
                Some(sn) => write!(f, "{}", sn.value())?,
                None => write!(f, "⊥")?,
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(i: u32) -> InstanceId {
        InstanceId::new(i)
    }
    fn sn(v: u64) -> SeqNum {
        SeqNum::new(v)
    }

    #[test]
    fn new_state_is_all_bottom() {
        let s = SystemState::new(3);
        assert_eq!(s.num_instances(), 3);
        for i in 0..3 {
            assert_eq!(s.get(inst(i)), None);
        }
        assert_eq!(s.total_delivered_blocks(), 0);
    }

    #[test]
    fn observe_is_monotone() {
        let mut s = SystemState::new(2);
        s.observe(inst(0), sn(3));
        assert_eq!(s.get(inst(0)), Some(sn(3)));
        s.observe(inst(0), sn(1)); // stale observation must not regress
        assert_eq!(s.get(inst(0)), Some(sn(3)));
        s.observe(inst(0), sn(5));
        assert_eq!(s.get(inst(0)), Some(sn(5)));
    }

    #[test]
    fn observe_grows_the_vector_when_needed() {
        let mut s = SystemState::new(1);
        s.observe(inst(4), sn(0));
        assert_eq!(s.get(inst(4)), Some(sn(0)));
        assert!(s.num_instances() >= 5);
    }

    #[test]
    fn covers_reflexive_and_partial_order() {
        let mut a = SystemState::new(2);
        a.observe(inst(0), sn(2));
        let mut b = SystemState::new(2);
        b.observe(inst(0), sn(1));

        assert!(a.covers(&a));
        assert!(a.covers(&b));
        assert!(!b.covers(&a));
        // Incomparable states: each is ahead on a different instance.
        let mut c = SystemState::new(2);
        c.observe(inst(1), sn(0));
        assert!(!b.covers(&c));
        assert!(!c.covers(&b));
    }

    #[test]
    fn empty_requirement_is_always_covered() {
        let empty = SystemState::new(4);
        let s = SystemState::new(0);
        assert!(s.covers(&empty));
        assert!(empty.covers(&SystemState::new(0)));
    }

    #[test]
    fn merge_takes_pointwise_max() {
        let mut a = SystemState::new(3);
        a.observe(inst(0), sn(5));
        a.observe(inst(1), sn(1));
        let mut b = SystemState::new(3);
        b.observe(inst(1), sn(4));
        b.observe(inst(2), sn(0));
        let m = a.merge(&b);
        assert_eq!(m.get(inst(0)), Some(sn(5)));
        assert_eq!(m.get(inst(1)), Some(sn(4)));
        assert_eq!(m.get(inst(2)), Some(sn(0)));
        assert!(m.covers(&a));
        assert!(m.covers(&b));
    }

    #[test]
    fn total_delivered_counts_blocks_not_sequence_numbers() {
        let mut s = SystemState::new(2);
        s.observe(inst(0), sn(0)); // one block delivered
        s.observe(inst(1), sn(2)); // three blocks delivered
        assert_eq!(s.total_delivered_blocks(), 4);
    }

    #[test]
    fn display_uses_bottom_symbol() {
        let mut s = SystemState::new(2);
        s.observe(inst(0), sn(0));
        assert_eq!(s.to_string(), "S(0,⊥)");
    }
}
