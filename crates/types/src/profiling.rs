//! The one sanctioned wall-clock doorway for profiling instrumentation.
//!
//! The simulator runs on logical time; real (wall) time must never influence
//! behavior, only *observability* — phase timings reported by `--profile`
//! runs and the STM scheduler's statistics. Every such site goes through
//! [`ProfTimer`] so the static analyzer's `wall-clock` rule has exactly one
//! suppression in the whole deterministic workspace (this file), and a
//! grep for `Instant::now` outside `crates/bench` lands here.
//!
//! A disabled timer ([`ProfTimer::maybe`] with `false`, or
//! [`ProfTimer::off`]) never reads the clock at all, so profiling is
//! genuinely zero-cost when off — important for the engine's inner window
//! loop, which constructs one of these per window.

/// An optional wall-clock stopwatch for profiling-only measurements.
///
/// The reading is reported in statistics, never fed back into scheduling or
/// state: nothing deterministic may depend on it.
#[derive(Debug, Clone, Copy)]
pub struct ProfTimer(Option<std::time::Instant>);

impl ProfTimer {
    /// A running timer, started now.
    #[must_use]
    pub fn started() -> Self {
        // orthrus: allow(wall-clock): the single sanctioned profiling doorway — readings feed stats/reporting only, never control flow or state.
        ProfTimer(Some(std::time::Instant::now()))
    }

    /// A disabled timer: never reads the clock, reports zero.
    #[must_use]
    pub fn off() -> Self {
        ProfTimer(None)
    }

    /// Started when `enabled`, disabled otherwise — the `profile`-flag
    /// pattern.
    #[must_use]
    pub fn maybe(enabled: bool) -> Self {
        if enabled {
            Self::started()
        } else {
            Self::off()
        }
    }

    /// Whether this timer is actually counting.
    #[must_use]
    pub fn active(&self) -> bool {
        self.0.is_some()
    }

    /// Nanoseconds since start, or 0 for a disabled timer (saturating at
    /// `u64::MAX`, ~584 years).
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        self.0
            .map(|t| u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_timer_reports_zero_and_inactive() {
        let t = ProfTimer::off();
        assert!(!t.active());
        assert_eq!(t.elapsed_ns(), 0);
        assert!(!ProfTimer::maybe(false).active());
    }

    #[test]
    fn started_timer_is_active_and_monotone() {
        let t = ProfTimer::started();
        assert!(t.active());
        assert!(ProfTimer::maybe(true).active());
        let a = t.elapsed_ns();
        let b = t.elapsed_ns();
        assert!(b >= a);
    }
}
