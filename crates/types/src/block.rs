//! Blocks proposed by sequenced-broadcast instance leaders (paper §III-B).
//!
//! A block is `b = (txs, ins, sn, S, σ)`: a batch of transactions, the
//! instance it belongs to, its sequence number within that instance, the
//! system state the leader observed when building it, and the leader's
//! signature. For the dynamic global ordering algorithm (Ladon, Appendix A)
//! the block additionally carries a `rank`; pre-determined orderings ignore
//! it.

use crate::crypto::{Digest, KeyPair, Signature};
use crate::ids::{Epoch, InstanceId, Rank, ReplicaId, SeqNum, View};
use crate::state::SystemState;
use crate::transaction::Transaction;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a block: the instance it belongs to and its sequence number
/// within that instance. With the agreement property of sequenced broadcast,
/// all honest replicas associate the same block contents with a given id.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct BlockId {
    /// SB instance that produced the block.
    pub instance: InstanceId,
    /// Sequence number of the block within the instance.
    pub sn: SeqNum,
}

impl BlockId {
    /// Construct a block id.
    #[inline]
    pub const fn new(instance: InstanceId, sn: SeqNum) -> Self {
        Self { instance, sn }
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}^{}", self.sn.value(), self.instance.value())
    }
}

/// The header of a block: everything except the transaction batch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockHeader {
    /// Instance the block belongs to (`ins`).
    pub instance: InstanceId,
    /// Sequence number within the instance (`sn`).
    pub sn: SeqNum,
    /// Epoch the sequence number belongs to.
    pub epoch: Epoch,
    /// PBFT view in which the block was proposed.
    pub view: View,
    /// Replica that proposed the block.
    pub proposer: ReplicaId,
    /// Ladon-style rank used by dynamic global ordering; pre-determined
    /// orderings ignore it.
    pub rank: Rank,
    /// System state the leader observed when pulling the batch (`S`).
    pub state: SystemState,
    /// Digest of the transaction batch.
    pub payload_digest: Digest,
    /// `true` for filler blocks that carry no transactions. ISS delivers
    /// no-op blocks to keep the pre-determined global log moving when a
    /// bucket is empty; other protocols use them during recovery.
    pub no_op: bool,
    /// For DQBFT's dedicated ordering instance: the ids of data blocks whose
    /// global order this block decides. Empty for ordinary data blocks.
    pub ordered_ids: Vec<BlockId>,
}

impl BlockHeader {
    /// Digest of the header (what the leader signs).
    pub fn digest(&self) -> Digest {
        Digest::of(&(
            self.instance,
            self.sn,
            self.epoch,
            self.view,
            self.proposer,
            self.rank,
            &self.state,
            self.payload_digest,
            self.no_op,
            &self.ordered_ids,
        ))
    }

    /// The block id this header describes.
    #[inline]
    pub fn id(&self) -> BlockId {
        BlockId::new(self.instance, self.sn)
    }
}

/// A block: header, transaction batch and the proposer's signature.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// Header fields.
    pub header: BlockHeader,
    /// Batch of transactions (`txs`).
    pub txs: Vec<Transaction>,
    /// Proposer's signature over the header digest (`σ`).
    pub signature: Signature,
}

/// Builder-style constructor inputs for [`Block::new`].
#[derive(Debug, Clone)]
pub struct BlockParams {
    /// Instance the block belongs to.
    pub instance: InstanceId,
    /// Sequence number within the instance.
    pub sn: SeqNum,
    /// Epoch of the sequence number.
    pub epoch: Epoch,
    /// PBFT view of the proposal.
    pub view: View,
    /// Proposing replica.
    pub proposer: ReplicaId,
    /// Rank assigned by the leader (Ladon ordering).
    pub rank: Rank,
    /// System state observed by the leader.
    pub state: SystemState,
}

impl Block {
    /// Build and sign a block containing `txs`.
    pub fn new(params: BlockParams, txs: Vec<Transaction>) -> Self {
        let payload_digest = Self::payload_digest(&txs);
        let header = BlockHeader {
            instance: params.instance,
            sn: params.sn,
            epoch: params.epoch,
            view: params.view,
            proposer: params.proposer,
            rank: params.rank,
            state: params.state,
            payload_digest,
            no_op: false,
            ordered_ids: Vec::new(),
        };
        let signature = KeyPair::for_replica(params.proposer).sign(header.digest());
        Self {
            header,
            txs,
            signature,
        }
    }

    /// Build and sign an empty no-op block (used by ISS-style protocols to
    /// fill their pre-determined global log and by recovery paths).
    pub fn no_op(params: BlockParams) -> Self {
        let payload_digest = Digest::EMPTY;
        let header = BlockHeader {
            instance: params.instance,
            sn: params.sn,
            epoch: params.epoch,
            view: params.view,
            proposer: params.proposer,
            rank: params.rank,
            state: params.state,
            payload_digest,
            no_op: true,
            ordered_ids: Vec::new(),
        };
        let signature = KeyPair::for_replica(params.proposer).sign(header.digest());
        Self {
            header,
            txs: Vec::new(),
            signature,
        }
    }

    /// Build and sign an ordering block for DQBFT's dedicated ordering
    /// instance: it carries no transactions, only the ids of data blocks
    /// whose global order it decides.
    pub fn ordering(params: BlockParams, ordered_ids: Vec<BlockId>) -> Self {
        let header = BlockHeader {
            instance: params.instance,
            sn: params.sn,
            epoch: params.epoch,
            view: params.view,
            proposer: params.proposer,
            rank: params.rank,
            state: params.state,
            payload_digest: Digest::EMPTY,
            no_op: true,
            ordered_ids,
        };
        let signature = KeyPair::for_replica(params.proposer).sign(header.digest());
        Self {
            header,
            txs: Vec::new(),
            signature,
        }
    }

    /// Digest of a transaction batch.
    pub fn payload_digest(txs: &[Transaction]) -> Digest {
        txs.iter()
            .map(Transaction::digest)
            .fold(Digest::EMPTY, Digest::combine)
    }

    /// The block id (instance, sequence number).
    #[inline]
    pub fn id(&self) -> BlockId {
        self.header.id()
    }

    /// The header digest (what was signed).
    #[inline]
    pub fn digest(&self) -> Digest {
        self.header.digest()
    }

    /// Number of transactions in the block.
    #[inline]
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// Is the transaction batch empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// Wire size of the block in bytes, as charged by the bandwidth model:
    /// a fixed header overhead plus each transaction's payload.
    pub fn wire_bytes(&self) -> u64 {
        const HEADER_BYTES: u64 = 256;
        HEADER_BYTES
            + self
                .txs
                .iter()
                .map(|tx| u64::from(tx.payload_bytes))
                .sum::<u64>()
    }

    /// Verify the block's integrity: the proposer's signature covers the
    /// header, and the header's payload digest matches the batch.
    pub fn verify(&self) -> crate::error::Result<()> {
        use crate::error::OrthrusError;
        if Self::payload_digest(&self.txs) != self.header.payload_digest {
            return Err(OrthrusError::InvalidBlock {
                id: self.id(),
                reason: "payload digest mismatch".into(),
            });
        }
        if self.signature.signer != KeyPair::for_replica(self.header.proposer).public
            || !self.signature.verify(self.header.digest())
        {
            return Err(OrthrusError::InvalidBlock {
                id: self.id(),
                reason: "invalid proposer signature".into(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rank={} |txs|={}{}",
            self.id(),
            self.header.rank.value(),
            self.txs.len(),
            if self.header.no_op { " (no-op)" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;
    use crate::transaction::Transaction;
    use crate::TxId;

    fn params(instance: u32, sn: u64, proposer: u32) -> BlockParams {
        BlockParams {
            instance: InstanceId::new(instance),
            sn: SeqNum::new(sn),
            epoch: Epoch::new(0),
            view: View::new(0),
            proposer: ReplicaId::new(proposer),
            rank: Rank::new(sn),
            state: SystemState::new(4),
        }
    }

    fn sample_txs(n: u64) -> Vec<Transaction> {
        (0..n)
            .map(|i| {
                Transaction::payment(
                    TxId::new(ClientId::new(i), 0),
                    ClientId::new(i),
                    ClientId::new(i + 1),
                    1,
                )
            })
            .collect()
    }

    #[test]
    fn block_verifies_round_trip() {
        let b = Block::new(params(0, 3, 0), sample_txs(5));
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        assert!(b.verify().is_ok());
        assert_eq!(b.id(), BlockId::new(InstanceId::new(0), SeqNum::new(3)));
    }

    #[test]
    fn tampering_with_payload_is_detected() {
        let mut b = Block::new(params(0, 0, 0), sample_txs(3));
        b.txs.pop();
        assert!(b.verify().is_err());
    }

    #[test]
    fn tampering_with_header_is_detected() {
        let mut b = Block::new(params(0, 0, 0), sample_txs(3));
        b.header.rank = Rank::new(999);
        assert!(b.verify().is_err());
    }

    #[test]
    fn forged_proposer_is_detected() {
        let mut b = Block::new(params(0, 0, 0), sample_txs(1));
        // Claim the block was proposed by replica 5 while keeping replica 0's
        // signature: verification must fail.
        b.header.proposer = ReplicaId::new(5);
        assert!(b.verify().is_err());
    }

    #[test]
    fn no_op_blocks_are_empty_and_valid() {
        let b = Block::no_op(params(2, 7, 2));
        assert!(b.is_empty());
        assert!(b.header.no_op);
        assert!(b.verify().is_ok());
    }

    #[test]
    fn ordering_blocks_carry_ids_and_verify() {
        let ids = vec![
            BlockId::new(InstanceId::new(0), SeqNum::new(0)),
            BlockId::new(InstanceId::new(1), SeqNum::new(0)),
        ];
        let b = Block::ordering(params(3, 0, 3), ids.clone());
        assert!(b.verify().is_ok());
        assert_eq!(b.header.ordered_ids, ids);
        // Tampering with the decided order is caught by verification.
        let mut tampered = b.clone();
        tampered.header.ordered_ids.reverse();
        assert!(tampered.verify().is_err());
    }

    #[test]
    fn wire_bytes_scales_with_batch() {
        let small = Block::new(params(0, 0, 0), sample_txs(1));
        let large = Block::new(params(0, 1, 0), sample_txs(10));
        assert!(large.wire_bytes() > small.wire_bytes());
        assert_eq!(Block::no_op(params(0, 2, 0)).wire_bytes(), 256);
    }

    #[test]
    fn block_id_display() {
        assert_eq!(
            BlockId::new(InstanceId::new(2), SeqNum::new(5)).to_string(),
            "B5^2"
        );
    }
}
