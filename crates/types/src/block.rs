//! Blocks proposed by sequenced-broadcast instance leaders (paper §III-B).
//!
//! A block is `b = (txs, ins, sn, S, σ)`: a batch of transactions, the
//! instance it belongs to, its sequence number within that instance, the
//! system state the leader observed when building it, and the leader's
//! signature. For the dynamic global ordering algorithm (Ladon, Appendix A)
//! the block additionally carries a `rank`; pre-determined orderings ignore
//! it.
//!
//! # Ownership and sharing
//!
//! Blocks travel through the message fabric as [`SharedBlock`]
//! (`Arc<Block>`): broadcasting to `n - 1` replicas, buffering in PBFT slots,
//! and inserting into partial/global logs all share one allocation instead of
//! deep-copying the transaction batch. The batch itself holds
//! [`SharedTx`](crate::transaction::SharedTx) handles, so a transaction's
//! payload exists once per process no matter how many buckets, blocks and
//! logs reference it. Blocks are immutable after construction; the header
//! digest is computed once and memoized (tamper checks in [`Block::verify`]
//! deliberately bypass the memo and recompute from the contents).

use crate::crypto::{Digest, KeyPair, Signature};
use crate::ids::{Epoch, InstanceId, Rank, ReplicaId, SeqNum, View};
use crate::state::SystemState;
use crate::transaction::{SharedTx, Transaction};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A reference-counted handle to an immutable block, the unit the message
/// fabric moves around. Cloning is an atomic increment, never a deep copy.
pub type SharedBlock = Arc<Block>;

/// Identifier of a block: the instance it belongs to and its sequence number
/// within that instance. With the agreement property of sequenced broadcast,
/// all honest replicas associate the same block contents with a given id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId {
    /// SB instance that produced the block.
    pub instance: InstanceId,
    /// Sequence number of the block within the instance.
    pub sn: SeqNum,
}

impl BlockId {
    /// Construct a block id.
    #[inline]
    pub const fn new(instance: InstanceId, sn: SeqNum) -> Self {
        Self { instance, sn }
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}^{}", self.sn.value(), self.instance.value())
    }
}

/// The header of a block: everything except the transaction batch.
#[derive(Debug, Clone)]
pub struct BlockHeader {
    /// Instance the block belongs to (`ins`).
    pub instance: InstanceId,
    /// Sequence number within the instance (`sn`).
    pub sn: SeqNum,
    /// Epoch the sequence number belongs to.
    pub epoch: Epoch,
    /// PBFT view in which the block was proposed.
    pub view: View,
    /// Replica that proposed the block.
    pub proposer: ReplicaId,
    /// Ladon-style rank used by dynamic global ordering; pre-determined
    /// orderings ignore it.
    pub rank: Rank,
    /// System state the leader observed when pulling the batch (`S`).
    pub state: SystemState,
    /// Digest of the transaction batch.
    pub payload_digest: Digest,
    /// `true` for filler blocks that carry no transactions. ISS delivers
    /// no-op blocks to keep the pre-determined global log moving when a
    /// bucket is empty; other protocols use them during recovery.
    pub no_op: bool,
    /// For DQBFT's dedicated ordering instance: the ids of data blocks whose
    /// global order this block decides. Empty for ordinary data blocks.
    pub ordered_ids: Vec<BlockId>,
    /// Memoized header digest. Headers are immutable once signed, so every
    /// `digest()` call after the first is a load instead of a hash of the
    /// whole state vector. Excluded from equality; `compute_digest` ignores
    /// it.
    digest_memo: OnceLock<Digest>,
}

impl PartialEq for BlockHeader {
    fn eq(&self, other: &Self) -> bool {
        self.instance == other.instance
            && self.sn == other.sn
            && self.epoch == other.epoch
            && self.view == other.view
            && self.proposer == other.proposer
            && self.rank == other.rank
            && self.state == other.state
            && self.payload_digest == other.payload_digest
            && self.no_op == other.no_op
            && self.ordered_ids == other.ordered_ids
    }
}

impl Eq for BlockHeader {}

impl BlockHeader {
    /// Digest of the header (what the leader signs). Memoized: the first call
    /// hashes the header contents, later calls return the cached value.
    pub fn digest(&self) -> Digest {
        *self.digest_memo.get_or_init(|| self.compute_digest())
    }

    /// Recompute the digest from the header contents, bypassing the memo.
    /// Verification paths use this so that a tampered header can never hide
    /// behind a digest cached before the tampering.
    pub fn compute_digest(&self) -> Digest {
        Digest::of(&(
            self.instance,
            self.sn,
            self.epoch,
            self.view,
            self.proposer,
            self.rank,
            &self.state,
            self.payload_digest,
            self.no_op,
            &self.ordered_ids,
        ))
    }

    /// The block id this header describes.
    #[inline]
    pub fn id(&self) -> BlockId {
        BlockId::new(self.instance, self.sn)
    }
}

/// A block: header, transaction batch and the proposer's signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Header fields.
    pub header: BlockHeader,
    /// Batch of transactions (`txs`). Each entry is a shared handle — the
    /// same `Arc` the client request arrived in and the bucket stored.
    pub txs: Vec<SharedTx>,
    /// Proposer's signature over the header digest (`σ`).
    pub signature: Signature,
}

/// Builder-style constructor inputs for [`Block::new`].
#[derive(Debug, Clone)]
pub struct BlockParams {
    /// Instance the block belongs to.
    pub instance: InstanceId,
    /// Sequence number within the instance.
    pub sn: SeqNum,
    /// Epoch of the sequence number.
    pub epoch: Epoch,
    /// PBFT view of the proposal.
    pub view: View,
    /// Proposing replica.
    pub proposer: ReplicaId,
    /// Rank assigned by the leader (Ladon ordering).
    pub rank: Rank,
    /// System state observed by the leader.
    pub state: SystemState,
}

impl Block {
    fn build(
        params: BlockParams,
        txs: Vec<SharedTx>,
        no_op: bool,
        ordered_ids: Vec<BlockId>,
    ) -> Self {
        let payload_digest = Self::payload_digest(&txs);
        let header = BlockHeader {
            instance: params.instance,
            sn: params.sn,
            epoch: params.epoch,
            view: params.view,
            proposer: params.proposer,
            rank: params.rank,
            state: params.state,
            payload_digest,
            no_op,
            ordered_ids,
            digest_memo: OnceLock::new(),
        };
        let signature = KeyPair::for_replica(header.proposer).sign(header.digest());
        Self {
            header,
            txs,
            signature,
        }
    }

    /// Build and sign a block containing `txs` (owned transactions are
    /// wrapped into shared handles; leaders that already hold shared handles
    /// use [`Block::from_shared`] instead, which copies nothing).
    pub fn new(params: BlockParams, txs: Vec<Transaction>) -> Self {
        Self::from_shared(params, txs.into_iter().map(Arc::new).collect())
    }

    /// Build and sign a block from already-shared transactions. This is the
    /// leader's hot path: the batch is assembled from the bucket's `Arc`
    /// handles without copying any transaction payload.
    pub fn from_shared(params: BlockParams, txs: Vec<SharedTx>) -> Self {
        Self::build(params, txs, false, Vec::new())
    }

    /// Build and sign an empty no-op block (used by ISS-style protocols to
    /// fill their pre-determined global log and by recovery paths).
    pub fn no_op(params: BlockParams) -> Self {
        Self::build(params, Vec::new(), true, Vec::new())
    }

    /// Build and sign an ordering block for DQBFT's dedicated ordering
    /// instance: it carries no transactions, only the ids of data blocks
    /// whose global order it decides.
    pub fn ordering(params: BlockParams, ordered_ids: Vec<BlockId>) -> Self {
        Self::build(params, Vec::new(), true, ordered_ids)
    }

    /// Digest of a transaction batch. Per-transaction digests are memoized on
    /// the transactions themselves, so recomputing a batch digest over shared
    /// handles hashes only the combination, not the payloads.
    pub fn payload_digest(txs: &[SharedTx]) -> Digest {
        txs.iter()
            .map(|tx| tx.digest())
            .fold(Digest::EMPTY, Digest::combine)
    }

    /// The block id (instance, sequence number).
    #[inline]
    pub fn id(&self) -> BlockId {
        self.header.id()
    }

    /// The header digest (what was signed). Memoized on the header.
    #[inline]
    pub fn digest(&self) -> Digest {
        self.header.digest()
    }

    /// Number of transactions in the block.
    #[inline]
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// Is the transaction batch empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// Wire size of the block in bytes, as charged by the bandwidth model:
    /// a fixed header overhead plus each transaction's payload.
    pub fn wire_bytes(&self) -> u64 {
        const HEADER_BYTES: u64 = 256;
        HEADER_BYTES
            + self
                .txs
                .iter()
                .map(|tx| u64::from(tx.payload_bytes))
                .sum::<u64>()
    }

    /// Verify the block's integrity: the proposer's signature covers the
    /// header, and the header's payload digest matches the batch.
    ///
    /// Both digests are recomputed from the contents (bypassing the memo and
    /// each transaction's cached digest), so tampering after construction is
    /// always detected.
    pub fn verify(&self) -> crate::error::Result<()> {
        use crate::error::OrthrusError;
        let fresh_payload = self
            .txs
            .iter()
            .map(|tx| tx.compute_digest())
            .fold(Digest::EMPTY, Digest::combine);
        if fresh_payload != self.header.payload_digest {
            return Err(OrthrusError::InvalidBlock {
                id: self.id(),
                reason: "payload digest mismatch".into(),
            });
        }
        if self.signature.signer != KeyPair::for_replica(self.header.proposer).public
            || !self.signature.verify(self.header.compute_digest())
        {
            return Err(OrthrusError::InvalidBlock {
                id: self.id(),
                reason: "invalid proposer signature".into(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rank={} |txs|={}{}",
            self.id(),
            self.header.rank.value(),
            self.txs.len(),
            if self.header.no_op { " (no-op)" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;
    use crate::transaction::Transaction;
    use crate::TxId;

    fn params(instance: u32, sn: u64, proposer: u32) -> BlockParams {
        BlockParams {
            instance: InstanceId::new(instance),
            sn: SeqNum::new(sn),
            epoch: Epoch::new(0),
            view: View::new(0),
            proposer: ReplicaId::new(proposer),
            rank: Rank::new(sn),
            state: SystemState::new(4),
        }
    }

    fn sample_txs(n: u64) -> Vec<Transaction> {
        (0..n)
            .map(|i| {
                Transaction::payment(
                    TxId::new(ClientId::new(i), 0),
                    ClientId::new(i),
                    ClientId::new(i + 1),
                    1,
                )
            })
            .collect()
    }

    #[test]
    fn block_verifies_round_trip() {
        let b = Block::new(params(0, 3, 0), sample_txs(5));
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        assert!(b.verify().is_ok());
        assert_eq!(b.id(), BlockId::new(InstanceId::new(0), SeqNum::new(3)));
    }

    #[test]
    fn tampering_with_payload_is_detected() {
        let mut b = Block::new(params(0, 0, 0), sample_txs(3));
        b.txs.pop();
        assert!(b.verify().is_err());
    }

    #[test]
    fn tampering_with_header_is_detected() {
        let mut b = Block::new(params(0, 0, 0), sample_txs(3));
        b.header.rank = Rank::new(999);
        assert!(b.verify().is_err());
    }

    #[test]
    fn tampering_after_digest_was_cached_is_still_detected() {
        let mut b = Block::new(params(0, 0, 0), sample_txs(3));
        // Prime the memo, then tamper: verification recomputes from contents
        // and must not be fooled by the stale cached digest.
        let _ = b.digest();
        b.header.rank = Rank::new(999);
        assert!(b.verify().is_err());
    }

    #[test]
    fn forged_proposer_is_detected() {
        let mut b = Block::new(params(0, 0, 0), sample_txs(1));
        // Claim the block was proposed by replica 5 while keeping replica 0's
        // signature: verification must fail.
        b.header.proposer = ReplicaId::new(5);
        assert!(b.verify().is_err());
    }

    #[test]
    fn no_op_blocks_are_empty_and_valid() {
        let b = Block::no_op(params(2, 7, 2));
        assert!(b.is_empty());
        assert!(b.header.no_op);
        assert!(b.verify().is_ok());
    }

    #[test]
    fn ordering_blocks_carry_ids_and_verify() {
        let ids = vec![
            BlockId::new(InstanceId::new(0), SeqNum::new(0)),
            BlockId::new(InstanceId::new(1), SeqNum::new(0)),
        ];
        let b = Block::ordering(params(3, 0, 3), ids.clone());
        assert!(b.verify().is_ok());
        assert_eq!(b.header.ordered_ids, ids);
        // Tampering with the decided order is caught by verification.
        let mut tampered = b.clone();
        tampered.header.ordered_ids.reverse();
        assert!(tampered.verify().is_err());
    }

    #[test]
    fn wire_bytes_scales_with_batch() {
        let small = Block::new(params(0, 0, 0), sample_txs(1));
        let large = Block::new(params(0, 1, 0), sample_txs(10));
        assert!(large.wire_bytes() > small.wire_bytes());
        assert_eq!(Block::no_op(params(0, 2, 0)).wire_bytes(), 256);
    }

    #[test]
    fn shared_construction_copies_no_transactions() {
        let txs: Vec<SharedTx> = sample_txs(4).into_iter().map(Arc::new).collect();
        let handles: Vec<SharedTx> = txs.iter().map(Arc::clone).collect();
        let b = Block::from_shared(params(0, 0, 0), handles);
        for (original, in_block) in txs.iter().zip(b.txs.iter()) {
            assert!(Arc::ptr_eq(original, in_block));
        }
        assert!(b.verify().is_ok());
    }

    #[test]
    fn digest_is_memoized_and_stable() {
        let b = Block::new(params(0, 1, 0), sample_txs(3));
        let first = b.digest();
        assert_eq!(first, b.digest());
        assert_eq!(first, b.header.compute_digest());
        // A shared handle observes the same memoized value.
        let shared: SharedBlock = Arc::new(b);
        assert_eq!(shared.digest(), first);
        assert_eq!(Arc::clone(&shared).digest(), first);
    }

    #[test]
    fn block_id_display() {
        assert_eq!(
            BlockId::new(InstanceId::new(2), SeqNum::new(5)).to_string(),
            "B5^2"
        );
    }
}
