//! Deterministic pseudo-random number generation.
//!
//! The workspace builds offline with no external crates, so this module
//! provides the small slice of the `rand` API the simulation needs: a seeded
//! generator ([`StdRng`], xoshiro256++), uniform ranges, booleans with a
//! probability, and slice shuffling. Determinism is a hard requirement — the
//! discrete-event simulation derives every jitter sample and workload draw
//! from a scenario seed, and a given `(scenario, seed)` pair must always
//! produce the same trace.

use std::ops::{Bound, RangeBounds};

/// A source of pseudo-random numbers.
///
/// All derived draws (`gen`, `gen_range`, `gen_bool`) are defined in terms of
/// [`Rng::next_u64`], so two generators with the same state produce the same
/// sequence of draws regardless of how they are consumed.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly distributed value of `T` (integers over their full range,
    /// `f64` in `[0, 1)`, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniformly distributed value in `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform, B: RangeBounds<T>>(&mut self, range: B) -> T {
        T::sample_range(self, &range)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        let u = (self.next_u64() >> 11) as f64 * F64_UNIT;
        u < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// `2^-53`: converts the top 53 bits of a draw into a `f64` in `[0, 1)`.
const F64_UNIT: f64 = 1.0 / ((1u64 << 53) as f64);

/// Types that can be drawn uniformly from an [`Rng`] without a range.
pub trait Standard: Sized {
    /// Draw one value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * F64_UNIT
    }
}
impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Sized {
    /// Draw one value from `range`.
    fn sample_range<R: Rng + ?Sized, B: RangeBounds<Self>>(rng: &mut R, range: &B) -> Self;
}

macro_rules! uniform_int {
    ($ty:ty, $wide:ty) => {
        impl SampleUniform for $ty {
            fn sample_range<R: Rng + ?Sized, B: RangeBounds<Self>>(rng: &mut R, range: &B) -> Self {
                // Emptiness must be detected *before* the ±1 adjustments: an
                // excluded bound at the type's extreme would otherwise wrap
                // (e.g. `0..0` on an unsigned type) and silently sample the
                // full domain instead of panicking.
                let lo: $wide = match range.start_bound() {
                    Bound::Included(&v) => v as $wide,
                    Bound::Excluded(&v) => {
                        assert!(v != <$ty>::MAX, "gen_range called with an empty range");
                        v as $wide + 1
                    }
                    Bound::Unbounded => <$ty>::MIN as $wide,
                };
                let hi: $wide = match range.end_bound() {
                    Bound::Included(&v) => v as $wide,
                    Bound::Excluded(&v) => {
                        assert!(v as $wide > lo, "gen_range called with an empty range");
                        v as $wide - 1
                    }
                    Bound::Unbounded => <$ty>::MAX as $wide,
                };
                assert!(lo <= hi, "gen_range called with an empty range");
                // Width fits in u128 even for the full u64 domain.
                let span = (hi - lo) as u128 + 1;
                if span == 0 || span > u128::from(u64::MAX) {
                    // Full 64-bit-or-wider domain: a raw draw is already uniform.
                    return (lo + rng.next_u64() as $wide) as $ty;
                }
                // Multiply-shift reduction: maps a 64-bit draw onto `span`
                // buckets with bias below 2^-64, far under simulation noise.
                let draw = u128::from(rng.next_u64());
                let offset = (draw * span) >> 64;
                (lo + offset as $wide) as $ty
            }
        }
    };
}

uniform_int!(u64, u64);
uniform_int!(u32, u64);
uniform_int!(usize, u64);
uniform_int!(i64, i128);
uniform_int!(i32, i64);

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized, B: RangeBounds<Self>>(rng: &mut R, range: &B) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&v) | Bound::Excluded(&v) => v,
            Bound::Unbounded => 0.0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&v) | Bound::Excluded(&v) => v,
            Bound::Unbounded => 1.0,
        };
        assert!(lo <= hi, "gen_range called with an empty range");
        let u = (rng.next_u64() >> 11) as f64 * F64_UNIT;
        lo + u * (hi - lo)
    }
}

/// Random operations on slices (the subset of `rand`'s `SliceRandom` the
/// workspace uses).
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Shuffle the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

/// The workspace's standard generator: xoshiro256++ seeded through SplitMix64.
///
/// Fast, passes the usual statistical batteries, and — crucially — fully
/// deterministic from its 64-bit seed across platforms and runs.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Create a generator from a 64-bit seed (SplitMix64 state expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Self { s }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(5..10);
            assert!((5..10).contains(&v));
            let w: u64 = rng.gen_range(1..=3);
            assert!((1..=3).contains(&w));
            let x: i64 = rng.gen_range(-50..50);
            assert!((-50..50).contains(&x));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..=1.0).contains(&f));
            let j: f64 = rng.gen_range(-0.05..=0.05);
            assert!(j.abs() <= 0.05);
        }
    }

    #[test]
    fn single_value_ranges() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(rng.gen_range(4u64..5), 4);
        assert_eq!(rng.gen_range(4u64..=4), 4);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_exclusive_range_panics() {
        let mut rng = StdRng::seed_from_u64(2);
        let _ = rng.gen_range(0u64..0);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn reversed_range_panics() {
        let mut rng = StdRng::seed_from_u64(2);
        // Built via variables so clippy's literal reversed-range lint does
        // not reject the intentional misuse under test.
        let (lo, hi) = (5i64, 4i64);
        let _ = rng.gen_range(lo..=hi);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_at_type_minimum_panics() {
        // `..i64::MIN` (exclusive end at the type minimum) must not wrap.
        let mut rng = StdRng::seed_from_u64(2);
        let _ = rng.gen_range(..i64::MIN);
    }

    #[test]
    fn uniformity_is_rough_but_real() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((c as i64 - 10_000).abs() < 800, "counts {counts:?}");
        }
    }

    #[test]
    fn gen_bool_edges_and_mass() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..50_000).filter(|_| rng.gen_bool(0.25)).count();
        let share = hits as f64 / 50_000.0;
        assert!((share - 0.25).abs() < 0.02, "share {share}");
    }

    #[test]
    fn shuffle_permutes_and_choose_selects() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..100).collect::<Vec<u32>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn full_domain_draw_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(6);
        let _: u64 = rng.gen_range(0..=u64::MAX);
        let _: u64 = rng.gen();
        let _: u32 = rng.gen();
        let _: bool = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
