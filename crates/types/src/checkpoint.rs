//! Stable checkpoints: quorum-certified low-water marks of an SB instance.
//!
//! The paper's garbage-collection story (§V, §V-D) hangs off *stable
//! checkpoints*: every `checkpoint_interval` deliveries a replica broadcasts
//! a checkpoint vote carrying the digest of its delivered prefix, and once
//! `2f + 1` matching votes accumulate the checkpoint is **stable** — every
//! quorum contains an honest replica that has durably delivered the prefix,
//! so protocol state at or below the checkpoint can be discarded and a
//! crashed replica can be brought back by state transfer instead of replay.
//!
//! [`StableCheckpoint`] is that certificate as a first-class value: the
//! instance and sequence number it covers, the delivered-prefix digest the
//! quorum agreed on, and the [`CheckpointProof`] naming the voters. The PBFT
//! layer (`orthrus-sb`) produces one per stabilisation and the rest of the
//! system — log truncation in `orthrus-ordering`, state snapshots and
//! recovery in `orthrus-core` — consumes it.

use crate::crypto::Digest;
use crate::ids::{InstanceId, ReplicaId, SeqNum};

/// The quorum certificate behind a stable checkpoint: the replicas whose
/// matching votes made it stable.
///
/// The simulation does not carry real signatures (see [`crate::crypto`]),
/// but the proof preserves the structure a deployment would verify: a set of
/// distinct voters of quorum size, all vouching for the same digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointProof {
    /// Distinct replicas whose votes matched the certified digest, in
    /// ascending id order.
    pub voters: Vec<ReplicaId>,
}

impl CheckpointProof {
    /// Does the proof carry at least `quorum` distinct voters?
    pub fn has_quorum(&self, quorum: usize) -> bool {
        let mut voters = self.voters.clone();
        voters.sort_unstable();
        voters.dedup();
        voters.len() >= quorum
    }
}

/// A stable checkpoint of one SB instance: sequence numbers `0..=seq` are
/// certified delivered with the given delivered-prefix digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StableCheckpoint {
    /// The instance the checkpoint covers.
    pub instance: InstanceId,
    /// Highest sequence number covered (the low-water mark is `seq + 1`).
    pub seq: SeqNum,
    /// Rolling digest of the delivered prefix `0..=seq` the quorum agreed
    /// on.
    pub state_digest: Digest,
    /// The quorum certificate.
    pub proof: CheckpointProof,
}

impl StableCheckpoint {
    /// First sequence number *not* covered by this checkpoint — the
    /// instance's low-water mark after garbage collection.
    pub fn low_water_mark(&self) -> SeqNum {
        self.seq.next()
    }

    /// Does the certificate check out structurally for the given quorum
    /// size?
    pub fn verify(&self, quorum: usize) -> bool {
        self.proof.has_quorum(quorum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cert(voters: &[u32]) -> StableCheckpoint {
        StableCheckpoint {
            instance: InstanceId::new(0),
            seq: SeqNum::new(7),
            state_digest: Digest::of(&42u64),
            proof: CheckpointProof {
                voters: voters.iter().copied().map(ReplicaId::new).collect(),
            },
        }
    }

    #[test]
    fn low_water_mark_is_one_past_the_covered_prefix() {
        assert_eq!(cert(&[0, 1, 2]).low_water_mark(), SeqNum::new(8));
    }

    #[test]
    fn verify_requires_a_distinct_quorum() {
        assert!(cert(&[0, 1, 2]).verify(3));
        assert!(!cert(&[0, 1]).verify(3));
        // Duplicate voters do not count twice.
        assert!(!cert(&[0, 1, 1]).verify(3));
        assert!(cert(&[3, 1, 0, 2]).verify(3));
    }
}
