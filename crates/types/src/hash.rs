//! A fast, deterministic hasher for the hot in-memory maps.
//!
//! `std`'s default `SipHash` is keyed per process for HashDoS resistance —
//! protection the simulation does not need, at a cost the execution engine's
//! inner loops can feel (every key here is a trusted fixed-width id). This is
//! the Fx construction (rotate, xor, multiply per word), seedless and thus
//! identical across runs and platforms, which also keeps profiles and
//! benchmarks comparable.
//!
//! Nothing in the workspace may depend on map *iteration order* for
//! output determinism regardless of hasher choice; these aliases only make
//! lookups cheap.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the Fx construction (the golden-ratio constant used by
/// rustc's `FxHasher`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx word-at-a-time hasher: `h = (h <<< 5 ^ w) * SEED` per word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, value: u8) {
        self.add(u64::from(value));
    }

    #[inline]
    fn write_u16(&mut self, value: u16) {
        self.add(u64::from(value));
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.add(u64::from(value));
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.add(value);
    }

    #[inline]
    fn write_u128(&mut self, value: u128) {
        self.add(value as u64);
        self.add((value >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.add(value as u64);
    }
}

/// Seedless `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the deterministic Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the deterministic Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xDEAD_BEEF);
        b.write_u64(0xDEAD_BEEF);
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0);
    }

    #[test]
    fn byte_stream_matches_word_stream_for_whole_words() {
        let mut words = FxHasher::default();
        words.write_u64(u64::from_le_bytes(*b"orthrus!"));
        let mut bytes = FxHasher::default();
        bytes.write(b"orthrus!");
        assert_eq!(words.finish(), bytes.finish());
    }

    #[test]
    fn maps_and_sets_work() {
        let mut map: FxHashMap<u64, &str> = FxHashMap::default();
        map.insert(7, "seven");
        assert_eq!(map.get(&7), Some(&"seven"));
        let mut set: FxHashSet<(u64, u64)> = FxHashSet::default();
        assert!(set.insert((1, 2)));
        assert!(!set.insert((1, 2)));
    }
}
