//! The common error type shared across the workspace.

use crate::block::BlockId;
use crate::ids::{InstanceId, ObjectKey, ReplicaId, SeqNum, TxId};
use std::fmt;

/// Convenient result alias using [`OrthrusError`].
pub type Result<T> = std::result::Result<T, OrthrusError>;

/// Errors produced by protocol components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrthrusError {
    /// A transaction failed structural validation.
    InvalidTransaction {
        /// Offending transaction.
        id: TxId,
        /// Human-readable reason.
        reason: String,
    },
    /// A debit leg was not covered by a valid owner signature.
    MissingAuthorisation {
        /// Offending transaction.
        id: TxId,
        /// The payer whose authorisation is missing.
        payer: ObjectKey,
    },
    /// A block failed verification.
    InvalidBlock {
        /// Offending block.
        id: BlockId,
        /// Human-readable reason.
        reason: String,
    },
    /// A message referenced an unknown replica.
    UnknownReplica(ReplicaId),
    /// A message referenced an unknown SB instance.
    UnknownInstance(InstanceId),
    /// An object involved in execution does not exist in the store.
    UnknownObject(ObjectKey),
    /// A debit exceeded the account's spendable balance.
    InsufficientBalance {
        /// The account that could not cover the debit.
        object: ObjectKey,
        /// Spendable balance at the time of the debit.
        have: crate::object::Amount,
        /// Amount the debit required.
        need: crate::object::Amount,
    },
    /// An operation was applied to an object of the wrong type (e.g. a
    /// contract write to an owned account).
    TypeMismatch {
        /// The object involved.
        object: ObjectKey,
        /// Human-readable description of the mismatch.
        reason: String,
    },
    /// A sequence number was outside the epoch assigned to an instance.
    SequenceOutOfEpoch {
        /// The instance involved.
        instance: InstanceId,
        /// The offending sequence number.
        sn: SeqNum,
    },
    /// Invalid protocol or scenario configuration.
    Config(String),
    /// The simulation reached its event or time budget before completing.
    SimulationBudgetExhausted {
        /// Description of the exhausted budget.
        reason: String,
    },
}

impl fmt::Display for OrthrusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrthrusError::InvalidTransaction { id, reason } => {
                write!(f, "invalid transaction {id}: {reason}")
            }
            OrthrusError::MissingAuthorisation { id, payer } => {
                write!(f, "transaction {id} lacks authorisation from payer {payer}")
            }
            OrthrusError::InvalidBlock { id, reason } => {
                write!(f, "invalid block {id}: {reason}")
            }
            OrthrusError::UnknownReplica(r) => write!(f, "unknown replica {r}"),
            OrthrusError::UnknownInstance(i) => write!(f, "unknown instance {i}"),
            OrthrusError::UnknownObject(o) => write!(f, "unknown object {o}"),
            OrthrusError::InsufficientBalance { object, have, need } => {
                write!(
                    f,
                    "insufficient balance on {object}: have {have}, need {need}"
                )
            }
            OrthrusError::TypeMismatch { object, reason } => {
                write!(f, "type mismatch on {object}: {reason}")
            }
            OrthrusError::SequenceOutOfEpoch { instance, sn } => {
                write!(
                    f,
                    "sequence number {sn} outside current epoch of {instance}"
                )
            }
            OrthrusError::Config(reason) => write!(f, "invalid configuration: {reason}"),
            OrthrusError::SimulationBudgetExhausted { reason } => {
                write!(f, "simulation budget exhausted: {reason}")
            }
        }
    }
}

impl std::error::Error for OrthrusError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;

    #[test]
    fn display_messages_mention_offenders() {
        let err = OrthrusError::MissingAuthorisation {
            id: TxId::new(ClientId::new(1), 2),
            payer: ObjectKey::new(7),
        };
        let text = err.to_string();
        assert!(text.contains("authorisation"));
        assert!(text.contains("tx(1:2)"));
    }

    #[test]
    fn insufficient_balance_names_the_account_and_amounts() {
        let err = OrthrusError::InsufficientBalance {
            object: ObjectKey::new(7),
            have: 3,
            need: 10,
        };
        let text = err.to_string();
        assert!(text.contains("insufficient balance"));
        assert!(text.contains("have 3"));
        assert!(text.contains("need 10"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&OrthrusError::Config("bad".into()));
    }

    #[test]
    fn errors_compare_by_value() {
        assert_eq!(
            OrthrusError::UnknownObject(ObjectKey::new(1)),
            OrthrusError::UnknownObject(ObjectKey::new(1))
        );
        assert_ne!(
            OrthrusError::UnknownObject(ObjectKey::new(1)),
            OrthrusError::UnknownObject(ObjectKey::new(2))
        );
    }
}
