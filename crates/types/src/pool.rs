//! A zero-dependency scoped thread pool.
//!
//! Both helpers spawn up to `threads` scoped workers that claim work
//! through a shared atomic cursor, so uneven item costs balance
//! automatically and each item is visited exactly once — parallelism changes
//! wall-clock, never results. Worker counts are additionally clamped to the
//! machine's available parallelism: oversubscribing cores buys nothing and
//! costs context switches, and results are thread-count independent by
//! design. They live in `orthrus-types` (the dependency root) so both the
//! runner's scenario sweeps and the executor's shard/STM workers drive the
//! same implementation; `orthrus_core` re-exports them under their
//! historical paths.

/// Worker count actually used for a request of `threads` over `items` items.
fn effective_threads(threads: usize, items: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    threads.max(1).min(cores).min(items.max(1))
}

/// Apply `f` to every item on a scoped thread pool of up to `threads`
/// workers, returning results in input order.
///
/// Workers claim fixed-size *chunks* of the input (not single items) through
/// the shared cursor: one claim and one result slot per chunk keeps the
/// coordination cost negligible even for tens of thousands of small items,
/// while chunks are small enough for uneven costs to balance.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = effective_threads(threads, items.len());
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    // At least 8 claims per worker so stragglers balance; at most 256 items
    // per chunk so claims stay rare.
    let chunk = (items.len() / (threads * 8)).clamp(1, 256);
    let chunks: Vec<&[T]> = items.chunks(chunk).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Vec<R>>> = chunks
        .iter()
        .map(|_| std::sync::Mutex::new(Vec::new()))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= chunks.len() {
                    break;
                }
                let out: Vec<R> = chunks[i].iter().map(&f).collect();
                *slots[i].lock().expect("no panics while holding the lock") = out;
            });
        }
    });
    let mut results = Vec::with_capacity(items.len());
    for slot in slots {
        results.extend(slot.into_inner().expect("no panics while holding the lock"));
    }
    debug_assert_eq!(results.len(), items.len());
    results
}

/// Apply `f` to every item of a mutable slice on the same scoped pool as
/// [`parallel_map`], for work that needs exclusive access to each item
/// (e.g. the executor's per-shard plog jobs, which carry `&mut` state
/// shards).
pub fn parallel_for_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let threads = effective_threads(threads, items.len());
    if threads <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<&mut T>> =
        items.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                // Claimed indices are unique, so the lock is uncontended; it
                // exists to hand the `&mut` across the thread boundary safely.
                f(&mut slots[i].lock().expect("no panics while holding the lock"));
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 3, 8] {
            let out = parallel_map(&items, threads, |x| x * 2);
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_for_mut_visits_every_item_once() {
        for threads in [1, 4, 9] {
            let mut items: Vec<u64> = vec![0; 64];
            parallel_for_mut(&mut items, threads, |x| *x += 1);
            assert!(items.iter().all(|&x| x == 1));
        }
    }

    #[test]
    fn empty_and_oversubscribed_inputs_are_fine() {
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(&empty, 8, |x| *x).is_empty());
        let mut two = vec![1u64, 2];
        parallel_for_mut(&mut two, 16, |x| *x *= 10);
        assert_eq!(two, vec![10, 20]);
    }
}
