//! The object-centric data model (paper §III-B).
//!
//! Objects are long-lived records identified by an [`ObjectKey`]
//! (`crate::ids::ObjectKey`). Each object is either *owned* (an account with
//! a balance, controlled by one owner whose signature authorises decrements)
//! or *shared* (a smart-contract record that any authorised transaction may
//! read or assign).
//!
//! A transaction does not embed object state; it lists, per object, the
//! operation to perform and the condition that must hold after the operation
//! (`o = (key, value, op, con, type)` in the paper — the `value` lives in the
//! replica's store, the rest is carried by the transaction as an
//! [`ObjectOp`]).

use crate::ids::ObjectKey;
use std::fmt;

/// Token amounts held by owned objects (account balances).
pub type Amount = u64;

/// Values held by shared objects (contract records).
pub type Value = i64;

/// Whether an object is owned (an account) or shared (a contract record).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectType {
    /// Owned object: has a specific owner; decremental operations require the
    /// owner's signature. Example: Alice's account balance.
    Owned,
    /// Shared object: no specific owner; may be accessed by any transaction
    /// authorised by the smart contract.
    Shared,
}

/// An operation on a single object.
///
/// The two *payment* operations (`Credit`, `Debit`) act on owned objects and
/// are the commutative building blocks that make partial ordering sufficient
/// (§II-A): credits always commute, and debits on *different* accounts
/// commute. The remaining operations model contract behaviour on shared
/// objects and are non-commutative in general (§II-B, Observation 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operation {
    /// Incremental operation: add `amount` tokens to an owned object.
    Credit(Amount),
    /// Decremental operation: remove `amount` tokens from an owned object.
    /// Requires the owner's authorisation and is subject to the object's
    /// condition (usually "balance stays non-negative").
    Debit(Amount),
    /// Assign a value to a shared object (non-commutative).
    Set(Value),
    /// Add a delta to a shared object. Although arithmetically commutative,
    /// the paper treats all shared-object operations as contract operations
    /// requiring global ordering, and so do we.
    Add(Value),
    /// Read a shared object (contract input).
    Read,
}

impl Operation {
    /// Is this the incremental operation on an owned object?
    #[inline]
    pub fn is_incremental(&self) -> bool {
        matches!(self, Operation::Credit(_))
    }

    /// Is this the decremental operation on an owned object?
    #[inline]
    pub fn is_decremental(&self) -> bool {
        matches!(self, Operation::Debit(_))
    }

    /// Does this operation commute with every other operation that touches a
    /// *different* object, and with credits on the same object?
    ///
    /// Payment operations qualify; shared-object operations do not.
    #[inline]
    pub fn is_payment_op(&self) -> bool {
        matches!(self, Operation::Credit(_) | Operation::Debit(_))
    }

    /// The token amount moved by a payment operation (zero for contract
    /// operations).
    #[inline]
    pub fn amount(&self) -> Amount {
        match self {
            Operation::Credit(a) | Operation::Debit(a) => *a,
            _ => 0,
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operation::Credit(a) => write!(f, "+{a}"),
            Operation::Debit(a) => write!(f, "-{a}"),
            Operation::Set(v) => write!(f, ":={v}"),
            Operation::Add(v) => write!(f, "+={v}"),
            Operation::Read => write!(f, "read"),
        }
    }
}

/// The condition (`con` in the paper) that must be satisfied after executing
/// an operation on the object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Condition {
    /// No condition: the operation always succeeds.
    #[default]
    None,
    /// The owned object's balance must remain at or above the given floor
    /// after the operation. `MinBalance(0)` is the ordinary "no overdraft"
    /// rule for debits.
    MinBalance(Amount),
}

impl Condition {
    /// Check the condition against a candidate post-operation balance.
    #[inline]
    pub fn allows_balance(&self, balance_after: i128) -> bool {
        match self {
            Condition::None => true,
            Condition::MinBalance(min) => balance_after >= i128::from(*min),
        }
    }
}

/// One entry of a transaction's object set: which object, what type it has,
/// which operation to apply and which condition must hold afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjectOp {
    /// Key of the object being touched.
    pub key: ObjectKey,
    /// Owned or shared.
    pub object_type: ObjectType,
    /// Operation to apply.
    pub op: Operation,
    /// Condition to check after applying the operation.
    pub condition: Condition,
}

impl ObjectOp {
    /// Credit `amount` tokens to the owned object `key` (a payee leg).
    pub fn credit(key: ObjectKey, amount: Amount) -> Self {
        Self {
            key,
            object_type: ObjectType::Owned,
            op: Operation::Credit(amount),
            condition: Condition::None,
        }
    }

    /// Debit `amount` tokens from the owned object `key` (a payer leg),
    /// subject to the no-overdraft condition.
    pub fn debit(key: ObjectKey, amount: Amount) -> Self {
        Self {
            key,
            object_type: ObjectType::Owned,
            op: Operation::Debit(amount),
            condition: Condition::MinBalance(0),
        }
    }

    /// Assign `value` to the shared object `key` (a contract write).
    pub fn set_shared(key: ObjectKey, value: Value) -> Self {
        Self {
            key,
            object_type: ObjectType::Shared,
            op: Operation::Set(value),
            condition: Condition::None,
        }
    }

    /// Add `delta` to the shared object `key` (a contract update).
    pub fn add_shared(key: ObjectKey, delta: Value) -> Self {
        Self {
            key,
            object_type: ObjectType::Shared,
            op: Operation::Add(delta),
            condition: Condition::None,
        }
    }

    /// Read the shared object `key` (a contract read).
    pub fn read_shared(key: ObjectKey) -> Self {
        Self {
            key,
            object_type: ObjectType::Shared,
            op: Operation::Read,
            condition: Condition::None,
        }
    }

    /// Is this a decremental operation on an owned object? These are the legs
    /// that determine bucket assignment (paper §V-A) and that must be
    /// escrowed before the transaction can commit (Algorithm 1, line 22).
    #[inline]
    pub fn is_owned_decrement(&self) -> bool {
        self.object_type == ObjectType::Owned && self.op.is_decremental()
    }

    /// Is this an incremental operation on an owned object (a payee leg)?
    #[inline]
    pub fn is_owned_increment(&self) -> bool {
        self.object_type == ObjectType::Owned && self.op.is_incremental()
    }

    /// Does this leg touch a shared object?
    #[inline]
    pub fn is_shared(&self) -> bool {
        self.object_type == ObjectType::Shared
    }
}

impl fmt::Display for ObjectOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ty = match self.object_type {
            ObjectType::Owned => "owned",
            ObjectType::Shared => "shared",
        };
        write!(f, "{}[{}]{}", self.key, ty, self.op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(k: u64) -> ObjectKey {
        ObjectKey::new(k)
    }

    #[test]
    fn operation_classification() {
        assert!(Operation::Credit(5).is_incremental());
        assert!(!Operation::Credit(5).is_decremental());
        assert!(Operation::Debit(5).is_decremental());
        assert!(Operation::Credit(5).is_payment_op());
        assert!(Operation::Debit(5).is_payment_op());
        assert!(!Operation::Set(1).is_payment_op());
        assert!(!Operation::Add(1).is_payment_op());
        assert!(!Operation::Read.is_payment_op());
    }

    #[test]
    fn operation_amounts() {
        assert_eq!(Operation::Credit(7).amount(), 7);
        assert_eq!(Operation::Debit(9).amount(), 9);
        assert_eq!(Operation::Set(3).amount(), 0);
    }

    #[test]
    fn debit_leg_carries_no_overdraft_condition() {
        let leg = ObjectOp::debit(key(1), 10);
        assert!(leg.is_owned_decrement());
        assert_eq!(leg.condition, Condition::MinBalance(0));
        assert!(leg.condition.allows_balance(0));
        assert!(leg.condition.allows_balance(5));
        assert!(!leg.condition.allows_balance(-1));
    }

    #[test]
    fn credit_leg_is_unconditional() {
        let leg = ObjectOp::credit(key(2), 10);
        assert!(leg.is_owned_increment());
        assert!(!leg.is_owned_decrement());
        assert_eq!(leg.condition, Condition::None);
        assert!(leg.condition.allows_balance(-100));
    }

    #[test]
    fn shared_legs_are_contract_legs() {
        assert!(ObjectOp::set_shared(key(9), 1).is_shared());
        assert!(ObjectOp::add_shared(key(9), 1).is_shared());
        assert!(ObjectOp::read_shared(key(9)).is_shared());
        assert!(!ObjectOp::set_shared(key(9), 1).is_owned_decrement());
    }

    #[test]
    fn min_balance_condition_respects_floor() {
        let c = Condition::MinBalance(100);
        assert!(c.allows_balance(100));
        assert!(c.allows_balance(101));
        assert!(!c.allows_balance(99));
    }

    #[test]
    fn display_is_readable() {
        let leg = ObjectOp::debit(key(0xAB), 3);
        let text = leg.to_string();
        assert!(text.contains("owned"));
        assert!(text.contains("-3"));
    }
}
