//! # orthrus-types
//!
//! Core data model for the Orthrus Multi-BFT reproduction.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! * [`ids`] — strongly typed identifiers (replicas, instances, clients,
//!   transactions, sequence numbers, epochs, ranks).
//! * [`crypto`] — simulated cryptographic primitives (digests, signatures and
//!   a public-key infrastructure). The simulation does not need real
//!   cryptography, but the types preserve the structure of the paper's model
//!   (§III-A): every replica owns a key pair and signs blocks and messages.
//! * [`object`] — the object-centric data model of §III-B: owned and shared
//!   objects, incremental/decremental/assignment operations and conditions.
//! * [`transaction`] — payment and contract transactions over objects.
//! * [`block`] — blocks proposed by sequenced-broadcast instance leaders.
//! * [`checkpoint`] — quorum-certified stable checkpoints, the low-water
//!   marks behind log truncation and crash recovery.
//! * [`state`] — the Multi-BFT system state `S = (sn_0, …, sn_{m-1})`.
//! * [`config`] — protocol-level configuration shared by all protocols.
//! * [`time`] — virtual time used by the discrete-event simulation.
//! * [`rng`] — deterministic pseudo-random number generation (the workspace
//!   builds offline, so it carries its own seeded generator instead of
//!   depending on the `rand` crate).
//! * [`hash`] — a seedless Fx hasher for the hot in-memory maps (faster and
//!   run-to-run stable, unlike `std`'s keyed SipHash).
//! * [`error`] — the common error type.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod checkpoint;
pub mod config;
pub mod crypto;
pub mod error;
pub mod hash;
pub mod ids;
pub mod object;
pub mod pool;
pub mod profiling;
pub mod rng;
pub mod state;
pub mod time;
pub mod transaction;

pub use block::{Block, BlockHeader, BlockId, BlockParams, SharedBlock};
pub use checkpoint::{CheckpointProof, StableCheckpoint};
pub use config::{EngineMode, ExecutionMode, NetworkKind, ProtocolConfig, ProtocolKind};
pub use crypto::{Digest, KeyPair, PublicKey, Signature};
pub use error::{OrthrusError, Result};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use ids::{ClientId, Epoch, InstanceId, ObjectKey, Rank, ReplicaId, SeqNum, TxId, View};
pub use object::{Amount, Condition, ObjectOp, ObjectType, Operation, Value};
pub use profiling::ProfTimer;
pub use state::SystemState;
pub use time::{Duration, SimTime};
pub use transaction::{SharedTx, Transaction, TxKind};
