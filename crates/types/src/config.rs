//! Protocol-level configuration shared by Orthrus and the baseline
//! Multi-BFT protocols.

use crate::error::{OrthrusError, Result};
use crate::time::Duration;
use std::fmt;

/// Which Multi-BFT protocol a replica runs. All protocols share the same
/// chassis (partition → SB instances → ordering → execution) and differ in
/// their global ordering / execution policy, mirroring the paper's
/// methodology of building every comparator on the ISS platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Orthrus: partial ordering fast path for payments + Ladon-style dynamic
    /// global ordering for contract transactions + escrow (this paper).
    Orthrus,
    /// ISS (EuroSys '22): pre-determined global ordering with no-op filling.
    Iss,
    /// Mir-BFT (JSys '22): pre-determined global ordering, epoch change on
    /// leader failure.
    MirBft,
    /// RCC (ICDE '21): pre-determined (round-robin) global ordering with
    /// per-instance recovery.
    Rcc,
    /// DQBFT (VLDB '22): a dedicated ordering instance sequences the blocks
    /// delivered by all other instances.
    Dqbft,
    /// Ladon (EuroSys '25): rank-based dynamic global ordering.
    Ladon,
}

impl ProtocolKind {
    /// All protocols evaluated in the paper, in the order used by its plots.
    pub const ALL: [ProtocolKind; 6] = [
        ProtocolKind::Orthrus,
        ProtocolKind::Iss,
        ProtocolKind::Rcc,
        ProtocolKind::MirBft,
        ProtocolKind::Dqbft,
        ProtocolKind::Ladon,
    ];

    /// Does this protocol order the global log with a pre-determined
    /// (sequence-number interleaved) schedule? Those are the protocols the
    /// paper groups as "pre-determined Multi-BFT" and that suffer most from
    /// stragglers.
    pub fn is_predetermined(self) -> bool {
        matches!(
            self,
            ProtocolKind::Iss | ProtocolKind::MirBft | ProtocolKind::Rcc
        )
    }

    /// Short label used by the benchmark harness output (matches the paper's
    /// figure legends).
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::Orthrus => "Orthrus",
            ProtocolKind::Iss => "ISS",
            ProtocolKind::MirBft => "Mir",
            ProtocolKind::Rcc => "RCC",
            ProtocolKind::Dqbft => "DQBFT",
            ProtocolKind::Ladon => "Ladon",
        }
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How a replica executes the payment fast path over its partial logs.
///
/// All three modes are bit-identical by construction — the differential
/// tests pin identical outcomes, state digests and per-shard op counters
/// under `ORTHRUS_SWEEP_THREADS ∈ {1, 4}` in CI — so the mode is purely a
/// performance choice. `Serial` stays the oracle the other two are pinned
/// against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutionMode {
    /// The single-threaded reference walk: one `process_plog_tx` call per
    /// occurrence, in schedule order.
    Serial,
    /// The PR 3 sharded scheduler: payments whose keys all live on their own
    /// instance's shard run on per-shard workers; everything touching a key
    /// a cross-shard occurrence also touches is demoted (with a forward
    /// cascade) to the serial merge lane.
    ShardedDemotion,
    /// Block-STM style optimistic execution: every occurrence executes
    /// speculatively against a multi-version view, is validated in schedule
    /// order (re-executing with a bumped incarnation on read-set conflict),
    /// and validated write-sets are folded into the store per shard. No
    /// serial lane, no hot-key cascade.
    OptimisticStm,
}

impl ExecutionMode {
    /// All execution modes, in oracle-first order.
    pub const ALL: [ExecutionMode; 3] = [
        ExecutionMode::Serial,
        ExecutionMode::ShardedDemotion,
        ExecutionMode::OptimisticStm,
    ];

    /// The spec-file name of the mode (`execution_mode = <name>`).
    pub fn name(self) -> &'static str {
        match self {
            ExecutionMode::Serial => "serial",
            ExecutionMode::ShardedDemotion => "sharded",
            ExecutionMode::OptimisticStm => "stm",
        }
    }

    /// Parse a spec-file mode name (the long aliases are accepted for
    /// readability in hand-written specs).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "serial" => Some(ExecutionMode::Serial),
            "sharded" | "sharded_demotion" => Some(ExecutionMode::ShardedDemotion),
            "stm" | "optimistic_stm" => Some(ExecutionMode::OptimisticStm),
            _ => None,
        }
    }

    /// Does this mode hand work to pool threads at all?
    pub fn is_parallel(self) -> bool {
        !matches!(self, ExecutionMode::Serial)
    }
}

impl fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How the discrete-event engine walks a scenario's event queue.
///
/// Both modes are bit-identical by construction — the parallel scheduler is
/// a conservative time-window scheme whose barrier replay reproduces the
/// serial walk's queue bookkeeping exactly, and the differential tests pin
/// identical outcomes and digests under `ORTHRUS_SWEEP_THREADS ∈ {1, 4}` in
/// CI — so the mode is purely a performance choice. `Serial` stays the
/// oracle `Parallel` is pinned against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineMode {
    /// The single-threaded reference walk: pop one event, dispatch, repeat.
    #[default]
    Serial,
    /// Conservative time-window parallelism: per-actor lanes execute a
    /// lookahead window's events concurrently, merged at a deterministic
    /// barrier. Windows overlapping fault activity fall back to serial.
    Parallel,
}

impl EngineMode {
    /// All engine modes, oracle first.
    pub const ALL: [EngineMode; 2] = [EngineMode::Serial, EngineMode::Parallel];

    /// The spec-file name of the mode (`engine_mode = <name>`).
    pub fn name(self) -> &'static str {
        match self {
            EngineMode::Serial => "serial",
            EngineMode::Parallel => "parallel",
        }
    }

    /// Parse a spec-file mode name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "serial" => Some(EngineMode::Serial),
            "parallel" | "windows" => Some(EngineMode::Parallel),
            _ => None,
        }
    }
}

impl fmt::Display for EngineMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which network environment the evaluation runs in (paper §VII-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkKind {
    /// Single data centre, 1 Gbps links, sub-millisecond latency.
    Lan,
    /// Four regions (France, United States, Australia, Tokyo), 1 Gbps links.
    Wan,
}

impl fmt::Display for NetworkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkKind::Lan => f.write_str("LAN"),
            NetworkKind::Wan => f.write_str("WAN"),
        }
    }
}

/// Configuration of a Multi-BFT deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolConfig {
    /// Number of replicas `n`.
    pub num_replicas: u32,
    /// Number of SB instances `m`. The paper's evaluation uses `m = n`
    /// (every replica leads one instance).
    pub num_instances: u32,
    /// Maximum number of transactions per block (paper: 4096).
    pub batch_size: usize,
    /// Client payload per transaction in bytes (paper: 500).
    pub payload_bytes: u32,
    /// Number of sequence numbers assigned to each instance per epoch.
    pub epoch_length: u64,
    /// How long a leader waits for a full batch before proposing whatever its
    /// bucket holds (possibly a no-op block).
    pub batch_timeout: Duration,
    /// PBFT view-change timeout (paper §VII-E uses 10 s).
    pub view_change_timeout: Duration,
    /// Interval, in sequence numbers, between PBFT checkpoints inside an
    /// instance.
    pub checkpoint_interval: u64,
    /// Per-message processing cost charged by the simulation for signature
    /// verification and bookkeeping at a replica.
    pub processing_delay: Duration,
    /// Number of client (load-generator) actors in the deployment. Logical
    /// client `c` is served by actor `c mod num_client_actors`; replicas use
    /// the same mapping to route replies.
    pub num_client_actors: u64,
    /// Maximum number of proposals a leader keeps in flight (beyond the
    /// delivered prefix) per instance. Deeper pipelining keeps NICs busier at
    /// large scale at the cost of more speculative state per instance.
    pub max_inflight_blocks: u64,
    /// How partial logs are executed (see [`ExecutionMode`]): the serial
    /// reference walk, the sharded demotion scheduler (soaked default), or
    /// Block-STM optimistic execution. All modes are bit-identical by
    /// construction (the differential tests pin this under
    /// `ORTHRUS_SWEEP_THREADS ∈ {1, 4}` in CI); scenarios pick per run
    /// (`Scenario::with_execution_mode`).
    pub execution_mode: ExecutionMode,
    /// Minimum number of transaction occurrences in a partial-log schedule
    /// before the sharded path hands work to pool threads. Below the
    /// threshold the same shard jobs run inline on the delivering thread —
    /// identical results (the jobs are the unit of determinism), no thread
    /// handoff latency for the small batches that dominate interactive
    /// scenarios.
    pub parallel_handoff_min_ops: usize,
    /// Truncate partial/global logs and PBFT slot bookkeeping at stable
    /// checkpoints. On by default — this is what bounds steady-state memory
    /// on long runs; the off switch exists for the differential tests and
    /// the `checkpoint` bench, which pin that truncation never changes
    /// reports or state digests.
    pub checkpoint_gc: bool,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        Self {
            num_replicas: 4,
            num_instances: 4,
            batch_size: 4096,
            payload_bytes: 500,
            epoch_length: 4,
            batch_timeout: Duration::from_millis(50),
            view_change_timeout: Duration::from_secs(10),
            checkpoint_interval: 4,
            processing_delay: Duration::from_micros(30),
            num_client_actors: 4,
            max_inflight_blocks: 4,
            execution_mode: ExecutionMode::ShardedDemotion,
            parallel_handoff_min_ops: 64,
            checkpoint_gc: true,
        }
    }
}

impl ProtocolConfig {
    /// Configuration for `n` replicas with `m = n` instances and the paper's
    /// evaluation defaults.
    pub fn for_replicas(n: u32) -> Self {
        Self {
            num_replicas: n,
            num_instances: n,
            ..Self::default()
        }
    }

    /// Maximum number of Byzantine replicas tolerated: `f = ⌊(n-1)/3⌋`.
    #[inline]
    pub fn max_faulty(&self) -> u32 {
        (self.num_replicas - 1) / 3
    }

    /// Quorum size `2f + 1`.
    #[inline]
    pub fn quorum(&self) -> u32 {
        2 * self.max_faulty() + 1
    }

    /// Number of matching replies a client needs before confirming a
    /// transaction (`f + 1`).
    #[inline]
    pub fn client_quorum(&self) -> u32 {
        self.max_faulty() + 1
    }

    /// The client actor serving a logical client id.
    #[inline]
    pub fn client_actor_of(&self, client: crate::ids::ClientId) -> crate::ids::ClientId {
        crate::ids::ClientId::new(client.value() % self.num_client_actors.max(1))
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.num_replicas < 4 {
            return Err(OrthrusError::Config(format!(
                "need at least 4 replicas for BFT, got {}",
                self.num_replicas
            )));
        }
        if self.num_replicas < 3 * self.max_faulty() + 1 {
            return Err(OrthrusError::Config(
                "replica count violates n >= 3f + 1".into(),
            ));
        }
        if self.num_instances == 0 {
            return Err(OrthrusError::Config("need at least one SB instance".into()));
        }
        if self.num_instances > self.num_replicas {
            return Err(OrthrusError::Config(format!(
                "more instances ({}) than replicas ({}) is not supported",
                self.num_instances, self.num_replicas
            )));
        }
        if self.batch_size == 0 {
            return Err(OrthrusError::Config("batch size must be positive".into()));
        }
        if self.epoch_length == 0 {
            return Err(OrthrusError::Config("epoch length must be positive".into()));
        }
        if self.max_inflight_blocks == 0 {
            return Err(OrthrusError::Config(
                "max_inflight_blocks must be at least 1 (a leader needs one slot in flight)".into(),
            ));
        }
        Ok(())
    }

    /// Replica that initially leads `instance` (view 0): with `m <= n` the
    /// leader of instance `i` is replica `i`.
    #[inline]
    pub fn initial_leader(&self, instance: crate::ids::InstanceId) -> crate::ids::ReplicaId {
        crate::ids::ReplicaId::new(instance.value() % self.num_replicas)
    }

    /// Leader of `instance` in `view`: rotates round-robin over replicas,
    /// starting from the initial leader.
    #[inline]
    pub fn leader_for_view(
        &self,
        instance: crate::ids::InstanceId,
        view: crate::ids::View,
    ) -> crate::ids::ReplicaId {
        let base = u64::from(instance.value());
        let v = view.value();
        crate::ids::ReplicaId::new(((base + v) % u64::from(self.num_replicas)) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{InstanceId, View};

    #[test]
    fn default_is_valid() {
        assert!(ProtocolConfig::default().validate().is_ok());
    }

    #[test]
    fn fault_thresholds() {
        let c = ProtocolConfig::for_replicas(4);
        assert_eq!(c.max_faulty(), 1);
        assert_eq!(c.quorum(), 3);
        assert_eq!(c.client_quorum(), 2);

        let c = ProtocolConfig::for_replicas(16);
        assert_eq!(c.max_faulty(), 5);
        assert_eq!(c.quorum(), 11);
        assert_eq!(c.client_quorum(), 6);

        let c = ProtocolConfig::for_replicas(128);
        assert_eq!(c.max_faulty(), 42);
        assert_eq!(c.quorum(), 85);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = ProtocolConfig::for_replicas(3);
        assert!(c.validate().is_err());
        c = ProtocolConfig::for_replicas(8);
        c.num_instances = 9;
        assert!(c.validate().is_err());
        c = ProtocolConfig::for_replicas(8);
        c.batch_size = 0;
        assert!(c.validate().is_err());
        c = ProtocolConfig::for_replicas(8);
        c.epoch_length = 0;
        assert!(c.validate().is_err());
        c = ProtocolConfig::for_replicas(8);
        c.num_instances = 0;
        assert!(c.validate().is_err());
        c = ProtocolConfig::for_replicas(8);
        c.max_inflight_blocks = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn inflight_depth_is_tunable_and_defaults_to_four() {
        let c = ProtocolConfig::default();
        assert_eq!(c.max_inflight_blocks, 4);
        let mut c = ProtocolConfig::for_replicas(16);
        c.max_inflight_blocks = 16;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn parallel_execution_defaults_on_with_opt_out() {
        let c = ProtocolConfig::default();
        assert_eq!(
            c.execution_mode,
            ExecutionMode::ShardedDemotion,
            "sharded path soaked; default is on"
        );
        assert!(c.execution_mode.is_parallel());
        assert!(c.checkpoint_gc, "checkpoint GC bounds memory by default");
        assert!(c.parallel_handoff_min_ops > 0);
        let mut c = ProtocolConfig::for_replicas(8);
        c.execution_mode = ExecutionMode::Serial;
        c.checkpoint_gc = false;
        assert!(c.validate().is_ok(), "both opt-outs stay valid");
    }

    #[test]
    fn execution_mode_names_round_trip() {
        for mode in ExecutionMode::ALL {
            assert_eq!(ExecutionMode::from_name(mode.name()), Some(mode));
            assert_eq!(mode.to_string(), mode.name());
        }
        assert_eq!(
            ExecutionMode::from_name("sharded_demotion"),
            Some(ExecutionMode::ShardedDemotion)
        );
        assert_eq!(
            ExecutionMode::from_name("optimistic_stm"),
            Some(ExecutionMode::OptimisticStm)
        );
        assert_eq!(ExecutionMode::from_name("turbo"), None);
        assert!(!ExecutionMode::Serial.is_parallel());
    }

    #[test]
    fn leader_rotation() {
        let c = ProtocolConfig::for_replicas(4);
        let i2 = InstanceId::new(2);
        assert_eq!(c.initial_leader(i2).value(), 2);
        assert_eq!(c.leader_for_view(i2, View::new(0)).value(), 2);
        assert_eq!(c.leader_for_view(i2, View::new(1)).value(), 3);
        assert_eq!(c.leader_for_view(i2, View::new(2)).value(), 0);
        assert_eq!(c.leader_for_view(i2, View::new(6)).value(), 0);
    }

    #[test]
    fn protocol_kind_grouping() {
        assert!(ProtocolKind::Iss.is_predetermined());
        assert!(ProtocolKind::MirBft.is_predetermined());
        assert!(ProtocolKind::Rcc.is_predetermined());
        assert!(!ProtocolKind::Orthrus.is_predetermined());
        assert!(!ProtocolKind::Ladon.is_predetermined());
        assert!(!ProtocolKind::Dqbft.is_predetermined());
        assert_eq!(ProtocolKind::ALL.len(), 6);
    }

    #[test]
    fn labels_match_figures() {
        assert_eq!(ProtocolKind::Orthrus.to_string(), "Orthrus");
        assert_eq!(ProtocolKind::MirBft.to_string(), "Mir");
        assert_eq!(NetworkKind::Wan.to_string(), "WAN");
    }
}
