//! Simulated cryptographic primitives.
//!
//! The paper assumes a PKI: every replica `r_i` holds a key pair
//! `(pk_i, sk_i)` and the adversary cannot forge signatures (§III-A). Inside
//! a deterministic simulation real cryptography would only add CPU cost
//! without changing protocol behaviour, so this module provides *structural*
//! stand-ins:
//!
//! * [`Digest`] — a 64-bit content hash computed with a fast FNV-1a style
//!   hasher. Collisions are astronomically unlikely for the workloads used
//!   here and the digest is only used for equality checks (matching
//!   pre-prepares, checkpoint digests, block ids).
//! * [`Signature`] / [`KeyPair`] / [`PublicKey`] — a signature is the pair
//!   (signer, keyed digest). Verification recomputes the keyed digest; an
//!   adversary inside the simulation can only "forge" a signature by calling
//!   `sign` with a key pair it owns, which matches the computationally
//!   bounded adversary of the model.
//!
//! Nothing in the rest of the workspace depends on these being real
//! primitives, so swapping in `ed25519`/`sha2` for a networked deployment
//! would be a local change.

use crate::ids::ReplicaId;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A 64-bit content digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Digest(pub u64);

impl Digest {
    /// Digest of the empty byte string.
    pub const EMPTY: Digest = Digest(FNV_OFFSET);

    /// Compute the digest of a byte slice.
    pub fn of_bytes(bytes: &[u8]) -> Self {
        let mut h = FnvHasher::default();
        h.write(bytes);
        Digest(h.finish())
    }

    /// Compute the digest of any hashable value.
    ///
    /// This routes the value's [`Hash`] implementation through the same
    /// deterministic FNV hasher used for byte slices, so digests are stable
    /// across runs and platforms (unlike `std::collections::hash_map`'s
    /// randomly-seeded default hasher).
    pub fn of<T: Hash + ?Sized>(value: &T) -> Self {
        let mut h = FnvHasher::default();
        value.hash(&mut h);
        Digest(h.finish())
    }

    /// Combine two digests into one (order-sensitive).
    pub fn combine(self, other: Digest) -> Digest {
        let mut h = FnvHasher::default();
        h.write_u64(self.0);
        h.write_u64(other.0);
        Digest(h.finish())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x00000100000001B3;

/// Deterministic FNV-1a hasher used for digests.
///
/// `std`'s `DefaultHasher` is randomly seeded per process, which would break
/// run-to-run determinism of block ids and checkpoint digests; FNV-1a is
/// simple, fast and byte-order independent.
#[derive(Debug, Clone)]
pub struct FnvHasher {
    state: u64,
}

impl Default for FnvHasher {
    fn default() -> Self {
        Self { state: FNV_OFFSET }
    }
}

impl Hasher for FnvHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }
}

/// A public key. In the simulation the key is derived deterministically from
/// the owner identifier, so the PKI needs no setup phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PublicKey {
    /// Owner of the key (replica or client address space).
    pub owner: u64,
    key_material: u64,
}

/// A key pair (public + "secret" component).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyPair {
    /// The public half.
    pub public: PublicKey,
    secret: u64,
}

impl KeyPair {
    /// Derive the key pair of a replica. Deterministic, so every component of
    /// the simulation agrees on the PKI without message exchange.
    pub fn for_replica(replica: ReplicaId) -> Self {
        Self::derive(u64::from(replica.value()) | (1 << 63))
    }

    /// Derive the key pair for an arbitrary owner address (used for client
    /// accounts, whose decremental operations require the owner's signature).
    pub fn for_owner(owner: u64) -> Self {
        Self::derive(owner)
    }

    fn derive(owner: u64) -> Self {
        // Split-mix style diffusion so related owners do not get related key
        // material.
        let mut z = owner.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        let secret = z ^ (z >> 31);
        let key_material = secret.rotate_left(17) ^ 0xA5A5_A5A5_5A5A_5A5A;
        Self {
            public: PublicKey {
                owner,
                key_material,
            },
            secret,
        }
    }

    /// Sign a digest.
    pub fn sign(&self, digest: Digest) -> Signature {
        Signature {
            signer: self.public,
            tag: Self::tag(self.secret, digest),
        }
    }

    fn tag(secret: u64, digest: Digest) -> u64 {
        let mut h = FnvHasher::default();
        h.write_u64(secret);
        h.write_u64(digest.0);
        h.finish()
    }
}

/// A signature over a digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Public key of the signer.
    pub signer: PublicKey,
    tag: u64,
}

impl Signature {
    /// Verify the signature against a digest.
    ///
    /// The verifier re-derives the signer's key pair from the public key's
    /// owner address; this models the paper's PKI where public keys are known
    /// to everyone.
    pub fn verify(&self, digest: Digest) -> bool {
        let expected = KeyPair::derive(self.signer.owner);
        expected.public == self.signer && KeyPair::tag(expected.secret, digest) == self.tag
    }

    /// A placeholder signature that never verifies. Used by Byzantine
    /// behaviours in fault-injection tests.
    pub fn invalid() -> Self {
        Signature {
            signer: PublicKey {
                owner: u64::MAX,
                key_material: 0,
            },
            tag: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic() {
        assert_eq!(Digest::of_bytes(b"orthrus"), Digest::of_bytes(b"orthrus"));
        assert_ne!(Digest::of_bytes(b"orthrus"), Digest::of_bytes(b"ladon"));
        assert_eq!(Digest::of(&(1u64, 2u64)), Digest::of(&(1u64, 2u64)));
        assert_ne!(Digest::of(&(1u64, 2u64)), Digest::of(&(2u64, 1u64)));
    }

    #[test]
    fn digest_combine_is_order_sensitive() {
        let a = Digest::of_bytes(b"a");
        let b = Digest::of_bytes(b"b");
        assert_ne!(a.combine(b), b.combine(a));
    }

    #[test]
    fn signatures_verify() {
        let kp = KeyPair::for_replica(ReplicaId::new(3));
        let d = Digest::of_bytes(b"block");
        let sig = kp.sign(d);
        assert!(sig.verify(d));
        assert!(!sig.verify(Digest::of_bytes(b"other block")));
    }

    #[test]
    fn signature_cannot_be_transplanted() {
        let kp1 = KeyPair::for_replica(ReplicaId::new(1));
        let kp2 = KeyPair::for_replica(ReplicaId::new(2));
        let d = Digest::of_bytes(b"block");
        let sig = kp1.sign(d);
        // A signature from replica 1 does not verify as replica 2's.
        assert_ne!(sig.signer, kp2.public);
        assert!(sig.verify(d));
    }

    #[test]
    fn invalid_signature_never_verifies() {
        assert!(!Signature::invalid().verify(Digest::of_bytes(b"anything")));
        assert!(!Signature::invalid().verify(Digest::EMPTY));
    }

    #[test]
    fn replica_and_owner_keyspaces_are_disjoint() {
        let r = KeyPair::for_replica(ReplicaId::new(5));
        let o = KeyPair::for_owner(5);
        assert_ne!(r.public, o.public);
    }
}
