//! Strongly typed identifiers used throughout the workspace.
//!
//! The paper's system model (§III) identifies replicas `r_0 … r_{n-1}`,
//! sequenced-broadcast instances `0 … m-1`, clients, transactions, sequence
//! numbers inside an instance, epochs, PBFT views and Ladon ranks. Each gets
//! a newtype so the compiler keeps the different number spaces apart.

use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $inner:ty) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// Construct a new identifier from its raw value.
            #[inline]
            pub const fn new(value: $inner) -> Self {
                Self(value)
            }

            /// Return the raw value of the identifier.
            #[inline]
            pub const fn value(self) -> $inner {
                self.0
            }

            /// Return the identifier as a `usize`, for indexing into vectors.
            #[inline]
            pub const fn as_usize(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$inner> for $name {
            #[inline]
            fn from(value: $inner) -> Self {
                Self(value)
            }
        }

        impl From<$name> for $inner {
            #[inline]
            fn from(value: $name) -> Self {
                value.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({})", stringify!($name), self.0)
            }
        }
    };
}

id_newtype!(
    /// Identifier of a replica (`r_i` in the paper). Replicas are numbered
    /// `0 … n-1`; with `m = n` (the default in the evaluation) replica `i`
    /// initially leads instance `i`.
    ReplicaId,
    u32
);

id_newtype!(
    /// Identifier of a sequenced-broadcast (SB) instance, `0 … m-1`.
    InstanceId,
    u32
);

id_newtype!(
    /// Identifier of a client submitting transactions.
    ClientId,
    u64
);

id_newtype!(
    /// Sequence number of a block *within* an SB instance.
    SeqNum,
    u64
);

id_newtype!(
    /// Epoch number. Orthrus (like ISS and Ladon) runs in epochs; each epoch
    /// assigns a contiguous range of sequence numbers to every instance and
    /// ends with a checkpoint (paper §V, §V-D).
    Epoch,
    u64
);

id_newtype!(
    /// PBFT view number inside one SB instance. The leader of view `v` for
    /// instance `i` is replica `(i + v) mod n`.
    View,
    u64
);

id_newtype!(
    /// Ladon-style monotonic rank used by the dynamic global ordering
    /// algorithm (paper Appendix A). Blocks are globally ordered by
    /// `(rank, instance)`.
    Rank,
    u64
);

/// Unique identifier of a transaction.
///
/// In the paper a transaction carries an application-level `id`; in the
/// reproduction the identifier combines the submitting client and a
/// client-local sequence number, which keeps ids unique without coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TxId {
    /// Client that created the transaction.
    pub client: ClientId,
    /// Client-local sequence number.
    pub seq: u64,
}

impl TxId {
    /// Construct a transaction identifier.
    #[inline]
    pub const fn new(client: ClientId, seq: u64) -> Self {
        Self { client, seq }
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx({}:{})", self.client.0, self.seq)
    }
}

/// Key of an object (§III-B): a cryptographically unique identifier. For
/// owned objects (accounts) the key is the owner's address; for shared
/// objects it identifies a smart-contract record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ObjectKey(pub u64);

impl ObjectKey {
    /// Construct an object key from a raw address.
    #[inline]
    pub const fn new(value: u64) -> Self {
        Self(value)
    }

    /// Raw value of the key.
    #[inline]
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Key of the account object owned by `client`.
    ///
    /// The paper models every client's account as an owned object whose key
    /// is the owner's address; deriving it from the client id keeps the
    /// mapping deterministic.
    #[inline]
    pub const fn account_of(client: ClientId) -> Self {
        Self(client.0)
    }

    /// The shard (equivalently: SB instance / bucket, §V-A) responsible for
    /// this key when state is split `shards` ways: a hash of the key modulo
    /// `shards`. This is the single canonical routing function shared by the
    /// partition module (`Partitioner::assign`), the sharded `ObjectStore`
    /// and the sharded escrow log, so "the accounts instance `i` serialises"
    /// and "the objects shard `i` owns" are the same set by construction.
    #[inline]
    pub fn shard(self, shards: u32) -> u32 {
        let h = crate::crypto::Digest::of(&self).0;
        (h % u64::from(shards.max(1))) as u32
    }
}

impl fmt::Display for ObjectKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj({:#x})", self.0)
    }
}

impl From<u64> for ObjectKey {
    fn from(value: u64) -> Self {
        Self(value)
    }
}

impl SeqNum {
    /// The sequence number that follows `self`.
    #[inline]
    pub const fn next(self) -> Self {
        Self(self.0 + 1)
    }
}

impl Epoch {
    /// The epoch that follows `self`.
    #[inline]
    pub const fn next(self) -> Self {
        Self(self.0 + 1)
    }
}

impl View {
    /// The view that follows `self`.
    #[inline]
    pub const fn next(self) -> Self {
        Self(self.0 + 1)
    }
}

impl Rank {
    /// The rank that follows `self`.
    #[inline]
    pub const fn next(self) -> Self {
        Self(self.0 + 1)
    }

    /// The larger of two ranks.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newtype_roundtrip() {
        let r = ReplicaId::new(7);
        assert_eq!(r.value(), 7);
        assert_eq!(r.as_usize(), 7);
        assert_eq!(ReplicaId::from(7u32), r);
        assert_eq!(u32::from(r), 7);
    }

    #[test]
    fn display_formats_are_distinct() {
        assert_eq!(ReplicaId::new(3).to_string(), "ReplicaId(3)");
        assert_eq!(InstanceId::new(3).to_string(), "InstanceId(3)");
        assert_eq!(TxId::new(ClientId::new(1), 4).to_string(), "tx(1:4)");
    }

    #[test]
    fn ordering_follows_raw_values() {
        assert!(SeqNum::new(1) < SeqNum::new(2));
        assert!(Rank::new(10) > Rank::new(9));
        assert_eq!(Rank::new(4).max(Rank::new(9)), Rank::new(9));
    }

    #[test]
    fn successors() {
        assert_eq!(SeqNum::new(0).next(), SeqNum::new(1));
        assert_eq!(Epoch::new(3).next(), Epoch::new(4));
        assert_eq!(View::new(3).next(), View::new(4));
        assert_eq!(Rank::new(3).next(), Rank::new(4));
    }

    #[test]
    fn account_key_derivation_is_stable() {
        let c = ClientId::new(42);
        assert_eq!(ObjectKey::account_of(c), ObjectKey::new(42));
    }

    #[test]
    fn tx_id_ordering_groups_by_client_then_seq() {
        let a = TxId::new(ClientId::new(1), 5);
        let b = TxId::new(ClientId::new(1), 6);
        let c = TxId::new(ClientId::new(2), 0);
        assert!(a < b);
        assert!(b < c);
    }
}
