//! Virtual time.
//!
//! The reproduction replaces the paper's AWS deployment with a deterministic
//! discrete-event simulation (see `DESIGN.md`). All protocol components —
//! timeouts, latency measurements, the network model — operate on the virtual
//! clock defined here. Time is measured in whole microseconds, which is more
//! than fine-grained enough for millisecond-scale network latencies while
//! keeping arithmetic exact.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time (microseconds since the start of the simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Self(us)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000)
    }

    /// Microseconds since the origin.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the origin, as a floating point number (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is in
    /// the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Self(us)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000)
    }

    /// Construct from a floating point number of seconds (rounds to the
    /// nearest microsecond, saturating at zero for negative inputs).
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        Self((secs.max(0.0) * 1e6).round() as u64)
    }

    /// Microseconds in the duration.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds in the duration (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds in the duration, as a floating point number.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiply the duration by a scalar factor (used for straggler slowdown
    /// factors), rounding to the nearest microsecond.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> Self {
        Self((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: Duration) -> Self {
        Self(self.0.saturating_sub(other.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(Duration::from_secs(2).as_millis(), 2_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + Duration::from_millis(500);
        assert_eq!(t, SimTime::from_millis(1_500));
        assert_eq!(t - SimTime::from_secs(1), Duration::from_millis(500));
        // Subtraction saturates rather than panicking: elapsed time queries
        // against a future timestamp yield zero.
        assert_eq!(
            SimTime::from_secs(1) - SimTime::from_secs(2),
            Duration::ZERO
        );
    }

    #[test]
    fn float_conversions() {
        assert!((Duration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-9);
        assert_eq!(Duration::from_secs_f64(0.25), Duration::from_millis(250));
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
    }

    #[test]
    fn straggler_scaling() {
        assert_eq!(
            Duration::from_millis(10).mul_f64(10.0),
            Duration::from_millis(100)
        );
        assert_eq!(
            Duration::from_millis(10).mul_f64(0.5),
            Duration::from_millis(5)
        );
    }

    #[test]
    fn saturating_since() {
        let a = SimTime::from_secs(3);
        let b = SimTime::from_secs(5);
        assert_eq!(b.saturating_since(a), Duration::from_secs(2));
        assert_eq!(a.saturating_since(b), Duration::ZERO);
    }
}
