//! Transactions (paper §III-B).
//!
//! A transaction `tx = (O, id, σ)` lists the objects it touches together
//! with the operation per object, carries a unique identifier and the owner
//! signatures authorising its decremental operations.
//!
//! Transactions fall into two categories:
//!
//! * **Payment transactions** involve only owned objects (credits and
//!   debits). They are conflict-free across payers and are the transactions
//!   Orthrus confirms through *partial ordering* alone.
//! * **Contract transactions** additionally touch shared objects (or use
//!   non-commutative operations) and must be confirmed through *global
//!   ordering*.

use crate::crypto::{Digest, KeyPair, Signature};
use crate::ids::{ClientId, ObjectKey, TxId};
use crate::object::{Amount, ObjectOp, Operation};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A reference-counted handle to an immutable transaction.
///
/// A transaction enters the system once (at the client) and is then
/// referenced — by buckets, blocks, partial logs and the global log — through
/// this shared handle; no layer copies the payload.
pub type SharedTx = Arc<Transaction>;

/// The category of a transaction, which determines its confirmation path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxKind {
    /// Conflict-free transfer between owned objects; confirmed via partial
    /// ordering (the fast path).
    Payment,
    /// General transaction touching shared objects; confirmed via global
    /// ordering.
    Contract,
}

/// A transaction.
#[derive(Debug, Clone)]
pub struct Transaction {
    /// Unique identifier (client id + client-local sequence number).
    pub id: TxId,
    /// The set `O` of object operations.
    pub ops: Vec<ObjectOp>,
    /// Payment or contract.
    pub kind: TxKind,
    /// Signatures of the owners of all owned objects with decremental
    /// operations (σ in the paper). One signature per distinct payer.
    pub signatures: Vec<Signature>,
    /// Size of the client payload in bytes. The paper's evaluation uses
    /// 500-byte payloads; the network model charges bandwidth per byte.
    pub payload_bytes: u32,
    /// Memoized content digest: computed on first use, shared by every holder
    /// of the same [`SharedTx`] handle. Excluded from equality.
    digest_memo: OnceLock<Digest>,
}

impl PartialEq for Transaction {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
            && self.ops == other.ops
            && self.kind == other.kind
            && self.signatures == other.signatures
            && self.payload_bytes == other.payload_bytes
    }
}

impl Eq for Transaction {}

/// Default client payload size used by the paper's evaluation (§VII-A).
pub const DEFAULT_PAYLOAD_BYTES: u32 = 500;

impl Transaction {
    /// Build a single-payer, single-payee payment: `payer → payee` of
    /// `amount` tokens, signed by the payer.
    pub fn payment(id: TxId, payer: ClientId, payee: ClientId, amount: Amount) -> Self {
        Self::multi_payment(id, &[(payer, amount)], &[(payee, amount)])
    }

    /// Build a multi-payer / multi-payee payment. Each payer entry debits the
    /// payer by the given amount; each payee entry credits the payee. Entries
    /// naming the same payer are aggregated into one debit leg (a transaction
    /// carries at most one decremental operation per object, matching the
    /// paper's object-set model).
    ///
    /// The paper splits such transactions into single-payer sub-transactions
    /// handled by (possibly) different instances and glues them back together
    /// with the escrow mechanism (§IV-C, Challenge-I).
    pub fn multi_payment(
        id: TxId,
        payers: &[(ClientId, Amount)],
        payees: &[(ClientId, Amount)],
    ) -> Self {
        let payers = Self::aggregate_payers(payers);
        let mut ops = Vec::with_capacity(payers.len() + payees.len());
        let mut signatures = Vec::with_capacity(payers.len());
        for &(key, amount) in &payers {
            ops.push(ObjectOp::debit(key, amount));
            let digest = Self::authorisation_digest(id, key, amount);
            signatures.push(KeyPair::for_owner(key.value()).sign(digest));
        }
        for &(payee, amount) in payees {
            ops.push(ObjectOp::credit(ObjectKey::account_of(payee), amount));
        }
        Self {
            id,
            ops,
            kind: TxKind::Payment,
            signatures,
            payload_bytes: DEFAULT_PAYLOAD_BYTES,
            digest_memo: OnceLock::new(),
        }
    }

    /// Merge payer entries naming the same account, preserving first-seen
    /// order.
    fn aggregate_payers(payers: &[(ClientId, Amount)]) -> Vec<(ObjectKey, Amount)> {
        let mut merged: Vec<(ObjectKey, Amount)> = Vec::with_capacity(payers.len());
        for &(payer, amount) in payers {
            let key = ObjectKey::account_of(payer);
            match merged.iter_mut().find(|(k, _)| *k == key) {
                Some((_, total)) => *total += amount,
                None => merged.push((key, amount)),
            }
        }
        merged
    }

    /// Build a contract transaction: the listed payers each pay `fee` into
    /// the contract, and the contract performs the given shared-object
    /// operations.
    ///
    /// This mirrors the running example of Appendix B: "a smart contract that
    /// requires two clients to invoke it together, incurring a cost of $1 per
    /// client".
    pub fn contract(id: TxId, payers: &[(ClientId, Amount)], shared_ops: Vec<ObjectOp>) -> Self {
        let payers = Self::aggregate_payers(payers);
        let mut ops = Vec::with_capacity(payers.len() + shared_ops.len());
        let mut signatures = Vec::with_capacity(payers.len());
        for &(key, amount) in &payers {
            ops.push(ObjectOp::debit(key, amount));
            let digest = Self::authorisation_digest(id, key, amount);
            signatures.push(KeyPair::for_owner(key.value()).sign(digest));
        }
        ops.extend(shared_ops);
        Self {
            id,
            ops,
            kind: TxKind::Contract,
            signatures,
            payload_bytes: DEFAULT_PAYLOAD_BYTES,
            digest_memo: OnceLock::new(),
        }
    }

    /// Construct a transaction from raw parts, inferring its kind.
    ///
    /// The kind is `Payment` iff every operation is a credit or debit on an
    /// owned object; otherwise it is `Contract`.
    pub fn from_ops(id: TxId, ops: Vec<ObjectOp>, signatures: Vec<Signature>) -> Self {
        let kind = if ops.iter().all(|o| !o.is_shared() && o.op.is_payment_op()) {
            TxKind::Payment
        } else {
            TxKind::Contract
        };
        Self {
            id,
            ops,
            kind,
            signatures,
            payload_bytes: DEFAULT_PAYLOAD_BYTES,
            digest_memo: OnceLock::new(),
        }
    }

    /// Override the payload size (bytes) carried by this transaction.
    pub fn with_payload_bytes(mut self, bytes: u32) -> Self {
        self.payload_bytes = bytes;
        // The payload size participates in the digest; a builder-style
        // override invalidates anything memoized on the intermediate value.
        self.digest_memo = OnceLock::new();
        self
    }

    /// Wrap the transaction into a shared handle (the form in which it moves
    /// through buckets, blocks and logs).
    pub fn into_shared(self) -> SharedTx {
        Arc::new(self)
    }

    /// Digest a payer's authorisation of a single debit leg.
    pub fn authorisation_digest(id: TxId, payer: ObjectKey, amount: Amount) -> Digest {
        Digest::of(&(id, payer, amount))
    }

    /// Digest of the whole transaction (used inside block digests). Memoized:
    /// every holder of the same shared handle pays the hash at most once.
    pub fn digest(&self) -> Digest {
        *self.digest_memo.get_or_init(|| self.compute_digest())
    }

    /// Recompute the digest from the contents, bypassing the memo. Integrity
    /// checks ([`crate::block::Block::verify`]) use this.
    pub fn compute_digest(&self) -> Digest {
        Digest::of(&(self.id, &self.ops, self.payload_bytes))
    }

    /// Is this a payment transaction (fast-path eligible)?
    #[inline]
    pub fn is_payment(&self) -> bool {
        self.kind == TxKind::Payment
    }

    /// Is this a contract transaction (requires global ordering)?
    #[inline]
    pub fn is_contract(&self) -> bool {
        self.kind == TxKind::Contract
    }

    /// Keys of the owned objects this transaction debits (the payers).
    /// Bucket assignment and escrow both iterate over exactly these legs.
    pub fn payers(&self) -> impl Iterator<Item = ObjectKey> + '_ {
        self.ops
            .iter()
            .filter(|o| o.is_owned_decrement())
            .map(|o| o.key)
    }

    /// Keys of the owned objects this transaction credits (the payees).
    pub fn payees(&self) -> impl Iterator<Item = ObjectKey> + '_ {
        self.ops
            .iter()
            .filter(|o| o.is_owned_increment())
            .map(|o| o.key)
    }

    /// Keys of the shared objects this transaction touches.
    pub fn shared_objects(&self) -> impl Iterator<Item = ObjectKey> + '_ {
        self.ops.iter().filter(|o| o.is_shared()).map(|o| o.key)
    }

    /// All object keys touched by this transaction.
    pub fn involved_keys(&self) -> impl Iterator<Item = ObjectKey> + '_ {
        self.ops.iter().map(|o| o.key)
    }

    /// Number of distinct payers.
    pub fn payer_count(&self) -> usize {
        let mut payers: Vec<ObjectKey> = self.payers().collect();
        payers.sort_unstable();
        payers.dedup();
        payers.len()
    }

    /// Does the transaction have more than one payer (and therefore span
    /// multiple buckets / instances)?
    pub fn is_multi_payer(&self) -> bool {
        self.payer_count() > 1
    }

    /// Total amount debited across all payer legs.
    pub fn total_debit(&self) -> Amount {
        self.ops
            .iter()
            .filter(|o| o.is_owned_decrement())
            .map(|o| o.op.amount())
            .sum()
    }

    /// Total amount credited across all payee legs.
    pub fn total_credit(&self) -> Amount {
        self.ops
            .iter()
            .filter(|o| o.is_owned_increment())
            .map(|o| o.op.amount())
            .sum()
    }

    /// Verify the structure and authorisation of the transaction (paper
    /// §V-A: "it verifies the validity of the transaction's format and checks
    /// the owner's signature").
    ///
    /// Checks performed:
    /// 1. the transaction touches at least one owned object (every
    ///    transaction is initiated by a client whose account is owned);
    /// 2. a payment transaction contains no shared-object legs;
    /// 3. every owned-object debit leg is covered by a valid signature of the
    ///    object's owner.
    pub fn validate(&self) -> crate::error::Result<()> {
        use crate::error::OrthrusError;
        if !self
            .ops
            .iter()
            .any(|o| o.object_type == crate::object::ObjectType::Owned)
        {
            return Err(OrthrusError::InvalidTransaction {
                id: self.id,
                reason: "transaction must involve at least one owned object".into(),
            });
        }
        if self.kind == TxKind::Payment && self.ops.iter().any(|o| o.is_shared()) {
            return Err(OrthrusError::InvalidTransaction {
                id: self.id,
                reason: "payment transaction must not touch shared objects".into(),
            });
        }
        // At most one decremental operation per object: the escrow log keys
        // reservations by (object, transaction), so duplicate debit legs on
        // the same account would alias each other.
        let mut debit_keys: Vec<ObjectKey> = self
            .ops
            .iter()
            .filter(|o| o.is_owned_decrement())
            .map(|o| o.key)
            .collect();
        let distinct = {
            let mut d = debit_keys.clone();
            d.sort_unstable();
            d.dedup();
            d.len()
        };
        if distinct != debit_keys.len() {
            debit_keys.sort_unstable();
            return Err(OrthrusError::InvalidTransaction {
                id: self.id,
                reason: "duplicate decremental operations on the same object".into(),
            });
        }
        for leg in self.ops.iter().filter(|o| o.is_owned_decrement()) {
            let amount = match leg.op {
                Operation::Debit(a) => a,
                _ => unreachable!("is_owned_decrement implies Debit"),
            };
            let digest = Self::authorisation_digest(self.id, leg.key, amount);
            let authorised = self
                .signatures
                .iter()
                .any(|sig| sig.signer.owner == leg.key.value() && sig.verify(digest));
            if !authorised {
                return Err(OrthrusError::MissingAuthorisation {
                    id: self.id,
                    payer: leg.key,
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            TxKind::Payment => "payment",
            TxKind::Contract => "contract",
        };
        write!(f, "{} {} ({} ops)", kind, self.id, self.ops.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;

    fn tx_id(seq: u64) -> TxId {
        TxId::new(ClientId::new(1), seq)
    }

    #[test]
    fn simple_payment_shape() {
        let tx = Transaction::payment(tx_id(0), ClientId::new(1), ClientId::new(2), 10);
        assert!(tx.is_payment());
        assert!(!tx.is_multi_payer());
        assert_eq!(tx.payers().collect::<Vec<_>>(), vec![ObjectKey::new(1)]);
        assert_eq!(tx.payees().collect::<Vec<_>>(), vec![ObjectKey::new(2)]);
        assert_eq!(tx.total_debit(), 10);
        assert_eq!(tx.total_credit(), 10);
        assert!(tx.validate().is_ok());
    }

    #[test]
    fn multi_payer_payment_spans_buckets() {
        let tx = Transaction::multi_payment(
            tx_id(1),
            &[(ClientId::new(1), 1), (ClientId::new(2), 1)],
            &[(ClientId::new(3), 2)],
        );
        assert!(tx.is_payment());
        assert!(tx.is_multi_payer());
        assert_eq!(tx.payer_count(), 2);
        assert_eq!(tx.total_debit(), 2);
        assert_eq!(tx.total_credit(), 2);
        assert!(tx.validate().is_ok());
    }

    #[test]
    fn contract_transaction_is_detected() {
        let tx = Transaction::contract(
            tx_id(2),
            &[(ClientId::new(1), 1), (ClientId::new(2), 1)],
            vec![ObjectOp::set_shared(ObjectKey::new(999), 42)],
        );
        assert!(tx.is_contract());
        assert_eq!(tx.shared_objects().count(), 1);
        assert_eq!(tx.payer_count(), 2);
        assert!(tx.validate().is_ok());
    }

    #[test]
    fn kind_inference_from_ops() {
        let payment_ops = vec![
            ObjectOp::debit(ObjectKey::new(1), 5),
            ObjectOp::credit(ObjectKey::new(2), 5),
        ];
        let tx = Transaction::from_ops(tx_id(3), payment_ops, vec![]);
        assert_eq!(tx.kind, TxKind::Payment);

        let contract_ops = vec![
            ObjectOp::debit(ObjectKey::new(1), 5),
            ObjectOp::set_shared(ObjectKey::new(7), 1),
        ];
        let tx = Transaction::from_ops(tx_id(4), contract_ops, vec![]);
        assert_eq!(tx.kind, TxKind::Contract);
    }

    #[test]
    fn validation_rejects_missing_signature() {
        let ops = vec![
            ObjectOp::debit(ObjectKey::new(1), 5),
            ObjectOp::credit(ObjectKey::new(2), 5),
        ];
        let tx = Transaction::from_ops(tx_id(5), ops, vec![]);
        assert!(tx.validate().is_err());
    }

    #[test]
    fn validation_rejects_wrong_signer() {
        let id = tx_id(6);
        let ops = vec![
            ObjectOp::debit(ObjectKey::new(1), 5),
            ObjectOp::credit(ObjectKey::new(2), 5),
        ];
        // Signature from the wrong owner (account 2 signs account 1's debit).
        let digest = Transaction::authorisation_digest(id, ObjectKey::new(1), 5);
        let sig = KeyPair::for_owner(2).sign(digest);
        let tx = Transaction::from_ops(id, ops, vec![sig]);
        assert!(tx.validate().is_err());
    }

    #[test]
    fn validation_rejects_payment_with_shared_object() {
        let id = tx_id(7);
        let mut tx = Transaction::payment(id, ClientId::new(1), ClientId::new(2), 1);
        tx.ops.push(ObjectOp::set_shared(ObjectKey::new(9), 1));
        // kind still says Payment, so validation must flag the inconsistency.
        assert!(tx.validate().is_err());
    }

    #[test]
    fn validation_requires_an_owned_object() {
        let id = tx_id(8);
        let tx =
            Transaction::from_ops(id, vec![ObjectOp::set_shared(ObjectKey::new(9), 1)], vec![]);
        assert!(tx.validate().is_err());
    }

    #[test]
    fn digest_changes_with_content() {
        let a = Transaction::payment(tx_id(9), ClientId::new(1), ClientId::new(2), 10);
        let b = Transaction::payment(tx_id(9), ClientId::new(1), ClientId::new(2), 11);
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.digest(), a.clone().digest());
    }

    #[test]
    fn payload_override() {
        let tx = Transaction::payment(tx_id(10), ClientId::new(1), ClientId::new(2), 10)
            .with_payload_bytes(128);
        assert_eq!(tx.payload_bytes, 128);
    }
}
