//! The partition module (paper §V-A): assigning transactions to buckets.
//!
//! Each owned object maps to exactly one bucket / SB instance via the
//! `assign` function (hash of the object key modulo `m`). A transaction is
//! pushed into the bucket of every owned object it debits, so all
//! transactions spending from the same account are serialised by the same
//! instance — which is what prevents double spending without global
//! ordering.

use orthrus_types::{InstanceId, ObjectKey, SharedTx, Transaction, TxId};
use std::collections::{HashSet, VecDeque};

/// The deterministic object → instance assignment function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partitioner {
    num_instances: u32,
}

impl Partitioner {
    /// Create the partitioner for `m` instances.
    pub fn new(num_instances: u32) -> Self {
        Self {
            num_instances: num_instances.max(1),
        }
    }

    /// Number of instances.
    pub fn num_instances(&self) -> u32 {
        self.num_instances
    }

    /// The bucket/instance responsible for an owned object: a hash of the
    /// key modulo `m`, as suggested by the paper. Hashing (rather than the
    /// raw key) spreads adjacent account addresses across instances. The
    /// routing function itself lives on [`ObjectKey::shard`] so the sharded
    /// object store and escrow log agree with the partition module about
    /// which instance owns which account.
    pub fn assign(&self, key: ObjectKey) -> InstanceId {
        InstanceId::new(key.shard(self.num_instances))
    }

    /// The set of instances a transaction is assigned to: one per distinct
    /// payer bucket. Transactions without payers (which validation rejects)
    /// fall back to instance 0 so they are still handled somewhere.
    pub fn instances_of(&self, tx: &Transaction) -> Vec<InstanceId> {
        let mut instances: Vec<InstanceId> = tx.payers().map(|key| self.assign(key)).collect();
        instances.sort_unstable();
        instances.dedup();
        if instances.is_empty() {
            instances.push(InstanceId::new(0));
        }
        instances
    }
}

/// A bucket of pending transactions for one SB instance.
///
/// Backups treat the bucket as append-only; the instance's leader pulls
/// batches from the front. Delivered transactions are removed everywhere so
/// that a new leader (after a view change) does not re-propose them.
#[derive(Debug, Clone, Default)]
pub struct Bucket {
    queue: VecDeque<SharedTx>,
    known: HashSet<TxId>,
    delivered: HashSet<TxId>,
}

impl Bucket {
    /// An empty bucket.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pending transactions.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Is the bucket empty?
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Push a transaction unless it is already known (pending or delivered).
    /// Returns whether it was added. The bucket stores the shared handle the
    /// request arrived in — a multi-payer transaction queued in several
    /// buckets still exists once in memory.
    pub fn push(&mut self, tx: SharedTx) -> bool {
        if self.known.contains(&tx.id) || self.delivered.contains(&tx.id) {
            return false;
        }
        self.known.insert(tx.id);
        self.queue.push_back(tx);
        true
    }

    /// Pull up to `max` transactions from the front of the bucket that
    /// satisfy `valid`. Transactions that fail the predicate stay in the
    /// bucket (they may become valid later, e.g. once a credit arrives).
    pub fn pull<F: FnMut(&Transaction) -> bool>(
        &mut self,
        max: usize,
        mut valid: F,
    ) -> Vec<SharedTx> {
        let mut pulled = Vec::new();
        let mut skipped = VecDeque::new();
        while pulled.len() < max {
            let Some(tx) = self.queue.pop_front() else {
                break;
            };
            if self.delivered.contains(&tx.id) {
                self.known.remove(&tx.id);
                continue;
            }
            if valid(&tx) {
                self.known.remove(&tx.id);
                pulled.push(tx);
            } else {
                skipped.push_back(tx);
            }
        }
        // Skipped transactions keep their relative order at the front.
        while let Some(tx) = skipped.pop_back() {
            self.queue.push_front(tx);
        }
        pulled
    }

    /// Mark a transaction as delivered by the instance: it will never be
    /// proposed from this bucket again and is dropped lazily if still queued.
    pub fn mark_delivered(&mut self, id: TxId) {
        self.delivered.insert(id);
    }

    /// Does the bucket still hold undelivered transactions?
    pub fn has_pending(&self) -> bool {
        self.queue.iter().any(|tx| !self.delivered.contains(&tx.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_types::{ClientId, ObjectOp};

    fn tx(client: u64, seq: u64) -> SharedTx {
        Transaction::payment(
            TxId::new(ClientId::new(client), seq),
            ClientId::new(client),
            ClientId::new(client + 1),
            1,
        )
        .into_shared()
    }

    #[test]
    fn assignment_is_deterministic_and_in_range() {
        let p = Partitioner::new(8);
        for k in 0..1_000u64 {
            let a = p.assign(ObjectKey::new(k));
            let b = p.assign(ObjectKey::new(k));
            assert_eq!(a, b);
            assert!(a.value() < 8);
        }
    }

    #[test]
    fn assignment_spreads_keys_across_instances() {
        let p = Partitioner::new(4);
        let mut counts = [0u32; 4];
        for k in 0..4_000u64 {
            counts[p.assign(ObjectKey::new(k)).as_usize()] += 1;
        }
        for c in counts {
            assert!(c > 600, "unbalanced buckets: {counts:?}");
        }
    }

    #[test]
    fn multi_payer_transactions_map_to_multiple_instances() {
        let p = Partitioner::new(16);
        // Find two clients that land in different buckets.
        let (a, b) = (0..100u64)
            .flat_map(|x| (0..100u64).map(move |y| (x, y)))
            .find(|(x, y)| x != y && p.assign(ObjectKey::new(*x)) != p.assign(ObjectKey::new(*y)))
            .unwrap();
        let tx = Transaction::multi_payment(
            TxId::new(ClientId::new(a), 0),
            &[(ClientId::new(a), 1), (ClientId::new(b), 1)],
            &[(ClientId::new(1_000), 2)],
        );
        assert_eq!(p.instances_of(&tx).len(), 2);
        let single = Transaction::payment(
            TxId::new(ClientId::new(a), 1),
            ClientId::new(a),
            ClientId::new(b),
            1,
        );
        assert_eq!(p.instances_of(&single).len(), 1);
    }

    #[test]
    fn payee_does_not_influence_assignment() {
        let p = Partitioner::new(8);
        let t1 = Transaction::payment(
            TxId::new(ClientId::new(5), 0),
            ClientId::new(5),
            ClientId::new(6),
            1,
        );
        let t2 = Transaction::payment(
            TxId::new(ClientId::new(5), 1),
            ClientId::new(5),
            ClientId::new(7),
            1,
        );
        assert_eq!(p.instances_of(&t1), p.instances_of(&t2));
    }

    #[test]
    fn contract_without_payers_falls_back_to_instance_zero() {
        let p = Partitioner::new(8);
        let tx = Transaction::from_ops(
            TxId::new(ClientId::new(1), 0),
            vec![ObjectOp::set_shared(ObjectKey::new(999), 1)],
            vec![],
        );
        assert_eq!(p.instances_of(&tx), vec![InstanceId::new(0)]);
    }

    #[test]
    fn bucket_dedups_and_preserves_fifo() {
        let mut bucket = Bucket::new();
        assert!(bucket.push(tx(1, 0)));
        assert!(bucket.push(tx(2, 0)));
        assert!(!bucket.push(tx(1, 0)));
        assert_eq!(bucket.len(), 2);
        let pulled = bucket.pull(10, |_| true);
        assert_eq!(pulled.len(), 2);
        assert_eq!(pulled[0].id, TxId::new(ClientId::new(1), 0));
        assert!(bucket.is_empty());
    }

    #[test]
    fn pull_respects_batch_size_and_validity() {
        let mut bucket = Bucket::new();
        for i in 0..5 {
            bucket.push(tx(1, i));
        }
        // Only even sequence numbers are "valid" right now.
        let pulled = bucket.pull(10, |t| t.id.seq % 2 == 0);
        assert_eq!(pulled.len(), 3);
        assert_eq!(bucket.len(), 2);
        // The skipped ones are still there, in order.
        let rest = bucket.pull(10, |_| true);
        assert_eq!(rest[0].id.seq, 1);
        assert_eq!(rest[1].id.seq, 3);
        // Batch size limit.
        for i in 10..20 {
            bucket.push(tx(1, i));
        }
        assert_eq!(bucket.pull(4, |_| true).len(), 4);
    }

    #[test]
    fn delivered_transactions_are_not_reproposed() {
        let mut bucket = Bucket::new();
        bucket.push(tx(1, 0));
        bucket.mark_delivered(TxId::new(ClientId::new(1), 0));
        assert!(bucket.pull(10, |_| true).is_empty());
        // And cannot be re-added.
        assert!(!bucket.push(tx(1, 0)));
        assert!(!bucket.has_pending());
    }
}
