//! # orthrus-core
//!
//! The Orthrus Multi-BFT protocol and the five baseline protocols the paper
//! compares against (ISS, Mir-BFT, RCC, DQBFT, Ladon), all built on one
//! shared chassis:
//!
//! * [`partition`] — the partition module of Fig. 2: the object → bucket
//!   assignment function and the per-instance buckets;
//! * [`messages`] — the client/replica wire messages carried by the
//!   discrete-event network;
//! * [`replica`] — the [`replica::ReplicaNode`] actor hosting the buckets,
//!   the PBFT sequenced-broadcast instances, the partial/global logs, the
//!   global-ordering policy and the execution engine;
//! * [`client`] — load-generating clients that submit transactions to `f+1`
//!   replicas and confirm on `f+1` replies;
//! * [`runner`] — the declarative [`runner::Scenario`] / [`runner::run_scenario`]
//!   entry point used by the examples, the integration tests and every
//!   benchmark harness.
//!
//! Protocol differences are confined to two choices inside `ReplicaNode`:
//! which [`orthrus_ordering::GlobalOrderingPolicy`] merges delivered blocks
//! into the global log, and whether payment transactions are confirmed on the
//! partial-ordering fast path (Orthrus) or only through the global log
//! (everyone else). This mirrors the paper's methodology, where all
//! comparators are built on the same ISS codebase.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod messages;
pub mod partition;
pub mod replica;
pub mod runner;

pub use client::ClientNode;
pub use messages::{NetMessage, ReplyStatus};
pub use partition::{Bucket, Partitioner};
pub use replica::{CheckpointAnchor, ReplicaNode, StateTransfer};
pub use runner::{
    build_simulation, parallel_for_mut, parallel_map, run_scenario, run_scenarios,
    run_scenarios_with_threads, sweep_threads, Scenario, ScenarioOutcome, StopCondition,
};
