//! Network messages exchanged between clients and replicas.

use crate::replica::StateTransfer;
use orthrus_execution::TxOutcome;
use orthrus_sb::SbMessage;
use orthrus_sim::Payload;
use orthrus_types::{InstanceId, ReplicaId, SharedTx, TxId};
use std::sync::Arc;

/// Outcome reported back to the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyStatus {
    /// The transaction executed successfully.
    Committed,
    /// The transaction was aborted (e.g. insufficient funds).
    Aborted,
}

impl From<TxOutcome> for ReplyStatus {
    fn from(value: TxOutcome) -> Self {
        match value {
            TxOutcome::Committed => ReplyStatus::Committed,
            TxOutcome::Aborted => ReplyStatus::Aborted,
        }
    }
}

/// The message type carried by the discrete-event network.
#[derive(Debug, Clone, PartialEq)]
pub enum NetMessage {
    /// Client → replica: submit a transaction. Clients broadcast each
    /// transaction to at least `f + 1` replicas (paper §V-B, censorship
    /// resistance).
    ClientRequest {
        /// The submitted transaction (shared handle). Broadcasting the
        /// request to `f + 1` replicas and relaying it to instance leaders
        /// clones the handle, never the payload.
        tx: SharedTx,
    },
    /// Replica → replica: a PBFT message of one SB instance.
    Consensus {
        /// Which SB instance the message belongs to.
        instance: InstanceId,
        /// The PBFT payload.
        inner: SbMessage,
    },
    /// Replica → client: the transaction was confirmed at this replica.
    ClientReply {
        /// The confirmed transaction.
        tx: TxId,
        /// Commit or abort.
        status: ReplyStatus,
        /// The replying replica.
        replica: ReplicaId,
    },
    /// Recovering replica → peers: after a crash-recover restart, announce
    /// the restart and (optionally) ask for a state transfer. Every
    /// recipient re-relays the pending transactions of instances the sender
    /// leads (cheap); only recipients with `want_state` build and ship the
    /// expensive snapshot — the sync loop asks `f + 1` rotating peers per
    /// round.
    StateRequest {
        /// The restarted replica asking for help.
        replica: ReplicaId,
        /// Should the recipient answer with a full state transfer?
        want_state: bool,
    },
    /// Peer → recovering replica: a state transfer. `Arc`-shared so relaying
    /// or re-delivering the (large) snapshot never copies it.
    StateTransfer {
        /// The transferred state (see [`StateTransfer`]).
        state: Arc<StateTransfer>,
    },
}

impl Payload for NetMessage {
    fn wire_bytes(&self) -> u64 {
        match self {
            NetMessage::ClientRequest { tx } => u64::from(tx.payload_bytes) + 64,
            NetMessage::Consensus { inner, .. } => inner.wire_bytes() + 16,
            NetMessage::ClientReply { .. } => 96,
            NetMessage::StateRequest { .. } => 64,
            NetMessage::StateTransfer { state } => state.wire_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_types::{ClientId, Transaction};

    #[test]
    fn wire_sizes() {
        let tx = Transaction::payment(
            TxId::new(ClientId::new(1), 0),
            ClientId::new(1),
            ClientId::new(2),
            5,
        )
        .into_shared();
        let request = NetMessage::ClientRequest { tx };
        assert_eq!(request.wire_bytes(), 500 + 64);
        let reply = NetMessage::ClientReply {
            tx: TxId::new(ClientId::new(1), 0),
            status: ReplyStatus::Committed,
            replica: ReplicaId::new(0),
        };
        assert_eq!(reply.wire_bytes(), 96);
    }

    #[test]
    fn reply_status_from_outcome() {
        assert_eq!(
            ReplyStatus::from(TxOutcome::Committed),
            ReplyStatus::Committed
        );
        assert_eq!(ReplyStatus::from(TxOutcome::Aborted), ReplyStatus::Aborted);
    }
}
