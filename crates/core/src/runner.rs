//! Scenario runner: builds a complete Multi-BFT deployment inside the
//! discrete-event simulation, drives it with a workload and extracts the
//! metrics the paper reports.
//!
//! Every benchmark harness and most integration tests go through
//! [`run_scenario`]: it is the single entry point that assembles replicas,
//! clients, network model and fault plan from a declarative [`Scenario`].

use crate::client::ClientNode;
use crate::messages::NetMessage;
use crate::replica::ReplicaNode;
use orthrus_execution::ObjectStore;
use orthrus_sim::stats::LatencyBreakdown;
use orthrus_sim::{
    FaultPlan, NetworkConfig, NodeId, QueueKind, Simulation, SimulationReport, ThroughputPoint,
};
use orthrus_types::{
    Digest, Duration, NetworkKind, ProtocolConfig, ProtocolKind, ReplicaId, SharedTx, SimTime,
};
use orthrus_workload::{Workload, WorkloadConfig};
use std::sync::Arc;

/// A declarative description of one simulation run.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Which protocol every replica runs.
    pub protocol: ProtocolKind,
    /// LAN or WAN network model.
    pub network: NetworkKind,
    /// Protocol configuration (replica count, batch size, timeouts).
    pub config: ProtocolConfig,
    /// Workload configuration (accounts, transaction count, payment share).
    pub workload: WorkloadConfig,
    /// Fault plan (crashes, stragglers, selfish replicas).
    pub faults: FaultPlan,
    /// Number of client / load-generator actors.
    pub num_clients: u64,
    /// The window over which client submissions are spread (open loop).
    pub submission_window: Duration,
    /// Hard limit on simulated time.
    pub max_sim_time: Duration,
    /// Seed for workload generation and network jitter.
    pub seed: u64,
    /// Event-queue implementation the simulation runs on. Both kinds produce
    /// bit-identical traces; differential tests drive both.
    pub queue: QueueKind,
}

impl Scenario {
    /// A scenario with the paper's defaults for `n` replicas running
    /// `protocol` over `network`.
    pub fn new(protocol: ProtocolKind, network: NetworkKind, num_replicas: u32) -> Self {
        Self {
            protocol,
            network,
            config: ProtocolConfig::for_replicas(num_replicas),
            workload: WorkloadConfig::small(),
            faults: FaultPlan::none(),
            num_clients: 4,
            submission_window: Duration::from_secs(2),
            max_sim_time: Duration::from_secs(120),
            seed: 42,
            queue: QueueKind::default(),
        }
    }

    /// Use the given workload configuration.
    pub fn with_workload(mut self, workload: WorkloadConfig) -> Self {
        self.workload = workload;
        self
    }

    /// Use the given fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Add the paper's standard straggler: the leader of instance 0 is 10×
    /// slower than everyone else.
    pub fn with_straggler(mut self) -> Self {
        self.faults = self.faults.clone().with_straggler(ReplicaId::new(0), 10.0);
        self
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.workload.seed = seed;
        self
    }

    /// Override the simulated-time limit.
    pub fn with_max_sim_time(mut self, limit: Duration) -> Self {
        self.max_sim_time = limit;
        self
    }

    /// Override the event-queue implementation.
    pub fn with_queue(mut self, queue: QueueKind) -> Self {
        self.queue = queue;
        self
    }

    /// Override the per-instance leader pipelining depth
    /// (`ProtocolConfig::max_inflight_blocks`).
    pub fn with_max_inflight_blocks(mut self, depth: u64) -> Self {
        self.config.max_inflight_blocks = depth;
        self
    }

    /// Enable (or disable) sharded parallel partial-log execution
    /// (`ProtocolConfig::parallel_execution`). Off by default; both settings
    /// produce bit-identical traces (the differential tests pin this).
    pub fn with_parallel_execution(mut self, enabled: bool) -> Self {
        self.config.parallel_execution = enabled;
        self
    }
}

/// The measurements extracted from one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Protocol that was run.
    pub protocol: ProtocolKind,
    /// Number of transactions submitted by clients.
    pub submitted: usize,
    /// Number of transactions confirmed (committed or aborted) at clients.
    pub confirmed: usize,
    /// Overall throughput in kilo-transactions per second.
    pub throughput_ktps: f64,
    /// Average end-to-end latency.
    pub avg_latency: Duration,
    /// 95th-percentile end-to-end latency.
    pub p95_latency: Duration,
    /// 99th-percentile end-to-end latency.
    pub p99_latency: Duration,
    /// Average per-stage latency breakdown (Fig. 6).
    pub breakdown: LatencyBreakdown,
    /// Throughput over time in 0.5 s buckets (Fig. 7a).
    pub throughput_series: Vec<ThroughputPoint>,
    /// Latency over time in 0.5 s buckets (Fig. 7b).
    pub latency_series: Vec<ThroughputPoint>,
    /// Number of completed view changes.
    pub view_changes: u64,
    /// Total blocks delivered by SB instances (as counted by the stats).
    pub blocks_delivered: u64,
    /// Final execution-state digest of every replica (honest replicas that
    /// processed the same prefix must agree; used by safety checks).
    pub state_digests: Vec<(ReplicaId, Digest)>,
    /// Objects per executor state shard at the end of the run (replica 0;
    /// one entry per account shard, shared-object shard last). Quantifies
    /// shard imbalance under skewed workloads.
    pub shard_objects: Vec<u64>,
    /// Successful store mutations per executor state shard (replica 0; same
    /// layout as `shard_objects`).
    pub shard_ops: Vec<u64>,
    /// Raw simulation report (events, messages, bytes).
    pub report: SimulationReport,
}

impl ScenarioOutcome {
    /// Fraction of submitted transactions that were confirmed.
    pub fn completion_ratio(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        self.confirmed as f64 / self.submitted as f64
    }
}

/// Build the simulation for a scenario without running it (used by tests that
/// want to poke at intermediate states).
pub fn build_simulation(scenario: &Scenario) -> (Simulation<NetMessage>, usize) {
    let workload = Workload::generate(scenario.workload.clone());
    let mut genesis = ObjectStore::new();
    workload.install_genesis(&mut genesis);

    let network = NetworkConfig::for_kind(scenario.network);
    let mut sim: Simulation<NetMessage> = Simulation::with_queue(
        network,
        scenario.faults.clone(),
        scenario.seed,
        scenario.queue,
    );

    // Replicas must agree with the runner on the logical-client → client-actor
    // mapping so they can route replies.
    let num_clients = scenario.num_clients.max(1);
    let mut config = scenario.config.clone();
    config.num_client_actors = num_clients;

    for r in 0..config.num_replicas {
        let replica = ReplicaId::new(r);
        let mut node =
            ReplicaNode::new(replica, scenario.protocol, config.clone(), genesis.clone());
        if scenario.faults.is_selfish(replica) {
            node.set_selfish(true);
        }
        sim.add_actor(NodeId::Replica(replica), Box::new(node));
    }

    // Assign each logical client to a client actor and spread submission
    // times uniformly over the submission window.
    let total = workload.transactions.len().max(1);
    let window_us = scenario.submission_window.as_micros();
    let mut schedules: Vec<Vec<(Duration, SharedTx)>> =
        (0..num_clients).map(|_| Vec::new()).collect();
    for (idx, tx) in workload.transactions.iter().enumerate() {
        let offset = Duration::from_micros(window_us * idx as u64 / total as u64);
        let actor = config.client_actor_of(tx.id.client).value() as usize;
        schedules[actor].push((offset, Arc::clone(tx)));
    }
    for (c, schedule) in schedules.into_iter().enumerate() {
        let client = ClientNode::new(config.clone(), schedule);
        sim.add_actor(NodeId::client(c as u64), Box::new(client));
    }

    (sim, workload.transactions.len())
}

/// Run a scenario to completion (all transactions confirmed) or until its
/// simulated-time budget is exhausted, and collect the measurements.
pub fn run_scenario(scenario: &Scenario) -> ScenarioOutcome {
    let (mut sim, submitted) = build_simulation(scenario);
    let deadline = SimTime::ZERO + scenario.max_sim_time;

    // Run in one-second slices so we can stop as soon as every transaction is
    // confirmed rather than simulating idle batch timers forever.
    let mut last_report = orthrus_sim::SimulationReport {
        end_time: SimTime::ZERO,
        events_processed: 0,
        messages_sent: 0,
        bytes_sent: 0,
        peak_queue_len: 0,
    };
    loop {
        let now = sim.now();
        if now >= deadline {
            break;
        }
        let slice_end = (now + Duration::from_secs(1)).min(deadline);
        last_report = sim.run_until(slice_end);
        if sim.stats().confirmed_count() >= submitted && submitted > 0 {
            break;
        }
    }

    // Clients confirm on `f + 1` replies, so the loop above can stop while
    // slow-but-honest replicas (e.g. a 10x straggler) still hold in-flight
    // blocks. Drain in short slices until every cooperative replica has
    // executed the same prefix, so the state-digest snapshot below reflects
    // the safety invariant (Theorem 1) rather than a mid-flight race.
    // Crashed and selfish replicas are excluded: they stop processing by
    // design and would never catch up.
    let cooperative: Vec<ReplicaId> = (0..scenario.config.num_replicas)
        .map(ReplicaId::new)
        .filter(|r| {
            !scenario.faults.is_selfish(*r)
                && !scenario
                    .faults
                    .is_crashed(*r, SimTime::ZERO + scenario.max_sim_time)
        })
        .collect();
    let digests_agree = |sim: &Simulation<NetMessage>| {
        let mut digests = cooperative.iter().filter_map(|r| {
            sim.actor_as::<ReplicaNode>(NodeId::Replica(*r))
                .map(|node| node.executor().state_digest())
        });
        match digests.next() {
            Some(first) => digests.all(|d| d == first),
            None => true,
        }
    };
    while sim.now() < deadline && !digests_agree(&sim) {
        let slice_end = (sim.now() + Duration::from_millis(250)).min(deadline);
        last_report = sim.run_until(slice_end);
    }

    let stats = sim.stats();
    let bucket = Duration::from_millis(500);
    let state_digests = (0..scenario.config.num_replicas)
        .filter_map(|r| {
            let id = ReplicaId::new(r);
            sim.actor_as::<ReplicaNode>(NodeId::Replica(id))
                .map(|node| (id, node.executor().state_digest()))
        })
        .collect();
    let (shard_objects, shard_ops) = sim
        .actor_as::<ReplicaNode>(NodeId::replica(0))
        .map(|node| {
            let store = node.executor().store();
            (store.shard_object_counts(), store.shard_op_counts())
        })
        .unwrap_or_default();

    ScenarioOutcome {
        protocol: scenario.protocol,
        submitted,
        confirmed: stats.confirmed_count(),
        throughput_ktps: stats.throughput_ktps(),
        avg_latency: stats.average_latency(),
        p95_latency: stats.latency_percentile(0.95),
        p99_latency: stats.latency_percentile(0.99),
        breakdown: stats.latency_breakdown(),
        throughput_series: stats.throughput_timeseries(bucket),
        latency_series: stats.latency_timeseries(bucket),
        view_changes: stats.view_changes,
        blocks_delivered: stats.blocks_delivered,
        state_digests,
        shard_objects,
        shard_ops,
        report: orthrus_sim::SimulationReport {
            end_time: sim.now(),
            events_processed: last_report.events_processed,
            messages_sent: stats.messages_sent,
            bytes_sent: stats.bytes_sent,
            peak_queue_len: last_report.peak_queue_len,
        },
    }
}

// ----------------------------------------------------------------------
// Parallel scenario sweeps
// ----------------------------------------------------------------------

/// Number of worker threads a sweep uses: the `ORTHRUS_SWEEP_THREADS`
/// environment variable if set (≥ 1), otherwise the machine's available
/// parallelism.
pub fn sweep_threads() -> usize {
    match std::env::var("ORTHRUS_SWEEP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Apply `f` to every item on a zero-dependency scoped thread pool of up to
/// `threads` workers, returning results in input order.
///
/// Workers claim items through a shared atomic cursor, so uneven item costs
/// balance automatically. Because each scenario run is deterministic and
/// self-contained, the output is identical for every thread count.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<R>>> =
        items.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = f(&items[i]);
                *slots[i].lock().expect("no panics while holding the lock") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no panics while holding the lock")
                .expect("every claimed slot was filled")
        })
        .collect()
}

/// Apply `f` to every item of a mutable slice on the same zero-dependency
/// scoped pool as [`parallel_map`], for work that needs exclusive access to
/// each item (e.g. the executor's per-shard plog jobs, which carry `&mut`
/// state shards). Workers claim items through a shared cursor; each item is
/// visited exactly once, so the per-item mutation is identical for every
/// thread count — parallelism changes wall-clock, never results.
pub fn parallel_for_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let threads = threads.max(1).min(items.len());
    if threads <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<&mut T>> =
        items.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                // Claimed indices are unique, so the lock is uncontended; it
                // exists to hand the `&mut` across the thread boundary safely.
                f(&mut slots[i].lock().expect("no panics while holding the lock"));
            });
        }
    });
}

/// Run independent scenarios in parallel (one deterministic seeded
/// [`Simulation`] per worker), with results in input order. Thread count
/// comes from [`sweep_threads`].
pub fn run_scenarios(scenarios: &[Scenario]) -> Vec<ScenarioOutcome> {
    run_scenarios_with_threads(scenarios, sweep_threads())
}

/// [`run_scenarios`] with an explicit worker count. `threads = 1` runs the
/// scenarios serially on the calling thread.
pub fn run_scenarios_with_threads(scenarios: &[Scenario], threads: usize) -> Vec<ScenarioOutcome> {
    parallel_map(scenarios, threads, run_scenario)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scenario(protocol: ProtocolKind) -> Scenario {
        let workload = WorkloadConfig {
            num_accounts: 32,
            num_transactions: 120,
            num_shared_objects: 4,
            ..WorkloadConfig::small()
        };
        let mut config = ProtocolConfig::for_replicas(4);
        config.batch_size = 32;
        config.batch_timeout = Duration::from_millis(20);
        Scenario {
            protocol,
            network: NetworkKind::Lan,
            config,
            workload,
            faults: FaultPlan::none(),
            num_clients: 2,
            submission_window: Duration::from_millis(200),
            max_sim_time: Duration::from_secs(60),
            seed: 7,
            queue: QueueKind::default(),
        }
    }

    #[test]
    fn orthrus_confirms_every_transaction_on_a_small_lan() {
        let outcome = run_scenario(&tiny_scenario(ProtocolKind::Orthrus));
        assert_eq!(outcome.submitted, 120);
        assert_eq!(outcome.confirmed, 120, "outcome: {outcome:?}");
        assert!(outcome.throughput_ktps > 0.0);
        assert!(outcome.avg_latency > Duration::ZERO);
        assert!(outcome.completion_ratio() > 0.999);
    }

    #[test]
    fn all_protocols_complete_the_tiny_workload() {
        for protocol in ProtocolKind::ALL {
            let outcome = run_scenario(&tiny_scenario(protocol));
            assert_eq!(
                outcome.confirmed, outcome.submitted,
                "{protocol} confirmed {}/{}",
                outcome.confirmed, outcome.submitted
            );
        }
    }

    #[test]
    fn replica_states_agree_after_a_run() {
        let outcome = run_scenario(&tiny_scenario(ProtocolKind::Orthrus));
        let digests: Vec<Digest> = outcome.state_digests.iter().map(|(_, d)| *d).collect();
        assert!(!digests.is_empty());
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "replica states diverged: {:?}",
            outcome.state_digests
        );
    }

    #[test]
    fn straggler_hurts_predetermined_more_than_orthrus() {
        // A WAN deployment with several blocks per instance, so the straggler
        // instance actually holds the pre-determined global log back.
        let scenario = |protocol| {
            let workload = WorkloadConfig {
                num_accounts: 64,
                num_transactions: 400,
                num_shared_objects: 8,
                payment_share: 0.8,
                ..WorkloadConfig::small()
            };
            let mut config = ProtocolConfig::for_replicas(4);
            config.batch_size = 16;
            config.batch_timeout = Duration::from_millis(50);
            Scenario {
                protocol,
                network: NetworkKind::Wan,
                config,
                workload,
                faults: FaultPlan::none(),
                num_clients: 2,
                submission_window: Duration::from_secs(2),
                max_sim_time: Duration::from_secs(120),
                seed: 11,
                queue: QueueKind::default(),
            }
            .with_straggler()
        };
        let iss = run_scenario(&scenario(ProtocolKind::Iss));
        let orthrus = run_scenario(&scenario(ProtocolKind::Orthrus));
        assert_eq!(orthrus.confirmed, orthrus.submitted);
        // Orthrus payments bypass the straggler-induced global-ordering wait,
        // so its average latency must be clearly lower than ISS's.
        assert!(
            orthrus.avg_latency.as_secs_f64() < iss.avg_latency.as_secs_f64() * 0.9,
            "orthrus {} vs iss {}",
            orthrus.avg_latency,
            iss.avg_latency
        );
    }

    #[test]
    fn scenario_builders_compose() {
        let s = Scenario::new(ProtocolKind::Ladon, NetworkKind::Wan, 8)
            .with_straggler()
            .with_seed(9)
            .with_max_sim_time(Duration::from_secs(30))
            .with_queue(QueueKind::Heap)
            .with_max_inflight_blocks(8);
        assert_eq!(s.config.num_replicas, 8);
        assert_eq!(s.faults.stragglers.len(), 1);
        assert_eq!(s.seed, 9);
        assert_eq!(s.max_sim_time, Duration::from_secs(30));
        assert_eq!(s.queue, QueueKind::Heap);
        assert_eq!(s.config.max_inflight_blocks, 8);
        assert!(s.config.validate().is_ok());
    }

    #[test]
    fn parallel_map_preserves_input_order_and_covers_all_items() {
        let items: Vec<u64> = (0..37).collect();
        for threads in [1, 2, 5, 64] {
            let doubled = parallel_map(&items, threads, |x| x * 2);
            assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(&empty, 4, |x| *x).is_empty());
    }

    #[test]
    fn parallel_sweep_matches_serial_outcomes() {
        let scenarios: Vec<Scenario> = [ProtocolKind::Orthrus, ProtocolKind::Ladon]
            .into_iter()
            .map(tiny_scenario)
            .collect();
        let serial = run_scenarios_with_threads(&scenarios, 1);
        let pooled = run_scenarios_with_threads(&scenarios, 2);
        assert_eq!(serial.len(), pooled.len());
        for (a, b) in serial.iter().zip(&pooled) {
            assert_eq!(a.protocol, b.protocol);
            assert_eq!(a.confirmed, b.confirmed);
            assert_eq!(a.avg_latency, b.avg_latency);
            assert_eq!(a.state_digests, b.state_digests);
            assert_eq!(a.report, b.report);
        }
    }

    #[test]
    fn deeper_pipelining_is_a_valid_configuration() {
        let mut s = tiny_scenario(ProtocolKind::Orthrus);
        s.config.max_inflight_blocks = 16;
        let outcome = run_scenario(&s);
        assert_eq!(outcome.confirmed, outcome.submitted);
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;

    #[test]
    #[ignore]
    fn debug_tiny_run() {
        let workload = WorkloadConfig {
            num_accounts: 32,
            num_transactions: 120,
            num_shared_objects: 4,
            ..WorkloadConfig::small()
        };
        let mut config = ProtocolConfig::for_replicas(4);
        config.batch_size = 32;
        config.batch_timeout = Duration::from_millis(20);
        let scenario = Scenario {
            protocol: ProtocolKind::Orthrus,
            network: NetworkKind::Lan,
            config,
            workload,
            faults: FaultPlan::none(),
            num_clients: 2,
            submission_window: Duration::from_millis(200),
            max_sim_time: Duration::from_secs(10),
            seed: 7,
            queue: QueueKind::default(),
        };
        let (mut sim, submitted) = build_simulation(&scenario);
        for step in 0..10 {
            let report = sim.run_for(Duration::from_secs(1));
            eprintln!(
                "t={}s submitted_stat={} confirmed_stat={} blocks={} events={}",
                step + 1,
                sim.stats().submitted_count(),
                sim.stats().confirmed_count(),
                sim.stats().blocks_delivered,
                report.events_processed,
            );
        }
        for r in 0..4 {
            let node = sim
                .actor_as::<crate::replica::ReplicaNode>(NodeId::replica(r))
                .unwrap();
            eprintln!(
                "replica {} confirmed={} delivered_blocks={} committed={} aborted={}",
                r,
                node.confirmed_transactions(),
                node.delivered_blocks(),
                node.executor().committed_count(),
                node.executor().aborted_count(),
            );
        }
        eprintln!("workload submitted={submitted}");
    }
}
