//! Scenario runner: builds a complete Multi-BFT deployment inside the
//! discrete-event simulation, drives it with a workload and extracts the
//! metrics the paper reports.
//!
//! Every benchmark harness, the `orthrus` CLI and most integration tests go
//! through [`run_scenario`]: it is the single entry point that assembles
//! replicas, clients, network model and fault plan from a declarative
//! [`Scenario`].
//!
//! The experiment API is deliberately *data first*:
//!
//! * a [`Scenario`] is built through `with_*` builders whose cross-field
//!   invariants are enforced in exactly one place, [`Scenario::validate`];
//! * when the run should stop is data too — a set of [`StopCondition`]s —
//!   instead of hard-coded drain loops;
//! * [`run_scenario`] is fallible: invalid configurations come back as a
//!   descriptive [`OrthrusError::Config`] *before* any event is simulated.
//!
//! The `orthrus-lab` crate layers a textual spec format and a named registry
//! of the paper's figure grids on top of this module; both lower to plain
//! [`Scenario`] values and run on the same pool.

use crate::client::ClientNode;
use crate::messages::NetMessage;
use crate::replica::ReplicaNode;
use orthrus_execution::ObjectStore;
use orthrus_sim::stats::LatencyBreakdown;
use orthrus_sim::{
    FaultPlan, NetworkConfig, NodeId, QueueKind, Simulation, SimulationReport, ThroughputPoint,
};
use orthrus_types::{
    Digest, Duration, EngineMode, ExecutionMode, NetworkKind, OrthrusError, ProtocolConfig,
    ProtocolKind, ReplicaId, Result, SharedTx, SimTime,
};
use orthrus_workload::{Workload, WorkloadConfig};
use std::sync::Arc;

/// When a scenario run is allowed to stop.
///
/// Conditions compose as a set on [`Scenario::stop`]; the driver applies the
/// present conditions in a fixed order:
///
/// 1. [`StopCondition::AllConfirmed`] — run in one-second slices until every
///    submitted transaction is confirmed at a client (instead of simulating
///    idle batch timers forever).
/// 2. [`StopCondition::DigestsQuiesce`] — then drain in 250 ms slices until
///    every cooperative (non-crashed, non-selfish) replica reports the same
///    execution-state digest, so the digest snapshot reflects the safety
///    invariant rather than a mid-flight race.
/// 3. [`StopCondition::SimTimeLimit`] — the simulated-time budget
///    [`Scenario::max_sim_time`]. This cap is always enforced, with or
///    without the other conditions; listing it alone runs the scenario to
///    its full time budget in one-second slices.
///
/// `DigestsQuiesce` requires `AllConfirmed` in the same set (validation
/// rejects the combination otherwise): replica digests trivially agree at
/// genesis, so a quiesce-only run would stop at t = 0 without processing a
/// single event.
///
/// The default set is all three, which reproduces the behaviour of the
/// original infallible driver bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopCondition {
    /// Stop once every submitted transaction is confirmed at a client.
    AllConfirmed,
    /// Keep draining until all cooperative replicas agree on a state digest.
    DigestsQuiesce,
    /// Stop when `max_sim_time` is reached (always enforced as a cap).
    SimTimeLimit,
}

impl StopCondition {
    /// The default stop set: confirm everything, then drain until the
    /// cooperative replicas' state digests agree, all within the simulated
    /// time budget.
    pub const DEFAULT: [StopCondition; 3] = [
        StopCondition::AllConfirmed,
        StopCondition::DigestsQuiesce,
        StopCondition::SimTimeLimit,
    ];

    /// Stable lower-snake name (used by the `orthrus-lab` spec format).
    pub fn name(self) -> &'static str {
        match self {
            StopCondition::AllConfirmed => "all_confirmed",
            StopCondition::DigestsQuiesce => "digests_quiesce",
            StopCondition::SimTimeLimit => "sim_time_limit",
        }
    }

    /// Parse a stable name back into a condition.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "all_confirmed" => Some(StopCondition::AllConfirmed),
            "digests_quiesce" => Some(StopCondition::DigestsQuiesce),
            "sim_time_limit" => Some(StopCondition::SimTimeLimit),
            _ => None,
        }
    }
}

/// A declarative description of one simulation run.
///
/// Construct with [`Scenario::new`] and refine with the `with_*` builders;
/// [`run_scenario`] validates the result as a whole (protocol configuration,
/// workload, fault plan and their cross-field consistency) before anything is
/// simulated. The fields stay public so specs and tests can inspect them, but
/// hand-rolled literals get no validity guarantees until they pass through
/// [`Scenario::validate`] on the run path.
///
/// The workload's RNG seed is **derived from [`Scenario::seed`]** when the
/// simulation is built (see [`Scenario::effective_workload`]): a scenario has
/// exactly one seed, and `workload.seed` is ignored. This closes the footgun
/// where struct-literal construction could silently desynchronise the two.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Which protocol every replica runs.
    pub protocol: ProtocolKind,
    /// LAN or WAN network model.
    pub network: NetworkKind,
    /// Protocol configuration (replica count, batch size, timeouts).
    pub config: ProtocolConfig,
    /// Workload configuration (accounts, transaction count, payment share).
    /// Its `seed` field is ignored: the effective workload seed is
    /// [`Scenario::seed`].
    pub workload: WorkloadConfig,
    /// Fault plan (crashes, stragglers, selfish replicas).
    pub faults: FaultPlan,
    /// Number of client / load-generator actors.
    pub num_clients: u64,
    /// The window over which client submissions are spread (open loop).
    pub submission_window: Duration,
    /// Hard limit on simulated time.
    pub max_sim_time: Duration,
    /// Seed for workload generation and network jitter.
    pub seed: u64,
    /// Event-queue implementation the simulation runs on. Both kinds produce
    /// bit-identical traces; differential tests drive both.
    pub queue: QueueKind,
    /// Simulation-engine mode: the serial reference walk or the conservative
    /// time-window parallel scheduler. Both produce bit-identical reports and
    /// outcomes (the differential tests pin this); the choice only changes
    /// wall-clock. The parallel engine's thread count comes from the same
    /// `ORTHRUS_SWEEP_THREADS` knob as the sweep pool.
    pub engine_mode: EngineMode,
    /// When the run may stop (see [`StopCondition`]).
    pub stop: Vec<StopCondition>,
}

impl Scenario {
    /// A scenario with the paper's defaults for `n` replicas running
    /// `protocol` over `network`.
    pub fn new(protocol: ProtocolKind, network: NetworkKind, num_replicas: u32) -> Self {
        Self {
            protocol,
            network,
            config: ProtocolConfig::for_replicas(num_replicas),
            workload: WorkloadConfig::small(),
            faults: FaultPlan::none(),
            num_clients: 4,
            submission_window: Duration::from_secs(2),
            max_sim_time: Duration::from_secs(120),
            seed: 42,
            queue: QueueKind::default(),
            engine_mode: EngineMode::default(),
            stop: StopCondition::DEFAULT.to_vec(),
        }
    }

    /// Switch the protocol under test.
    pub fn with_protocol(mut self, protocol: ProtocolKind) -> Self {
        self.protocol = protocol;
        self
    }

    /// Switch the network model.
    pub fn with_network(mut self, network: NetworkKind) -> Self {
        self.network = network;
        self
    }

    /// Replace the whole protocol configuration.
    pub fn with_config(mut self, config: ProtocolConfig) -> Self {
        self.config = config;
        self
    }

    /// Use the given workload configuration (its `seed` field is ignored;
    /// the scenario seed is the single source of truth).
    pub fn with_workload(mut self, workload: WorkloadConfig) -> Self {
        self.workload = workload;
        self
    }

    /// Use the given fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Add the paper's standard straggler: the leader of instance 0 is 10×
    /// slower than everyone else.
    pub fn with_straggler(mut self) -> Self {
        self.faults = self.faults.clone().with_straggler(ReplicaId::new(0), 10.0);
        self
    }

    /// Override the seed (drives both workload generation and network
    /// jitter).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the number of client / load-generator actors.
    pub fn with_num_clients(mut self, num_clients: u64) -> Self {
        self.num_clients = num_clients;
        self
    }

    /// Override the open-loop submission window.
    pub fn with_submission_window(mut self, window: Duration) -> Self {
        self.submission_window = window;
        self
    }

    /// Override the simulated-time limit.
    pub fn with_max_sim_time(mut self, limit: Duration) -> Self {
        self.max_sim_time = limit;
        self
    }

    /// Override the leader batch size (`ProtocolConfig::batch_size`).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.config.batch_size = batch_size;
        self
    }

    /// Override the leader batch timeout (`ProtocolConfig::batch_timeout`).
    pub fn with_batch_timeout(mut self, timeout: Duration) -> Self {
        self.config.batch_timeout = timeout;
        self
    }

    /// Override the PBFT view-change timeout
    /// (`ProtocolConfig::view_change_timeout`).
    pub fn with_view_change_timeout(mut self, timeout: Duration) -> Self {
        self.config.view_change_timeout = timeout;
        self
    }

    /// Override the event-queue implementation.
    pub fn with_queue(mut self, queue: QueueKind) -> Self {
        self.queue = queue;
        self
    }

    /// Override the per-instance leader pipelining depth
    /// (`ProtocolConfig::max_inflight_blocks`).
    pub fn with_max_inflight_blocks(mut self, depth: u64) -> Self {
        self.config.max_inflight_blocks = depth;
        self
    }

    /// Enable (or disable) parallel partial-log execution — the boolean
    /// shorthand for [`Scenario::with_execution_mode`]: `true` selects the
    /// soaked sharded default, `false` the serial reference walk. Every mode
    /// produces bit-identical traces (the differential tests pin this), so
    /// the choice only changes wall-clock.
    pub fn with_parallel_execution(self, enabled: bool) -> Self {
        self.with_execution_mode(if enabled {
            ExecutionMode::ShardedDemotion
        } else {
            ExecutionMode::Serial
        })
    }

    /// Select how partial logs execute (`ProtocolConfig::execution_mode`):
    /// the serial reference walk, the sharded demotion scheduler, or
    /// Block-STM optimistic execution.
    pub fn with_execution_mode(mut self, mode: ExecutionMode) -> Self {
        self.config.execution_mode = mode;
        self
    }

    /// Select the simulation engine (`Scenario::engine_mode`): the serial
    /// reference walk or the conservative time-window parallel scheduler.
    /// Bit-identical either way; parallel only changes wall-clock.
    pub fn with_engine_mode(mut self, mode: EngineMode) -> Self {
        self.engine_mode = mode;
        self
    }

    /// Enable (or disable) checkpoint-driven log truncation
    /// (`ProtocolConfig::checkpoint_gc`). On by default; the off switch
    /// exists for differential tests and the retained-memory bench, which
    /// pin that truncation never changes reports or state digests.
    pub fn with_checkpoint_gc(mut self, enabled: bool) -> Self {
        self.config.checkpoint_gc = enabled;
        self
    }

    /// Add a crash-recover fault: `replica` is silent during `[crash_at,
    /// recover_at)`, then restarts and rejoins via state transfer.
    pub fn with_crash_recover(
        mut self,
        replica: ReplicaId,
        crash_at: SimTime,
        recover_at: SimTime,
    ) -> Self {
        self.faults = self
            .faults
            .clone()
            .with_crash_recover(replica, crash_at, recover_at);
        self
    }

    /// Override the stop conditions (see [`StopCondition`]).
    pub fn with_stop(mut self, stop: Vec<StopCondition>) -> Self {
        self.stop = stop;
        self
    }

    /// The workload configuration the simulation actually generates from:
    /// [`Scenario::workload`] with its seed replaced by [`Scenario::seed`].
    /// This is the single source of truth for workload seeding — tools that
    /// regenerate the trace outside of [`build_simulation`] must use it.
    pub fn effective_workload(&self) -> WorkloadConfig {
        let mut workload = self.workload.clone();
        workload.seed = self.seed;
        workload
    }

    /// Validate the scenario as a whole. This is the one place cross-field
    /// invariants live: the protocol configuration, the (effective) workload,
    /// the fault plan against the replica count, and the runner's own knobs.
    /// [`run_scenario`] calls this before building the simulation.
    pub fn validate(&self) -> Result<()> {
        self.config.validate()?;
        self.effective_workload().validate()?;
        self.faults.validate(self.config.num_replicas)?;
        if self.num_clients == 0 {
            return Err(OrthrusError::Config(
                "num_clients must be at least 1 (someone has to submit the workload)".into(),
            ));
        }
        if self.submission_window <= Duration::ZERO {
            return Err(OrthrusError::Config(
                "submission_window must be positive".into(),
            ));
        }
        if self.max_sim_time <= Duration::ZERO {
            return Err(OrthrusError::Config("max_sim_time must be positive".into()));
        }
        if self.stop.is_empty() {
            return Err(OrthrusError::Config(
                "at least one stop condition is required (the default is \
                 [all_confirmed, digests_quiesce, sim_time_limit])"
                    .into(),
            ));
        }
        if self.stop.contains(&StopCondition::DigestsQuiesce)
            && !self.stop.contains(&StopCondition::AllConfirmed)
        {
            // At t = 0 every replica trivially agrees on the genesis digest,
            // so a quiesce-only run would stop before processing one event.
            return Err(OrthrusError::Config(
                "stop condition digests_quiesce requires all_confirmed (replica digests \
                 trivially agree at genesis, so a quiesce-only run would stop at t = 0)"
                    .into(),
            ));
        }
        Ok(())
    }
}

/// The measurements extracted from one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Protocol that was run.
    pub protocol: ProtocolKind,
    /// Number of transactions submitted by clients.
    pub submitted: usize,
    /// Number of transactions confirmed (committed or aborted) at clients.
    pub confirmed: usize,
    /// Overall throughput in kilo-transactions per second.
    pub throughput_ktps: f64,
    /// Average end-to-end latency.
    pub avg_latency: Duration,
    /// 95th-percentile end-to-end latency.
    pub p95_latency: Duration,
    /// 99th-percentile end-to-end latency.
    pub p99_latency: Duration,
    /// Average per-stage latency breakdown (Fig. 6).
    pub breakdown: LatencyBreakdown,
    /// Throughput over time in 0.5 s buckets (Fig. 7a).
    pub throughput_series: Vec<ThroughputPoint>,
    /// Latency over time in 0.5 s buckets (Fig. 7b).
    pub latency_series: Vec<ThroughputPoint>,
    /// Number of completed view changes.
    pub view_changes: u64,
    /// Total blocks delivered by SB instances (as counted by the stats).
    pub blocks_delivered: u64,
    /// Final execution-state digest of every replica (honest replicas that
    /// processed the same prefix must agree; used by safety checks).
    pub state_digests: Vec<(ReplicaId, Digest)>,
    /// Objects per executor state shard at the end of the run (replica 0;
    /// one entry per account shard, shared-object shard last). Quantifies
    /// shard imbalance under skewed workloads.
    pub shard_objects: Vec<u64>,
    /// Successful store mutations per executor state shard (replica 0; same
    /// layout as `shard_objects`).
    pub shard_ops: Vec<u64>,
    /// Log entries (plog blocks + glog payloads + PBFT slots) replica 0
    /// still retains at the end of the run. With checkpoint GC on this is
    /// the in-flight window; with GC off it is the whole history.
    pub retained_plog_entries: u64,
    /// Peak of the retained-entry count over the run (replica 0).
    pub peak_retained_entries: u64,
    /// Peak retained partial/global-log bytes over the run (replica 0).
    pub peak_retained_bytes: u64,
    /// Every replica that completed crash recovery, with the virtual time
    /// its first state transfer was installed.
    pub recoveries: Vec<(ReplicaId, SimTime)>,
    /// Mean time (µs) a globally confirmed block waited in the glog pending
    /// region before executing, across all replicas. Under Orthrus this is
    /// the §V-C alignment stall (glog entries wait for their own partial-log
    /// execution); baselines execute in glog order so their wait is queueing
    /// only.
    pub glog_wait_mean_us: f64,
    /// Worst single glog wait (µs) observed on any replica.
    pub glog_wait_max_us: u64,
    /// Number of glog pop events that contributed a wait sample.
    pub glog_wait_count: u64,
    /// Raw simulation report (events, messages, bytes).
    pub report: SimulationReport,
}

impl ScenarioOutcome {
    /// Fraction of submitted transactions that were confirmed.
    pub fn completion_ratio(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        self.confirmed as f64 / self.submitted as f64
    }
}

/// Build the simulation for a scenario without running it (used by tests that
/// want to poke at intermediate states). Validates the scenario first.
pub fn build_simulation(scenario: &Scenario) -> Result<(Simulation<NetMessage>, usize)> {
    scenario.validate()?;
    // The workload seed derives from the scenario seed here — the single
    // source of truth — so struct-literal construction cannot desynchronise
    // the two (satisfying `Scenario::effective_workload`).
    let workload = Workload::generate(scenario.effective_workload());
    let mut genesis = ObjectStore::new();
    workload.install_genesis(&mut genesis);

    let network = NetworkConfig::for_kind(scenario.network);
    let mut sim: Simulation<NetMessage> = Simulation::with_queue(
        network,
        scenario.faults.clone(),
        scenario.seed,
        scenario.queue,
    );
    if scenario.engine_mode == EngineMode::Parallel {
        // Same thread knob as the sweep pool; gating is on the *requested*
        // count so single-core CI still exercises the windowed code path
        // (`parallel_for_mut` degrades to a serial loop internally).
        sim.set_parallel_engine(sweep_threads());
    }

    // Replicas must agree with the runner on the logical-client → client-actor
    // mapping so they can route replies.
    let num_clients = scenario.num_clients;
    let mut config = scenario.config.clone();
    config.num_client_actors = num_clients;

    for r in 0..config.num_replicas {
        let replica = ReplicaId::new(r);
        let mut node =
            ReplicaNode::new(replica, scenario.protocol, config.clone(), genesis.clone());
        if scenario.faults.is_selfish(replica) {
            node.set_selfish(true);
        }
        sim.add_actor(NodeId::Replica(replica), Box::new(node));
    }

    // Assign each logical client to a client actor and spread submission
    // times uniformly over the submission window.
    let total = workload.transactions.len().max(1);
    let window_us = scenario.submission_window.as_micros();
    let mut schedules: Vec<Vec<(Duration, SharedTx)>> =
        (0..num_clients).map(|_| Vec::new()).collect();
    for (idx, tx) in workload.transactions.iter().enumerate() {
        let offset = Duration::from_micros(window_us * idx as u64 / total as u64);
        let actor = config.client_actor_of(tx.id.client).value() as usize;
        schedules[actor].push((offset, Arc::clone(tx)));
    }
    for (c, schedule) in schedules.into_iter().enumerate() {
        let client = ClientNode::new(config.clone(), schedule);
        sim.add_actor(NodeId::client(c as u64), Box::new(client));
    }

    Ok((sim, workload.transactions.len()))
}

/// Run a scenario until its [`StopCondition`]s are met (by default: all
/// transactions confirmed, then state digests quiesced) or until its
/// simulated-time budget is exhausted, and collect the measurements.
///
/// Fails fast with [`OrthrusError::Config`] when the scenario is invalid —
/// the protocol configuration, workload, fault plan and runner knobs are all
/// checked before any event is simulated.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioOutcome> {
    let (mut sim, submitted) = build_simulation(scenario)?;
    let deadline = SimTime::ZERO + scenario.max_sim_time;
    let wants = |condition: StopCondition| scenario.stop.contains(&condition);

    let mut last_report = orthrus_sim::SimulationReport {
        end_time: SimTime::ZERO,
        events_processed: 0,
        messages_sent: 0,
        bytes_sent: 0,
        peak_queue_len: 0,
    };

    if wants(StopCondition::AllConfirmed) {
        // Run in one-second slices so we can stop as soon as every
        // transaction is confirmed rather than simulating idle batch timers
        // forever.
        loop {
            let now = sim.now();
            if now >= deadline {
                break;
            }
            let slice_end = (now + Duration::from_secs(1)).min(deadline);
            last_report = sim.run_until(slice_end);
            if sim.stats().confirmed_count() >= submitted && submitted > 0 {
                break;
            }
        }
    }

    if wants(StopCondition::DigestsQuiesce) {
        // Clients confirm on `f + 1` replies, so the confirmation phase can
        // stop while slow-but-honest replicas (e.g. a 10x straggler) still
        // hold in-flight blocks. Drain in short slices until every
        // cooperative replica has executed the same prefix, so the
        // state-digest snapshot below reflects the safety invariant
        // (Theorem 1) rather than a mid-flight race. Permanently crashed and
        // selfish replicas are excluded: they stop processing by design and
        // would never catch up. Crash-*recover* replicas whose restart falls
        // inside the time budget are NOT excluded — converging their digest
        // (via state transfer) is exactly what this phase must wait for.
        let cooperative: Vec<ReplicaId> = (0..scenario.config.num_replicas)
            .map(ReplicaId::new)
            .filter(|r| {
                !scenario.faults.is_selfish(*r)
                    && !scenario
                        .faults
                        .is_crashed(*r, SimTime::ZERO + scenario.max_sim_time)
            })
            .collect();
        let digests_agree = |sim: &Simulation<NetMessage>| {
            let mut digests = cooperative.iter().filter_map(|r| {
                sim.actor_as::<ReplicaNode>(NodeId::Replica(*r))
                    .map(|node| node.executor().state_digest())
            });
            match digests.next() {
                Some(first) => digests.all(|d| d == first),
                None => true,
            }
        };
        while sim.now() < deadline && !digests_agree(&sim) {
            let slice_end = (sim.now() + Duration::from_millis(250)).min(deadline);
            last_report = sim.run_until(slice_end);
        }
    }

    if !wants(StopCondition::AllConfirmed) {
        // SimTimeLimit alone (validation guarantees DigestsQuiesce cannot
        // appear without AllConfirmed): run the full time budget, still
        // sliced so the cadence matches the other phases.
        while sim.now() < deadline {
            let slice_end = (sim.now() + Duration::from_secs(1)).min(deadline);
            last_report = sim.run_until(slice_end);
        }
    }

    let stats = sim.stats();
    let bucket = Duration::from_millis(500);
    let state_digests = (0..scenario.config.num_replicas)
        .filter_map(|r| {
            let id = ReplicaId::new(r);
            sim.actor_as::<ReplicaNode>(NodeId::Replica(id))
                .map(|node| (id, node.executor().state_digest()))
        })
        .collect();
    let (shard_objects, shard_ops) = sim
        .actor_as::<ReplicaNode>(NodeId::replica(0))
        .map(|node| {
            let store = node.executor().store();
            (store.shard_object_counts(), store.shard_op_counts())
        })
        .unwrap_or_default();
    let (retained_plog_entries, peak_retained_entries, peak_retained_bytes) = sim
        .actor_as::<ReplicaNode>(NodeId::replica(0))
        .map(|node| {
            (
                node.retained_log_entries(),
                node.peak_retained_entries(),
                node.peak_retained_bytes(),
            )
        })
        .unwrap_or_default();
    let recoveries: Vec<(ReplicaId, SimTime)> = (0..scenario.config.num_replicas)
        .filter_map(|r| {
            let id = ReplicaId::new(r);
            sim.actor_as::<ReplicaNode>(NodeId::Replica(id))
                .and_then(|node| node.recovered_at())
                .map(|at| (id, at))
        })
        .collect();

    Ok(ScenarioOutcome {
        protocol: scenario.protocol,
        submitted,
        confirmed: stats.confirmed_count(),
        throughput_ktps: stats.throughput_ktps(),
        avg_latency: stats.average_latency(),
        p95_latency: stats.latency_percentile(0.95),
        p99_latency: stats.latency_percentile(0.99),
        breakdown: stats.latency_breakdown(),
        throughput_series: stats.throughput_timeseries(bucket),
        latency_series: stats.latency_timeseries(bucket),
        view_changes: stats.view_changes,
        blocks_delivered: stats.blocks_delivered,
        state_digests,
        shard_objects,
        shard_ops,
        retained_plog_entries,
        peak_retained_entries,
        peak_retained_bytes,
        recoveries,
        glog_wait_mean_us: stats.glog_wait_mean_us(),
        glog_wait_max_us: stats.glog_wait_max_us,
        glog_wait_count: stats.glog_wait_count,
        report: orthrus_sim::SimulationReport {
            end_time: sim.now(),
            events_processed: last_report.events_processed,
            messages_sent: stats.messages_sent,
            bytes_sent: stats.bytes_sent,
            peak_queue_len: last_report.peak_queue_len,
        },
    })
}

// ----------------------------------------------------------------------
// Parallel scenario sweeps
// ----------------------------------------------------------------------

/// Number of worker threads a sweep uses: the `ORTHRUS_SWEEP_THREADS`
/// environment variable if set (≥ 1), otherwise the machine's available
/// parallelism.
pub fn sweep_threads() -> usize {
    match std::env::var("ORTHRUS_SWEEP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        // orthrus: allow(stray-thread): core-count discovery for the pool width only — results are bit-identical at any width, so no machine state leaks.
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// The shared scoped thread pool: re-exported from `orthrus_types::pool`
/// so the sweep driver and the executor's shard/STM workers use one
/// implementation. Workers claim items through a shared atomic cursor, so
/// uneven item costs balance automatically; each item is visited exactly
/// once, making results identical for every thread count.
pub use orthrus_types::pool::{parallel_for_mut, parallel_map};

/// Run independent scenarios in parallel (one deterministic seeded
/// [`Simulation`] per worker), with results in input order. Thread count
/// comes from [`sweep_threads`].
///
/// Every scenario is validated *before* any of them runs, so a sweep either
/// starts whole or not at all.
pub fn run_scenarios(scenarios: &[Scenario]) -> Result<Vec<ScenarioOutcome>> {
    run_scenarios_with_threads(scenarios, sweep_threads())
}

/// [`run_scenarios`] with an explicit worker count. `threads = 1` runs the
/// scenarios serially on the calling thread.
pub fn run_scenarios_with_threads(
    scenarios: &[Scenario],
    threads: usize,
) -> Result<Vec<ScenarioOutcome>> {
    for (index, scenario) in scenarios.iter().enumerate() {
        if let Err(err) = scenario.validate() {
            return Err(OrthrusError::Config(format!(
                "sweep scenario #{index} ({} on {} with {} replicas): {err}",
                scenario.protocol, scenario.network, scenario.config.num_replicas
            )));
        }
    }
    parallel_map(scenarios, threads, run_scenario)
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scenario(protocol: ProtocolKind) -> Scenario {
        let workload = WorkloadConfig {
            num_accounts: 32,
            num_transactions: 120,
            num_shared_objects: 4,
            ..WorkloadConfig::small()
        };
        Scenario::new(protocol, NetworkKind::Lan, 4)
            .with_workload(workload)
            .with_batch_size(32)
            .with_batch_timeout(Duration::from_millis(20))
            .with_num_clients(2)
            .with_submission_window(Duration::from_millis(200))
            .with_max_sim_time(Duration::from_secs(60))
            .with_seed(7)
    }

    fn run(scenario: &Scenario) -> ScenarioOutcome {
        run_scenario(scenario).expect("scenario must validate")
    }

    #[test]
    fn orthrus_confirms_every_transaction_on_a_small_lan() {
        let outcome = run(&tiny_scenario(ProtocolKind::Orthrus));
        assert_eq!(outcome.submitted, 120);
        assert_eq!(outcome.confirmed, 120, "outcome: {outcome:?}");
        assert!(outcome.throughput_ktps > 0.0);
        assert!(outcome.avg_latency > Duration::ZERO);
        assert!(outcome.completion_ratio() > 0.999);
    }

    #[test]
    fn all_protocols_complete_the_tiny_workload() {
        for protocol in ProtocolKind::ALL {
            let outcome = run(&tiny_scenario(protocol));
            assert_eq!(
                outcome.confirmed, outcome.submitted,
                "{protocol} confirmed {}/{}",
                outcome.confirmed, outcome.submitted
            );
        }
    }

    #[test]
    fn replica_states_agree_after_a_run() {
        let outcome = run(&tiny_scenario(ProtocolKind::Orthrus));
        let digests: Vec<Digest> = outcome.state_digests.iter().map(|(_, d)| *d).collect();
        assert!(!digests.is_empty());
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "replica states diverged: {:?}",
            outcome.state_digests
        );
    }

    #[test]
    fn straggler_hurts_predetermined_more_than_orthrus() {
        // A WAN deployment with several blocks per instance, so the straggler
        // instance actually holds the pre-determined global log back.
        let scenario = |protocol| {
            let workload = WorkloadConfig {
                num_accounts: 64,
                num_transactions: 400,
                num_shared_objects: 8,
                payment_share: 0.8,
                ..WorkloadConfig::small()
            };
            Scenario::new(protocol, NetworkKind::Wan, 4)
                .with_workload(workload)
                .with_batch_size(16)
                .with_batch_timeout(Duration::from_millis(50))
                .with_num_clients(2)
                .with_seed(11)
                .with_straggler()
        };
        let iss = run(&scenario(ProtocolKind::Iss));
        let orthrus = run(&scenario(ProtocolKind::Orthrus));
        assert_eq!(orthrus.confirmed, orthrus.submitted);
        // Orthrus payments bypass the straggler-induced global-ordering wait,
        // so its average latency must be clearly lower than ISS's.
        assert!(
            orthrus.avg_latency.as_secs_f64() < iss.avg_latency.as_secs_f64() * 0.9,
            "orthrus {} vs iss {}",
            orthrus.avg_latency,
            iss.avg_latency
        );
    }

    #[test]
    fn scenario_builders_compose() {
        let s = Scenario::new(ProtocolKind::Ladon, NetworkKind::Wan, 8)
            .with_straggler()
            .with_seed(9)
            .with_max_sim_time(Duration::from_secs(30))
            .with_queue(QueueKind::Heap)
            .with_max_inflight_blocks(8)
            .with_batch_size(128)
            .with_batch_timeout(Duration::from_millis(25))
            .with_view_change_timeout(Duration::from_secs(5))
            .with_num_clients(6)
            .with_submission_window(Duration::from_secs(1))
            .with_stop(vec![StopCondition::AllConfirmed]);
        assert_eq!(s.config.num_replicas, 8);
        assert_eq!(s.faults.stragglers.len(), 1);
        assert_eq!(s.seed, 9);
        assert_eq!(s.max_sim_time, Duration::from_secs(30));
        assert_eq!(s.queue, QueueKind::Heap);
        assert_eq!(s.config.max_inflight_blocks, 8);
        assert_eq!(s.config.batch_size, 128);
        assert_eq!(s.config.batch_timeout, Duration::from_millis(25));
        assert_eq!(s.config.view_change_timeout, Duration::from_secs(5));
        assert_eq!(s.num_clients, 6);
        assert_eq!(s.submission_window, Duration::from_secs(1));
        assert_eq!(s.stop, vec![StopCondition::AllConfirmed]);
        assert!(s.validate().is_ok());
    }

    /// The workload seed derives from the scenario seed at build time, so a
    /// struct literal with a desynchronised `workload.seed` produces exactly
    /// the same trace as the builder path.
    #[test]
    fn workload_seed_derives_from_scenario_seed() {
        let via_builder = tiny_scenario(ProtocolKind::Orthrus);
        let mut via_literal = tiny_scenario(ProtocolKind::Orthrus);
        via_literal.workload.seed = 999_999; // would desynchronise pre-redesign
        assert_eq!(
            via_builder.effective_workload(),
            via_literal.effective_workload()
        );

        let a = run(&via_builder);
        let b = run(&via_literal);
        assert_eq!(a.submitted, b.submitted);
        assert_eq!(a.confirmed, b.confirmed);
        assert_eq!(a.avg_latency, b.avg_latency);
        assert_eq!(a.state_digests, b.state_digests);
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn effective_workload_uses_the_scenario_seed() {
        let s = tiny_scenario(ProtocolKind::Orthrus).with_seed(1234);
        assert_eq!(s.effective_workload().seed, 1234);
        // The stored workload config keeps whatever seed it was given; only
        // the effective view is rewritten.
        assert_eq!(s.workload.seed, WorkloadConfig::small().seed);
    }

    #[test]
    fn run_rejects_invalid_scenarios_with_descriptive_errors() {
        let cases: Vec<(Scenario, &str)> = vec![
            (
                tiny_scenario(ProtocolKind::Orthrus).with_num_clients(0),
                "num_clients",
            ),
            (
                tiny_scenario(ProtocolKind::Orthrus)
                    .with_faults(FaultPlan::none().with_selfish(ReplicaId::new(9))),
                "replica",
            ),
            (
                tiny_scenario(ProtocolKind::Orthrus)
                    .with_faults(FaultPlan::none().with_straggler(ReplicaId::new(0), 0.0)),
                "straggler factor",
            ),
            (
                tiny_scenario(ProtocolKind::Orthrus)
                    .with_faults(FaultPlan::none().with_crash(ReplicaId::new(4), SimTime::ZERO)),
                "replica",
            ),
            (
                tiny_scenario(ProtocolKind::Orthrus).with_batch_size(0),
                "batch size",
            ),
            (
                tiny_scenario(ProtocolKind::Orthrus).with_max_inflight_blocks(0),
                "max_inflight_blocks",
            ),
            (
                tiny_scenario(ProtocolKind::Orthrus).with_workload(WorkloadConfig {
                    num_transactions: 0,
                    ..WorkloadConfig::small()
                }),
                "transaction",
            ),
            (
                tiny_scenario(ProtocolKind::Orthrus).with_submission_window(Duration::ZERO),
                "submission_window",
            ),
            (
                tiny_scenario(ProtocolKind::Orthrus).with_max_sim_time(Duration::ZERO),
                "max_sim_time",
            ),
            (
                tiny_scenario(ProtocolKind::Orthrus).with_stop(Vec::new()),
                "stop condition",
            ),
            (
                tiny_scenario(ProtocolKind::Orthrus).with_stop(vec![
                    StopCondition::DigestsQuiesce,
                    StopCondition::SimTimeLimit,
                ]),
                "digests_quiesce requires all_confirmed",
            ),
        ];
        for (scenario, needle) in cases {
            let err = run_scenario(&scenario).expect_err("scenario must be rejected");
            let text = err.to_string();
            assert!(
                matches!(err, OrthrusError::Config(_)),
                "expected Config error, got {err:?}"
            );
            assert!(text.contains(needle), "error {text:?} misses {needle:?}");
        }
    }

    #[test]
    fn sim_time_limit_alone_runs_the_full_budget() {
        let scenario = tiny_scenario(ProtocolKind::Orthrus)
            .with_max_sim_time(Duration::from_secs(5))
            .with_stop(vec![StopCondition::SimTimeLimit]);
        let outcome = run(&scenario);
        assert_eq!(
            outcome.report.end_time,
            SimTime::ZERO + Duration::from_secs(5),
            "SimTimeLimit alone must run out the clock"
        );
        // The tiny workload still completes well inside five seconds.
        assert_eq!(outcome.confirmed, outcome.submitted);
    }

    #[test]
    fn default_stop_conditions_match_the_composed_phases() {
        // The default set and its explicit spelling are the same run.
        let implicit = run(&tiny_scenario(ProtocolKind::Orthrus));
        let explicit = run(&tiny_scenario(ProtocolKind::Orthrus).with_stop(vec![
            StopCondition::AllConfirmed,
            StopCondition::DigestsQuiesce,
            StopCondition::SimTimeLimit,
        ]));
        assert_eq!(implicit.report, explicit.report);
        assert_eq!(implicit.state_digests, explicit.state_digests);
        assert_eq!(implicit.avg_latency, explicit.avg_latency);
    }

    #[test]
    fn stop_condition_names_round_trip() {
        for condition in StopCondition::DEFAULT {
            assert_eq!(StopCondition::from_name(condition.name()), Some(condition));
        }
        assert_eq!(StopCondition::from_name("nonsense"), None);
    }

    #[test]
    fn parallel_map_preserves_input_order_and_covers_all_items() {
        let items: Vec<u64> = (0..37).collect();
        for threads in [1, 2, 5, 64] {
            let doubled = parallel_map(&items, threads, |x| x * 2);
            assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(&empty, 4, |x| *x).is_empty());
    }

    #[test]
    fn parallel_sweep_matches_serial_outcomes() {
        let scenarios: Vec<Scenario> = [ProtocolKind::Orthrus, ProtocolKind::Ladon]
            .into_iter()
            .map(tiny_scenario)
            .collect();
        let serial = run_scenarios_with_threads(&scenarios, 1).expect("valid sweep");
        let pooled = run_scenarios_with_threads(&scenarios, 2).expect("valid sweep");
        assert_eq!(serial.len(), pooled.len());
        for (a, b) in serial.iter().zip(&pooled) {
            assert_eq!(a.protocol, b.protocol);
            assert_eq!(a.confirmed, b.confirmed);
            assert_eq!(a.avg_latency, b.avg_latency);
            assert_eq!(a.state_digests, b.state_digests);
            assert_eq!(a.report, b.report);
        }
    }

    #[test]
    fn sweep_validation_names_the_offending_scenario() {
        let scenarios = vec![
            tiny_scenario(ProtocolKind::Orthrus),
            tiny_scenario(ProtocolKind::Ladon).with_num_clients(0),
        ];
        let err = run_scenarios_with_threads(&scenarios, 1).expect_err("must reject");
        let text = err.to_string();
        assert!(
            text.contains("#1"),
            "error does not locate the scenario: {text}"
        );
        assert!(text.contains("num_clients"), "{text}");
    }

    #[test]
    fn crashed_replica_recovers_via_state_transfer_and_reconverges() {
        // Replica 2 crashes mid-submission and restarts two (virtual)
        // seconds later; it must fetch a state transfer, rejoin, and end the
        // run with the same state digest as everyone else.
        let scenario = tiny_scenario(ProtocolKind::Orthrus).with_crash_recover(
            ReplicaId::new(2),
            SimTime::from_millis(100),
            SimTime::from_millis(2_100),
        );
        let outcome = run(&scenario);
        assert_eq!(outcome.confirmed, outcome.submitted);
        assert_eq!(outcome.recoveries.len(), 1);
        let (who, when) = outcome.recoveries[0];
        assert_eq!(who, ReplicaId::new(2));
        assert!(
            when >= SimTime::from_millis(2_100),
            "install precedes restart: {when}"
        );
        let digests: Vec<Digest> = outcome.state_digests.iter().map(|(_, d)| *d).collect();
        assert_eq!(digests.len(), 4);
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "recovered replica diverged: {:?}",
            outcome.state_digests
        );
    }

    #[test]
    fn checkpoint_gc_bounds_retained_entries_without_changing_results() {
        let base = tiny_scenario(ProtocolKind::Orthrus).with_batch_size(8);
        let gc_on = run(&base.clone().with_checkpoint_gc(true));
        let gc_off = run(&base.with_checkpoint_gc(false));
        // Truncation is memory-only: the traces are bit-identical.
        assert_eq!(gc_on.state_digests, gc_off.state_digests);
        assert_eq!(gc_on.report, gc_off.report);
        assert_eq!(gc_on.avg_latency, gc_off.avg_latency);
        // ... but the retained window differs.
        assert!(
            gc_on.retained_plog_entries < gc_off.retained_plog_entries,
            "GC on retained {} vs off {}",
            gc_on.retained_plog_entries,
            gc_off.retained_plog_entries
        );
        assert!(gc_on.peak_retained_bytes <= gc_off.peak_retained_bytes);
        assert!(gc_off.recoveries.is_empty());
    }

    #[test]
    fn deeper_pipelining_is_a_valid_configuration() {
        let s = tiny_scenario(ProtocolKind::Orthrus).with_max_inflight_blocks(16);
        let outcome = run(&s);
        assert_eq!(outcome.confirmed, outcome.submitted);
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;

    #[test]
    #[ignore]
    fn debug_tiny_run() {
        let workload = WorkloadConfig {
            num_accounts: 32,
            num_transactions: 120,
            num_shared_objects: 4,
            ..WorkloadConfig::small()
        };
        let scenario = Scenario::new(ProtocolKind::Orthrus, NetworkKind::Lan, 4)
            .with_workload(workload)
            .with_batch_size(32)
            .with_batch_timeout(Duration::from_millis(20))
            .with_num_clients(2)
            .with_submission_window(Duration::from_millis(200))
            .with_max_sim_time(Duration::from_secs(10))
            .with_seed(7);
        let (mut sim, submitted) = build_simulation(&scenario).expect("valid scenario");
        for step in 0..10 {
            let report = sim.run_for(Duration::from_secs(1));
            eprintln!(
                "t={}s submitted_stat={} confirmed_stat={} blocks={} events={}",
                step + 1,
                sim.stats().submitted_count(),
                sim.stats().confirmed_count(),
                sim.stats().blocks_delivered,
                report.events_processed,
            );
        }
        for r in 0..4 {
            let node = sim
                .actor_as::<crate::replica::ReplicaNode>(NodeId::replica(r))
                .unwrap();
            eprintln!(
                "replica {} confirmed={} delivered_blocks={} committed={} aborted={}",
                r,
                node.confirmed_transactions(),
                node.delivered_blocks(),
                node.executor().committed_count(),
                node.executor().aborted_count(),
            );
        }
        eprintln!("workload submitted={submitted}");
    }
}
