//! Client / load-generator actors.
//!
//! A [`ClientNode`] submits a pre-assigned slice of the workload according to
//! its schedule, broadcasting every transaction to `f + 1` replicas (the
//! paper's censorship-resistance rule, §V-B) and confirming a transaction
//! once `f + 1` replicas have replied (the latency definition of §VII-B).
//! One actor may carry the traffic of many logical clients — the logical
//! client is identified by the transaction id, the actor only models the
//! submission point and reply counting.

use crate::messages::NetMessage;
use orthrus_sim::{Actor, Context, NodeId};
use orthrus_types::{Duration, ProtocolConfig, ReplicaId, SharedTx, TxId};
use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Timer tag used for scheduled submissions.
const TIMER_SUBMIT: u64 = 1;

/// A client actor submitting part of the workload.
pub struct ClientNode {
    config: ProtocolConfig,
    /// Submission schedule: (offset from simulation start, transaction),
    /// sorted by offset. Entries are shared handles, so submitting to `f + 1`
    /// replicas clones a pointer per target, not a payload.
    schedule: Vec<(Duration, SharedTx)>,
    next: usize,
    replies: HashMap<TxId, HashSet<ReplicaId>>,
    confirmed: HashSet<TxId>,
}

impl ClientNode {
    /// Build a client with a submission schedule (offset, transaction). The
    /// schedule is sorted by offset internally.
    pub fn new(config: ProtocolConfig, mut schedule: Vec<(Duration, SharedTx)>) -> Self {
        schedule.sort_by_key(|(offset, _)| *offset);
        Self {
            config,
            schedule,
            next: 0,
            replies: HashMap::new(),
            confirmed: HashSet::new(),
        }
    }

    /// Number of transactions this client has confirmed (received `f + 1`
    /// replies for).
    pub fn confirmed_count(&self) -> usize {
        self.confirmed.len()
    }

    /// Number of transactions submitted so far.
    pub fn submitted_count(&self) -> usize {
        self.next
    }

    /// The `f + 1` replicas this transaction is broadcast to, spread
    /// deterministically over the replica set so no single replica carries
    /// all client traffic.
    fn targets_for(&self, tx: &TxId) -> Vec<NodeId> {
        let n = self.config.num_replicas;
        let quorum = self.config.client_quorum();
        let start = (orthrus_types::Digest::of(tx).0 % u64::from(n)) as u32;
        (0..quorum)
            .map(|i| NodeId::replica((start + i) % n))
            .collect()
    }

    fn submit_due(&mut self, ctx: &mut Context<'_, NetMessage>) {
        let now = ctx.now();
        while self.next < self.schedule.len() {
            let (offset, _) = &self.schedule[self.next];
            if orthrus_types::SimTime::ZERO + *offset > now {
                break;
            }
            let tx = Arc::clone(&self.schedule[self.next].1);
            self.next += 1;
            ctx.stats().tx_submitted(tx.id, now);
            let targets = self.targets_for(&tx.id);
            ctx.multicast(targets, NetMessage::ClientRequest { tx });
        }
        if self.next < self.schedule.len() {
            let (offset, _) = self.schedule[self.next];
            let delay = (orthrus_types::SimTime::ZERO + offset) - now;
            ctx.set_timer(
                if delay.as_micros() == 0 {
                    Duration::from_micros(1)
                } else {
                    delay
                },
                TIMER_SUBMIT,
            );
        }
    }
}

impl Actor<NetMessage> for ClientNode {
    fn on_start(&mut self, ctx: &mut Context<'_, NetMessage>) {
        self.submit_due(ctx);
    }

    fn on_message(&mut self, _from: NodeId, msg: NetMessage, ctx: &mut Context<'_, NetMessage>) {
        if let NetMessage::ClientReply { tx, replica, .. } = msg {
            if self.confirmed.contains(&tx) {
                return;
            }
            let entry = self.replies.entry(tx).or_default();
            entry.insert(replica);
            if entry.len() >= self.config.client_quorum() as usize {
                self.confirmed.insert(tx);
                self.replies.remove(&tx);
                let now = ctx.now();
                ctx.stats().tx_confirmed(tx, now);
            }
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_, NetMessage>) {
        if tag == TIMER_SUBMIT {
            self.submit_due(ctx);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthrus_types::ClientId;

    fn tx(seq: u64) -> SharedTx {
        orthrus_types::Transaction::payment(
            TxId::new(ClientId::new(7), seq),
            ClientId::new(7),
            ClientId::new(8),
            1,
        )
        .into_shared()
    }

    #[test]
    fn schedule_is_sorted_and_counts_track() {
        let config = ProtocolConfig::for_replicas(4);
        let client = ClientNode::new(
            config,
            vec![
                (Duration::from_millis(20), tx(1)),
                (Duration::from_millis(10), tx(0)),
            ],
        );
        assert_eq!(client.schedule[0].0, Duration::from_millis(10));
        assert_eq!(client.submitted_count(), 0);
        assert_eq!(client.confirmed_count(), 0);
    }

    #[test]
    fn targets_are_distinct_and_quorum_sized() {
        let config = ProtocolConfig::for_replicas(16);
        let client = ClientNode::new(config.clone(), vec![]);
        let targets = client.targets_for(&TxId::new(ClientId::new(3), 9));
        assert_eq!(targets.len(), config.client_quorum() as usize);
        let mut unique = targets.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), targets.len());
    }

    #[test]
    fn different_transactions_use_different_entry_points() {
        let config = ProtocolConfig::for_replicas(16);
        let client = ClientNode::new(config, vec![]);
        let mut firsts = HashSet::new();
        for i in 0..50 {
            let targets = client.targets_for(&TxId::new(ClientId::new(i), 0));
            firsts.insert(targets[0]);
        }
        assert!(
            firsts.len() > 3,
            "client traffic should spread over replicas"
        );
    }
}
