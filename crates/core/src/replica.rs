//! The Multi-BFT replica node.
//!
//! One [`ReplicaNode`] hosts everything a replica runs in the paper's
//! architecture (Fig. 2): the partition module (buckets), one PBFT
//! sequenced-broadcast instance per bucket, the ordering module (partial
//! logs, a global-ordering policy and the global log) and the execution
//! module (escrow + object store). The same node implements Orthrus and all
//! five baselines; the [`ProtocolKind`] only changes which ordering policy is
//! used and whether payments take the partial-ordering fast path.

use crate::messages::{NetMessage, ReplyStatus};
use crate::partition::{Bucket, Partitioner};
use orthrus_execution::{Executor, ObjectStore, TxOutcome};
use orthrus_ordering::{
    DqbftOrdering, GlobalLog, GlobalOrderingPolicy, LadonOrdering, PartialLogs,
    PredeterminedOrdering, RankTracker,
};
use orthrus_sb::{PbftConfig, PbftInstance, ProgressTracker, SbAction};
use orthrus_sim::{Actor, Context, LatencyStage, NodeId};
use orthrus_types::{
    Block, BlockParams, Epoch, InstanceId, ProtocolConfig, ProtocolKind, ReplicaId, SharedBlock,
    SharedTx, SystemState, TxId,
};
use std::any::Any;
use std::collections::HashSet;
use std::sync::Arc;

/// Timer tag: leader batch timer (try to propose in every instance we lead).
const TIMER_BATCH: u64 = 1;
/// Timer tag: failure detector sweep.
const TIMER_FAILURE_DETECTOR: u64 = 2;

/// The global-ordering policy selected by the protocol.
enum Policy {
    Predetermined(PredeterminedOrdering),
    Dqbft(DqbftOrdering),
    Ladon(LadonOrdering),
}

impl Policy {
    fn for_protocol(protocol: ProtocolKind, m: u32) -> Self {
        match protocol {
            ProtocolKind::Iss | ProtocolKind::MirBft | ProtocolKind::Rcc => {
                Policy::Predetermined(PredeterminedOrdering::new(m))
            }
            ProtocolKind::Dqbft => Policy::Dqbft(DqbftOrdering::new()),
            ProtocolKind::Ladon | ProtocolKind::Orthrus => Policy::Ladon(LadonOrdering::new(m)),
        }
    }

    fn on_deliver(&mut self, block: SharedBlock) -> Vec<SharedBlock> {
        match self {
            Policy::Predetermined(p) => p.on_deliver(block),
            Policy::Dqbft(p) => p.on_deliver(block),
            Policy::Ladon(p) => p.on_deliver(block),
        }
    }

    fn on_order_decision(&mut self, id: orthrus_types::BlockId) -> Vec<SharedBlock> {
        match self {
            Policy::Predetermined(p) => p.on_order_decision(id),
            Policy::Dqbft(p) => p.on_order_decision(id),
            Policy::Ladon(p) => p.on_order_decision(id),
        }
    }

    fn pending(&self) -> usize {
        match self {
            Policy::Predetermined(p) => p.pending(),
            Policy::Dqbft(p) => p.pending(),
            Policy::Ladon(p) => p.pending(),
        }
    }
}

/// A Multi-BFT replica (Orthrus or one of the baselines).
pub struct ReplicaNode {
    me: ReplicaId,
    protocol: ProtocolKind,
    config: ProtocolConfig,
    partitioner: Partitioner,
    buckets: Vec<Bucket>,
    instances: Vec<PbftInstance>,
    plogs: PartialLogs,
    glog: GlobalLog,
    policy: Policy,
    executor: Executor,
    rank: RankTracker,
    progress: ProgressTracker,
    /// Blocks whose partial-log execution has completed, per instance.
    executed_state: SystemState,
    /// DQBFT: data-block ids awaiting a slot in the ordering instance
    /// (only used by the ordering instance's leader).
    pending_order_decisions: Vec<orthrus_types::BlockId>,
    /// Transactions already answered to their client.
    replied: HashSet<TxId>,
    /// Undetectable-fault behaviour: keep leading our own instance but ignore
    /// every other instance (paper §VII-E).
    selfish: bool,
    /// Total number of blocks this replica delivered across instances.
    delivered_blocks: u64,
    /// Worker count for the parallel plog pool (`sweep_threads()`, resolved
    /// once at construction — it cannot change mid-run and sits on the
    /// delivery hot path).
    pool_threads: usize,
}

impl ReplicaNode {
    /// Build a replica for `protocol` with the given genesis state. The
    /// genesis store is resharded to one account shard per SB instance, so
    /// the executor's state layout mirrors the partition module's bucket
    /// layout (digests are shard-count independent, so this never changes
    /// what the replica computes).
    pub fn new(
        me: ReplicaId,
        protocol: ProtocolKind,
        config: ProtocolConfig,
        mut genesis: ObjectStore,
    ) -> Self {
        let m = config.num_instances;
        genesis.reshard(m);
        let total_instances = if protocol == ProtocolKind::Dqbft {
            m + 1
        } else {
            m
        };
        let instances = (0..total_instances)
            .map(|i| {
                PbftInstance::new(PbftConfig {
                    instance: InstanceId::new(i),
                    me,
                    num_replicas: config.num_replicas,
                    checkpoint_interval: config.checkpoint_interval,
                })
            })
            .collect();
        Self {
            me,
            protocol,
            partitioner: Partitioner::new(m),
            buckets: (0..m).map(|_| Bucket::new()).collect(),
            instances,
            plogs: PartialLogs::new(m),
            glog: GlobalLog::new(),
            policy: Policy::for_protocol(protocol, m),
            executor: Executor::with_store(genesis),
            rank: RankTracker::new(),
            progress: ProgressTracker::new(config.view_change_timeout),
            executed_state: SystemState::new(m as usize),
            pending_order_decisions: Vec::new(),
            replied: HashSet::new(),
            selfish: false,
            delivered_blocks: 0,
            pool_threads: crate::runner::sweep_threads(),
            config,
        }
    }

    /// Mark this replica as a "selfish" Byzantine node: it keeps proposing in
    /// the instance it leads but ignores all other instances (undetectable
    /// fault of §VII-E).
    pub fn set_selfish(&mut self, selfish: bool) {
        self.selfish = selfish;
    }

    /// The protocol this replica runs.
    pub fn protocol(&self) -> ProtocolKind {
        self.protocol
    }

    /// Access to the execution engine (final balances, outcomes, digests).
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// The replica's global log (for cross-replica agreement checks).
    pub fn global_log(&self) -> &GlobalLog {
        &self.glog
    }

    /// Number of blocks delivered across all SB instances.
    pub fn delivered_blocks(&self) -> u64 {
        self.delivered_blocks
    }

    /// Number of transactions this replica has confirmed to clients.
    pub fn confirmed_transactions(&self) -> usize {
        self.replied.len()
    }

    /// The DQBFT ordering instance id (one past the data instances).
    fn ordering_instance(&self) -> InstanceId {
        InstanceId::new(self.config.num_instances)
    }

    fn is_ordering_instance(&self, instance: InstanceId) -> bool {
        self.protocol == ProtocolKind::Dqbft && instance == self.ordering_instance()
    }

    fn all_replicas(&self) -> Vec<NodeId> {
        (0..self.config.num_replicas)
            .filter(|r| ReplicaId::new(*r) != self.me)
            .map(NodeId::replica)
            .collect()
    }

    /// Snapshot of the delivered state `S` across all data instances, used as
    /// the `b.S` reference in new proposals.
    fn delivered_state(&self) -> SystemState {
        let mut state = SystemState::new(self.config.num_instances as usize);
        for (idx, inst) in self
            .instances
            .iter()
            .enumerate()
            .take(self.config.num_instances as usize)
        {
            if let Some(sn) = inst.last_delivered() {
                state.observe(InstanceId::new(idx as u32), sn);
            }
        }
        state
    }

    // ------------------------------------------------------------------
    // Outbound plumbing
    // ------------------------------------------------------------------

    fn apply_sb_actions(
        &mut self,
        instance: InstanceId,
        actions: Vec<SbAction>,
        ctx: &mut Context<'_, NetMessage>,
    ) {
        for action in actions {
            match action {
                SbAction::Send { to, msg } => {
                    ctx.send(
                        NodeId::Replica(to),
                        NetMessage::Consensus {
                            instance,
                            inner: msg,
                        },
                    );
                }
                SbAction::Broadcast { msg } => {
                    let targets = self.all_replicas();
                    ctx.multicast(
                        targets,
                        NetMessage::Consensus {
                            instance,
                            inner: msg,
                        },
                    );
                }
                SbAction::Deliver { block } => {
                    self.on_block_delivered(instance, block, ctx);
                }
                SbAction::ViewChanged { leader, .. } => {
                    ctx.stats().view_change_completed();
                    self.progress.record_progress(instance, ctx.now());
                    // Make sure the new leader knows about every transaction
                    // still pending in this bucket: the old leader may have
                    // been the only replica the client contacted.
                    if leader != self.me && !self.is_ordering_instance(instance) {
                        let pending: Vec<SharedTx> =
                            self.buckets[instance.as_usize()].pull(usize::MAX, |_| true);
                        for tx in pending {
                            ctx.send(
                                NodeId::Replica(leader),
                                NetMessage::ClientRequest {
                                    tx: Arc::clone(&tx),
                                },
                            );
                            // Keep a local reference so censorship by the new
                            // leader can still be detected.
                            self.buckets[instance.as_usize()].push(tx);
                        }
                    }
                }
                SbAction::StableCheckpoint { sn } => {
                    if !self.is_ordering_instance(instance) {
                        self.plogs.get_mut(instance).garbage_collect(sn);
                    }
                }
            }
        }
    }

    fn confirm_tx(&mut self, tx: TxId, outcome: TxOutcome, ctx: &mut Context<'_, NetMessage>) {
        if !self.replied.insert(tx) {
            return;
        }
        let now = ctx.now();
        ctx.stats()
            .stage_reached(tx, LatencyStage::GlobalOrdering, now);
        ctx.send(
            NodeId::Client(self.config.client_actor_of(tx.client)),
            NetMessage::ClientReply {
                tx,
                status: ReplyStatus::from(outcome),
                replica: self.me,
            },
        );
    }

    // ------------------------------------------------------------------
    // Delivery, global ordering and execution
    // ------------------------------------------------------------------

    fn on_block_delivered(
        &mut self,
        instance: InstanceId,
        block: SharedBlock,
        ctx: &mut Context<'_, NetMessage>,
    ) {
        self.delivered_blocks += 1;
        ctx.stats().block_delivered();
        self.progress.record_progress(instance, ctx.now());
        self.rank.observe_block(&block);

        if self.is_ordering_instance(instance) {
            // DQBFT: the delivered block carries ordering decisions.
            let ids = block.header.ordered_ids.clone();
            for id in ids {
                let confirmed = self.policy.on_order_decision(id);
                self.handle_globally_confirmed(confirmed, ctx);
            }
            return;
        }

        // Partition-module bookkeeping: these transactions are no longer
        // pending in this instance's bucket.
        for tx in &block.txs {
            self.buckets[instance.as_usize()].mark_delivered(tx.id);
            let now = ctx.now();
            ctx.stats()
                .stage_reached(tx.id, LatencyStage::PartialOrdering, now);
        }
        if !self.buckets[instance.as_usize()].has_pending() {
            self.progress.clear_expectation(instance);
        }

        // Ordering module: partial log + global ordering policy. Both paths
        // share the delivered block's handle — no payload copies.
        self.plogs.get_mut(instance).insert(Arc::clone(&block));
        if self.protocol == ProtocolKind::Dqbft {
            let ordering_leader = self.config.num_instances % self.config.num_replicas;
            if self.me == ReplicaId::new(ordering_leader) {
                self.pending_order_decisions.push(block.id());
            }
        }
        let confirmed = self.policy.on_deliver(block);
        self.handle_globally_confirmed(confirmed, ctx);

        // Execution module: advance the partial-log fast path, then any glog
        // entries that were waiting for those escrows.
        self.process_partial_logs(ctx);
        self.process_global_log(ctx);

        // DQBFT: the ordering leader proposes decisions as soon as it has
        // some (batched opportunistically; the batch timer also retries).
        self.try_propose_ordering(ctx);
    }

    /// Drain every partial-log block whose referenced state `b.S` is covered
    /// by what we have already executed (paper §V-C) and run the payment
    /// fast path over the batch.
    ///
    /// The drain (`PartialLogs::drain_ready`) yields blocks in the exact
    /// order the old per-block walk consumed them, so both execution modes
    /// below produce the same confirmation trace:
    ///
    /// * the single-threaded reference path calls
    ///   [`Executor::process_plog_tx`] per transaction, and
    /// * the sharded path (`ProtocolConfig::parallel_execution`) hands the
    ///   batch to [`Executor::process_plog_schedule`], which executes
    ///   independent instances' shard-local payments on the
    ///   [`parallel_for_mut`] pool and merges outcomes deterministically.
    fn process_partial_logs(&mut self, ctx: &mut Context<'_, NetMessage>) {
        let schedule = self.plogs.drain_ready(&mut self.executed_state);
        if schedule.is_empty() || self.protocol != ProtocolKind::Orthrus {
            return;
        }
        // Fast path: escrow + commit payments straight from the partial logs
        // (Algorithm 1 lines 20–30).
        let assign = self.partitioner;
        let confirmations: Vec<(TxId, Option<TxOutcome>)> = if self.config.parallel_execution {
            let threads = self.pool_threads;
            self.executor
                .process_plog_schedule(&schedule, &|key| assign.assign(key), |jobs| {
                    crate::runner::parallel_for_mut(jobs, threads, |job| job.run());
                })
        } else {
            let mut outcomes = Vec::new();
            for (instance, block) in &schedule {
                for tx in &block.txs {
                    outcomes.push((
                        tx.id,
                        self.executor
                            .process_plog_tx(tx, *instance, &|key| assign.assign(key)),
                    ));
                }
            }
            outcomes
        };
        for (tx, outcome) in confirmations {
            if let Some(outcome) = outcome {
                self.confirm_tx(tx, outcome, ctx);
            }
        }
    }

    /// Append globally confirmed blocks to the glog and execute whatever
    /// prefix of the glog is ready according to the protocol's execution
    /// rule.
    fn handle_globally_confirmed(
        &mut self,
        confirmed: Vec<SharedBlock>,
        ctx: &mut Context<'_, NetMessage>,
    ) {
        for block in confirmed {
            self.glog.append(block);
        }
        self.process_global_log(ctx);
    }

    /// Execute globally ordered blocks from the glog cursor onwards.
    ///
    /// For Orthrus the execution of a glog entry "must strictly align with
    /// the global state at its designated position" (§V-C): we only execute a
    /// glog block once its own partial-log processing (which performs the
    /// escrow operations of its transactions) has completed, so that
    /// `allEscrowed` reflects every leg that was going to be escrowed. The
    /// baselines execute unconditionally in glog order, which is already
    /// deterministic for them because all their effects happen here.
    fn process_global_log(&mut self, ctx: &mut Context<'_, NetMessage>) {
        let assign = self.partitioner;
        loop {
            let ready = match self.glog.first_pending() {
                Some(block) => {
                    self.protocol != ProtocolKind::Orthrus
                        || self
                            .executed_state
                            .get(block.header.instance)
                            .is_some_and(|sn| sn >= block.header.sn)
                }
                None => false,
            };
            if !ready {
                break;
            }
            let block = self.glog.pop_pending().expect("first_pending was Some");
            for tx in &block.txs {
                let outcome = match self.protocol {
                    ProtocolKind::Orthrus => {
                        // Only contract transactions still need the global
                        // log; payments were confirmed on the fast path.
                        self.executor.process_glog_tx(tx, &|key| assign.assign(key))
                    }
                    _ => Some(self.executor.process_sequential_tx(tx)),
                };
                if let Some(outcome) = outcome {
                    self.confirm_tx(tx.id, outcome, ctx);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Proposal paths
    // ------------------------------------------------------------------

    /// Try to propose in every data instance this replica currently leads.
    fn try_propose_all(&mut self, ctx: &mut Context<'_, NetMessage>) {
        for i in 0..self.config.num_instances {
            self.try_propose_data(InstanceId::new(i), ctx);
        }
        self.try_propose_ordering(ctx);
    }

    fn try_propose_data(&mut self, instance: InstanceId, ctx: &mut Context<'_, NetMessage>) {
        let idx = instance.as_usize();
        if !self.instances[idx].is_leader() {
            return;
        }
        let sn = self.instances[idx].next_propose_sn();
        let delivered = self.instances[idx]
            .last_delivered()
            .map_or(0, |s| s.value() + 1);
        if sn.value() >= delivered + self.config.max_inflight_blocks {
            return;
        }
        let executor = &self.executor;
        let txs =
            self.buckets[idx].pull(self.config.batch_size, |tx| executor.speculative_valid(tx));
        // When the bucket is empty but other instances have delivered blocks
        // that cannot be globally confirmed yet (a gap in the pre-determined
        // interleaving, or a stalled Ladon bar), fill our slot with a no-op
        // block so the global log keeps moving (ISS's no-op mechanism).
        let needs_noop = txs.is_empty() && self.policy.pending() > 0;
        if txs.is_empty() && !needs_noop {
            return;
        }
        let params = BlockParams {
            instance,
            sn,
            epoch: Epoch::new(sn.value() / self.config.epoch_length.max(1)),
            view: self.instances[idx].current_view(),
            proposer: self.me,
            rank: self.rank.next_rank(),
            state: self.delivered_state(),
        };
        let block = Arc::new(if txs.is_empty() {
            Block::no_op(params)
        } else {
            for tx in &txs {
                let now = ctx.now();
                ctx.stats()
                    .stage_reached(tx.id, LatencyStage::Preprocess, now);
            }
            // The batch is assembled from the bucket's shared handles; the
            // only allocation here is the block itself.
            Block::from_shared(params, txs)
        });
        let actions = self.instances[idx].propose(block, ctx.now());
        self.progress.record_expectation(instance, ctx.now());
        self.apply_sb_actions(instance, actions, ctx);
    }

    fn try_propose_ordering(&mut self, ctx: &mut Context<'_, NetMessage>) {
        if self.protocol != ProtocolKind::Dqbft || self.pending_order_decisions.is_empty() {
            return;
        }
        let instance = self.ordering_instance();
        let idx = instance.as_usize();
        if !self.instances[idx].is_leader() {
            return;
        }
        let sn = self.instances[idx].next_propose_sn();
        let delivered = self.instances[idx]
            .last_delivered()
            .map_or(0, |s| s.value() + 1);
        if sn.value() >= delivered + self.config.max_inflight_blocks {
            return;
        }
        let ids = std::mem::take(&mut self.pending_order_decisions);
        let params = BlockParams {
            instance,
            sn,
            epoch: Epoch::new(sn.value() / self.config.epoch_length.max(1)),
            view: self.instances[idx].current_view(),
            proposer: self.me,
            rank: self.rank.next_rank(),
            state: self.delivered_state(),
        };
        let block = Arc::new(Block::ordering(params, ids));
        let actions = self.instances[idx].propose(block, ctx.now());
        self.apply_sb_actions(instance, actions, ctx);
    }

    // ------------------------------------------------------------------
    // Inbound handlers
    // ------------------------------------------------------------------

    fn on_client_request(&mut self, from: NodeId, tx: SharedTx, ctx: &mut Context<'_, NetMessage>) {
        if tx.validate().is_err() {
            return;
        }
        if self.replied.contains(&tx.id) {
            return;
        }
        let now = ctx.now();
        ctx.stats().stage_reached(tx.id, LatencyStage::Send, now);
        let forward = !from.is_replica();
        for instance in self.partitioner.instances_of(&tx) {
            if self.buckets[instance.as_usize()].push(Arc::clone(&tx)) {
                self.progress.record_expectation(instance, ctx.now());
            }
            // Clients only contact f + 1 replicas (censorship resistance,
            // §V-B); whichever replica receives the request relays it to the
            // instance's current leader so it can be proposed promptly.
            // Requests relayed by other replicas are not forwarded again,
            // which keeps the relay loop-free.
            if forward {
                let leader = self.instances[instance.as_usize()].current_leader();
                if leader != self.me {
                    ctx.send(
                        NodeId::Replica(leader),
                        NetMessage::ClientRequest {
                            tx: Arc::clone(&tx),
                        },
                    );
                }
            }
        }
    }

    fn on_consensus(
        &mut self,
        from: ReplicaId,
        instance: InstanceId,
        inner: orthrus_sb::SbMessage,
        ctx: &mut Context<'_, NetMessage>,
    ) {
        let idx = instance.as_usize();
        if idx >= self.instances.len() {
            return;
        }
        if self.selfish {
            // Undetectable fault: participate only in the instance we lead.
            let leads_it = self.instances[idx].current_leader() == self.me;
            if !leads_it {
                return;
            }
        }
        let actions = self.instances[idx].handle_message(from, inner, ctx.now());
        self.apply_sb_actions(instance, actions, ctx);
    }

    fn on_failure_detector_sweep(&mut self, ctx: &mut Context<'_, NetMessage>) {
        let now = ctx.now();
        for i in 0..self.instances.len() {
            let instance = InstanceId::new(i as u32);
            if self.instances[i].in_view_change() {
                continue;
            }
            if self.progress.should_suspect(instance, now) {
                let actions = self.instances[i].on_timeout(now);
                // Suspicion handled; reset the expectation clock so we do not
                // immediately re-suspect the new leader.
                self.progress.record_progress(instance, now);
                self.apply_sb_actions(instance, actions, ctx);
            }
        }
    }
}

impl Actor<NetMessage> for ReplicaNode {
    fn on_start(&mut self, ctx: &mut Context<'_, NetMessage>) {
        ctx.set_timer(self.config.batch_timeout, TIMER_BATCH);
        let sweep = orthrus_types::Duration::from_micros(
            (self.config.view_change_timeout.as_micros() / 4).max(1_000),
        );
        ctx.set_timer(sweep, TIMER_FAILURE_DETECTOR);
    }

    fn on_message(&mut self, from: NodeId, msg: NetMessage, ctx: &mut Context<'_, NetMessage>) {
        match msg {
            NetMessage::ClientRequest { tx } => self.on_client_request(from, tx, ctx),
            NetMessage::Consensus { instance, inner } => {
                if let Some(replica) = from.as_replica() {
                    self.on_consensus(replica, instance, inner, ctx);
                }
            }
            NetMessage::ClientReply { .. } => {}
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_, NetMessage>) {
        match tag {
            TIMER_BATCH => {
                self.try_propose_all(ctx);
                ctx.set_timer(self.config.batch_timeout, TIMER_BATCH);
            }
            TIMER_FAILURE_DETECTOR => {
                self.on_failure_detector_sweep(ctx);
                let sweep = orthrus_types::Duration::from_micros(
                    (self.config.view_change_timeout.as_micros() / 4).max(1_000),
                );
                ctx.set_timer(sweep, TIMER_FAILURE_DETECTOR);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn genesis() -> ObjectStore {
        let mut store = ObjectStore::new();
        for k in 0..16u64 {
            store.create_account(orthrus_types::ObjectKey::new(k), 1_000);
        }
        store
    }

    #[test]
    fn replica_construction_per_protocol() {
        for protocol in ProtocolKind::ALL {
            let config = ProtocolConfig::for_replicas(4);
            let node = ReplicaNode::new(ReplicaId::new(0), protocol, config.clone(), genesis());
            assert_eq!(node.protocol(), protocol);
            let expected_instances = if protocol == ProtocolKind::Dqbft {
                5
            } else {
                4
            };
            assert_eq!(node.instances.len(), expected_instances);
            assert_eq!(node.buckets.len(), 4);
            assert_eq!(node.confirmed_transactions(), 0);
            assert_eq!(node.delivered_blocks(), 0);
        }
    }

    #[test]
    fn ordering_instance_id_is_one_past_data_instances() {
        let config = ProtocolConfig::for_replicas(4);
        let node = ReplicaNode::new(ReplicaId::new(1), ProtocolKind::Dqbft, config, genesis());
        assert_eq!(node.ordering_instance(), InstanceId::new(4));
        assert!(node.is_ordering_instance(InstanceId::new(4)));
        assert!(!node.is_ordering_instance(InstanceId::new(0)));
    }

    #[test]
    fn delivered_state_tracks_instances() {
        let config = ProtocolConfig::for_replicas(4);
        let node = ReplicaNode::new(ReplicaId::new(0), ProtocolKind::Orthrus, config, genesis());
        let s = node.delivered_state();
        assert_eq!(s.num_instances(), 4);
        assert_eq!(s.total_delivered_blocks(), 0);
    }

    #[test]
    fn all_replicas_excludes_self() {
        let config = ProtocolConfig::for_replicas(4);
        let node = ReplicaNode::new(ReplicaId::new(2), ProtocolKind::Iss, config, genesis());
        let peers = node.all_replicas();
        assert_eq!(peers.len(), 3);
        assert!(!peers.contains(&NodeId::replica(2)));
    }
}
